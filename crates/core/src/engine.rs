//! The Query Processor and the public [`SpaceOdyssey`] engine.
//!
//! `SpaceOdyssey::execute` orchestrates one query end to end (§3.2.3):
//!
//! 1. each queried dataset is prepared by its Adaptor (first-touch
//!    partitioning, rt-driven refinement),
//! 2. the merge directory is consulted and the query is routed to the exact /
//!    superset / subset merge file where possible; everything else is read
//!    from the individual per-dataset partition files,
//! 3. the Statistics Collector records the combination and the partitions it
//!    retrieved,
//! 4. the Merger is invoked when the combination has crossed the merge
//!    threshold, copying (or extending) its partitions into a merge file and
//!    enforcing the space budget.
//!
//! # Concurrency model
//!
//! `execute` takes `&self` and a shared `&StorageManager`: one engine serves
//! any number of threads. The shared state is sharded so the read path
//! scales:
//!
//! | state                               | synchronization                     |
//! |-------------------------------------|-------------------------------------|
//! | partition tables + partition files  | one `RwLock` per dataset            |
//! | merge directory + merge files       | engine-level `RwLock` (read to route/read, write to merge/evict) |
//! | statistics collector                | engine-level `RwLock` (short write per query) |
//! | query counter, LRU clocks           | atomics                             |
//!
//! The adaptive semantics survive contention: first-touch partitioning and
//! each refinement happen exactly once (per-dataset write lock +
//! re-validation), and a threshold-crossing merge is performed exactly once
//! (merger write lock + an idempotent, append-only merge directory).
//! Lock-ordering discipline: a thread never acquires a dataset lock while
//! holding the merger or stats lock *except* inside `merge_combination`,
//! which only takes dataset **read** locks and is itself serialized by the
//! merger write lock — no cycle is possible.
//!
//! [`SpaceOdyssey::execute_batch`] fans a workload out over a scoped thread
//! pool; per-query answers are identical to sequential execution (adaptation
//! *timing* may differ — merges can land a few queries earlier or later — but
//! answers are a pure function of the data and the query).

use crate::config::OdysseyConfig;
use crate::merger::{Merger, RouteKind};
use crate::octree::DatasetIndex;
use crate::partition::PartitionKey;
use crate::stats::StatsCollector;
use odyssey_geom::{DatasetId, DatasetSet, RangeQuery, SpatialObject};
use odyssey_storage::{RawDataset, StorageManager, StorageResult};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock, RwLockReadGuard};

/// What happened while executing one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// The query answer: objects of the requested datasets intersecting the
    /// requested range.
    pub objects: Vec<SpatialObject>,
    /// How the query was routed with respect to merge files.
    pub route: RouteKind,
    /// Number of partitions refined by this query across all its datasets.
    pub partitions_refined: usize,
    /// Number of (dataset, partition) reads served from a merge file.
    pub partitions_from_merge_file: usize,
    /// Number of (dataset, partition) reads served from individual dataset
    /// files (including reads folded into refinement).
    pub partitions_from_datasets: usize,
    /// Whether this query triggered a merge (creation or extension of a merge
    /// file with at least one new entry).
    pub merge_performed: bool,
}

impl QueryOutcome {
    /// Convenience: `true` if any part of the answer came from a merge file.
    pub fn used_merge_file(&self) -> bool {
        self.partitions_from_merge_file > 0
    }
}

/// The Space Odyssey engine over a set of raw datasets.
///
/// The engine is `Sync`: share it (and the [`StorageManager`]) by reference
/// across threads, or use [`SpaceOdyssey::execute_batch`] which does so
/// internally.
#[derive(Debug)]
pub struct SpaceOdyssey {
    config: OdysseyConfig,
    datasets: Vec<DatasetIndex>,
    stats: RwLock<StatsCollector>,
    merger: RwLock<Merger>,
    queries_executed: AtomicU64,
}

impl SpaceOdyssey {
    /// Creates an engine over the given raw datasets. No data is read until
    /// the first query.
    ///
    /// # Errors
    /// Returns a description of the problem if the configuration is invalid.
    pub fn new(config: OdysseyConfig, raws: Vec<RawDataset>) -> Result<Self, String> {
        config.validate()?;
        let datasets = raws.into_iter().map(DatasetIndex::new).collect();
        Ok(SpaceOdyssey {
            config,
            datasets,
            stats: RwLock::new(StatsCollector::new()),
            merger: RwLock::new(Merger::new()),
            queries_executed: AtomicU64::new(0),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &OdysseyConfig {
        &self.config
    }

    /// The per-dataset incremental index, if the dataset exists.
    pub fn dataset(&self, id: DatasetId) -> Option<&DatasetIndex> {
        self.datasets.iter().find(|d| d.dataset() == id)
    }

    /// All per-dataset indexes.
    pub fn datasets(&self) -> &[DatasetIndex] {
        &self.datasets
    }

    /// Read access to the statistics collected so far. The returned guard
    /// holds the stats read lock; drop it before executing queries from the
    /// same thread.
    pub fn stats(&self) -> RwLockReadGuard<'_, StatsCollector> {
        self.stats.read().unwrap()
    }

    /// Read access to the Merger (exposes the merge-file directory). The
    /// returned guard holds the merger read lock; drop it before executing
    /// queries from the same thread.
    pub fn merger(&self) -> RwLockReadGuard<'_, Merger> {
        self.merger.read().unwrap()
    }

    /// Number of queries executed so far.
    pub fn queries_executed(&self) -> u64 {
        self.queries_executed.load(Ordering::Relaxed)
    }

    /// Executes one range query over its combination of datasets.
    pub fn execute(
        &self,
        storage: &StorageManager,
        query: &RangeQuery,
    ) -> StorageResult<QueryOutcome> {
        self.queries_executed.fetch_add(1, Ordering::Relaxed);
        let combination = query.datasets;

        // Phase 1: adapt every queried dataset (initialize / refine) and find
        // out which partitions have to be read. Each dataset synchronizes
        // internally; no engine-level lock is held here.
        let mut objects: Vec<SpatialObject> = Vec::new();
        let mut refined = 0usize;
        let mut from_datasets = 0usize;
        let mut retrieved_union: Vec<PartitionKey> = Vec::new();
        // (dataset, key) pairs that still need their data read.
        let mut pending: Vec<(DatasetId, PartitionKey)> = Vec::new();
        for dataset_id in combination.iter() {
            let Some(index) = self.datasets.iter().find(|d| d.dataset() == dataset_id) else {
                continue; // unknown dataset: nothing to answer
            };
            let prep = index.prepare_query(storage, &self.config, query)?;
            refined += prep.refined;
            // Partitions answered during refinement / first touch count as
            // individual-dataset reads.
            from_datasets += prep.retrieved_keys.len() - prep.pending_keys.len();
            objects.extend(prep.collected);
            retrieved_union.extend(prep.retrieved_keys.iter().copied());
            pending.extend(prep.pending_keys.iter().map(|k| (dataset_id, *k)));
        }
        retrieved_union.sort_unstable();
        retrieved_union.dedup();

        // Phase 2: route the pending reads through the merge directory. The
        // merger read lock is held across the merge-file reads so eviction
        // (a write operation) can never rewrite the directory mid-read;
        // routing itself only touches atomics, so readers share the lock.
        let mut from_merge = 0usize;
        let route = {
            let merger = self.merger.read().unwrap();
            let (file, route) = merger.directory().route(combination);
            if let Some(file) = file {
                let merged_combo = file.combination;
                // Group the pending keys served by the merge file so each key
                // is read once for all its wanted datasets.
                let mut served: Vec<(PartitionKey, DatasetSet)> = Vec::new();
                pending.retain(|(dataset, key)| {
                    let in_file = merged_combo.contains(*dataset) && file.contains(key);
                    if in_file {
                        match served.iter_mut().find(|(k, _)| k == key) {
                            Some((_, set)) => set.insert(*dataset),
                            None => served.push((*key, DatasetSet::single(*dataset))),
                        }
                        from_merge += 1;
                        false
                    } else {
                        true
                    }
                });
                if !served.is_empty() {
                    // Read the merged entries in file order: entries appended
                    // by the same merge operation sit next to each other, so
                    // the whole hot area comes back in long sequential runs —
                    // the point of the merged layout.
                    served.sort_by_key(|(key, _)| {
                        file.entry(key)
                            .and_then(|e| e.runs.first().map(|r| r.page_start))
                            .unwrap_or(u64::MAX)
                    });
                    for (key, wanted) in served {
                        let objs = file.read(storage, &key, wanted)?;
                        storage.note_objects_scanned(objs.len() as u64);
                        objects.extend(objs.into_iter().filter(|o| query.matches(o)));
                    }
                }
            }
            route
        };

        // Phase 3: read whatever is left from the individual dataset files.
        // `read_region` (rather than a plain key lookup) closes the race
        // where another thread refines a pending partition away between our
        // planning phase and this read: the region's objects then come from
        // its descendant leaves instead of silently vanishing.
        for (dataset_id, key) in &pending {
            let index = self
                .datasets
                .iter()
                .find(|d| d.dataset() == *dataset_id)
                .expect("pending keys only come from known datasets");
            let objs = index
                .read_region(storage, &self.config, key)?
                .unwrap_or_default();
            storage.note_objects_scanned(objs.len() as u64);
            objects.extend(objs.into_iter().filter(|o| query.matches(o)));
            from_datasets += 1;
        }

        // Phase 4: statistics and merging.
        self.stats
            .write()
            .unwrap()
            .record(combination, &retrieved_union);
        let mut merge_performed = false;
        let should_merge = {
            let merger = self.merger.read().unwrap();
            let stats = self.stats.read().unwrap();
            merger.should_merge(&self.config, &stats, combination)
        };
        if should_merge {
            let candidates: Vec<PartitionKey> = self
                .stats
                .read()
                .unwrap()
                .retrieved(combination)
                .map(|set| set.iter().copied().collect())
                .unwrap_or_default();
            // The merger write lock serializes merge work; a thread that
            // arrives after another already merged these candidates appends
            // nothing (the merge file is append-only and checked per key).
            let summary = self.merger.write().unwrap().merge_combination(
                storage,
                &self.config,
                combination,
                &candidates,
                &self.datasets,
            )?;
            merge_performed = summary.entries_appended > 0;
        }

        Ok(QueryOutcome {
            objects,
            route,
            partitions_refined: refined,
            partitions_from_merge_file: from_merge,
            partitions_from_datasets: from_datasets,
            merge_performed,
        })
    }

    /// Executes a batch of queries, fanning out over all available cores.
    ///
    /// Results are returned in the order of `queries`, and each per-query
    /// answer equals what sequential [`SpaceOdyssey::execute`] would return.
    /// See [`SpaceOdyssey::execute_batch_with_threads`] for the threading
    /// contract.
    pub fn execute_batch(
        &self,
        storage: &StorageManager,
        queries: &[RangeQuery],
    ) -> StorageResult<Vec<QueryOutcome>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.execute_batch_with_threads(storage, queries, threads)
    }

    /// Executes a batch of queries on exactly `threads` worker threads
    /// (clamped to the batch size; `0` or `1` runs inline on the caller).
    ///
    /// Workers pull queries from a shared cursor, so skewed workloads stay
    /// balanced. The paper's adaptive semantics are preserved under
    /// contention — first-touch partitioning, refinement and
    /// threshold-triggered merges each happen exactly once — and the answer
    /// of every query matches sequential execution. The first error, if any,
    /// is returned (remaining queries still run to completion).
    pub fn execute_batch_with_threads(
        &self,
        storage: &StorageManager,
        queries: &[RangeQuery],
        threads: usize,
    ) -> StorageResult<Vec<QueryOutcome>> {
        let threads = threads.clamp(1, queries.len().max(1));
        if threads <= 1 {
            return queries.iter().map(|q| self.execute(storage, q)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let collected: Vec<Mutex<Option<StorageResult<QueryOutcome>>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(query) = queries.get(i) else { break };
                    let result = self.execute(storage, query);
                    *collected[i].lock().unwrap() = Some(result);
                });
            }
        });
        collected
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every query slot is filled")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_geom::{Aabb, ObjectId, QueryId, Vec3};
    use odyssey_storage::{write_raw_dataset, StorageOptions};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn bounds() -> Aabb {
        Aabb::from_min_max(Vec3::ZERO, Vec3::splat(100.0))
    }

    fn config() -> OdysseyConfig {
        let mut c = OdysseyConfig::paper(bounds());
        c.partitions_per_level = 8;
        c
    }

    fn clustered_objects(n: u64, ds: u16, seed: u64) -> Vec<SpatialObject> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed * 977 + 13);
        let centers: Vec<Vec3> = (0..6)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(15.0..85.0),
                    rng.gen_range(15.0..85.0),
                    rng.gen_range(15.0..85.0),
                )
            })
            .collect();
        (0..n)
            .map(|i| {
                let c = centers[rng.gen_range(0..centers.len())];
                let jitter = Vec3::new(
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                    rng.gen_range(-10.0..10.0),
                );
                SpatialObject::new(
                    ObjectId(i),
                    DatasetId(ds),
                    Aabb::from_center_extent(c + jitter, Vec3::splat(rng.gen_range(0.1..0.5))),
                )
            })
            .collect()
    }

    struct Fixture {
        storage: StorageManager,
        engine: SpaceOdyssey,
        all_objects: Vec<SpatialObject>,
    }

    fn fixture(num_datasets: u16, per_dataset: u64, cfg: OdysseyConfig) -> Fixture {
        let storage = StorageManager::new(StorageOptions::in_memory(256));
        let mut raws = Vec::new();
        let mut all_objects = Vec::new();
        for ds in 0..num_datasets {
            let objs = clustered_objects(per_dataset, ds, ds as u64 + 1);
            raws.push(write_raw_dataset(&storage, DatasetId(ds), &objs).unwrap());
            all_objects.extend(objs);
        }
        let engine = SpaceOdyssey::new(cfg, raws).unwrap();
        Fixture {
            storage,
            engine,
            all_objects,
        }
    }

    fn query(id: u32, center: Vec3, side: f64, datasets: &[u16]) -> RangeQuery {
        RangeQuery::new(
            QueryId(id),
            Aabb::from_center_extent(center, Vec3::splat(side)),
            DatasetSet::from_ids(datasets.iter().map(|&d| DatasetId(d))),
        )
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = config();
        cfg.refinement_threshold = -1.0;
        assert!(SpaceOdyssey::new(cfg, Vec::new()).is_err());
    }

    #[test]
    fn answers_match_scan_oracle_over_a_workload() {
        let Fixture {
            storage,
            engine,
            all_objects,
        } = fixture(4, 1500, config());
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for i in 0..60 {
            let c = Vec3::new(
                rng.gen_range(10.0..90.0),
                rng.gen_range(10.0..90.0),
                rng.gen_range(10.0..90.0),
            );
            let m = rng.gen_range(1..=4usize);
            let mut ids: Vec<u16> = (0..4u16).collect();
            for j in (1..ids.len()).rev() {
                ids.swap(j, rng.gen_range(0..=j));
            }
            ids.truncate(m);
            let q = query(i, c, rng.gen_range(2.0..12.0), &ids);
            let outcome = engine.execute(&storage, &q).unwrap();
            let mut expected: Vec<_> = odyssey_geom::scan_query(&q, all_objects.iter())
                .iter()
                .map(|o| (o.dataset, o.id))
                .collect();
            let mut got: Vec<_> = outcome.objects.iter().map(|o| (o.dataset, o.id)).collect();
            expected.sort_unstable();
            got.sort_unstable();
            got.dedup();
            assert_eq!(got, expected, "query {i} diverged");
        }
        assert_eq!(engine.queries_executed(), 60);
    }

    #[test]
    fn only_queried_datasets_are_initialized() {
        let Fixture {
            storage, engine, ..
        } = fixture(5, 500, config());
        let q = query(0, Vec3::splat(50.0), 5.0, &[1, 3]);
        engine.execute(&storage, &q).unwrap();
        assert!(engine.dataset(DatasetId(1)).unwrap().is_initialized());
        assert!(engine.dataset(DatasetId(3)).unwrap().is_initialized());
        assert!(!engine.dataset(DatasetId(0)).unwrap().is_initialized());
        assert!(!engine.dataset(DatasetId(2)).unwrap().is_initialized());
        assert!(!engine.dataset(DatasetId(4)).unwrap().is_initialized());
    }

    #[test]
    fn hot_combination_gets_merged_and_later_queries_use_the_merge_file() {
        let Fixture {
            storage, engine, ..
        } = fixture(4, 2000, config());
        let hot = [0u16, 1, 2];
        let mut merged_seen = false;
        let mut merge_file_used = false;
        for i in 0..12 {
            // Keep queries within the same hot region so the same partitions
            // are retrieved repeatedly.
            let c = Vec3::splat(48.0 + (i % 3) as f64);
            let q = query(i, c, 4.0, &hot);
            let outcome = engine.execute(&storage, &q).unwrap();
            merged_seen |= outcome.merge_performed;
            merge_file_used |= outcome.used_merge_file();
        }
        assert!(merged_seen, "the hot combination should have been merged");
        assert!(
            merge_file_used,
            "later queries should read from the merge file"
        );
        assert_eq!(engine.merger().directory().len(), 1);
        assert!(engine.merger().directory().total_pages() > 0);
        // Statistics recorded the combination.
        let combo = DatasetSet::from_ids(hot.iter().map(|&d| DatasetId(d)));
        assert_eq!(engine.stats().count(combo), 12);
    }

    #[test]
    fn small_combinations_are_never_merged() {
        let Fixture {
            storage, engine, ..
        } = fixture(3, 800, config());
        for i in 0..8 {
            let q = query(i, Vec3::splat(50.0), 4.0, &[0, 1]);
            let outcome = engine.execute(&storage, &q).unwrap();
            assert!(!outcome.merge_performed);
            assert_eq!(outcome.route, RouteKind::None);
        }
        assert!(engine.merger().directory().is_empty());
    }

    #[test]
    fn disabling_merging_keeps_directory_empty() {
        let Fixture {
            storage, engine, ..
        } = fixture(4, 1000, config().without_merging());
        for i in 0..10 {
            let q = query(i, Vec3::splat(50.0), 4.0, &[0, 1, 2, 3]);
            engine.execute(&storage, &q).unwrap();
        }
        assert!(engine.merger().directory().is_empty());
        assert_eq!(engine.merger().merges_performed(), 0);
    }

    #[test]
    fn superset_merge_file_serves_smaller_queries() {
        let Fixture {
            storage, engine, ..
        } = fixture(4, 1500, config());
        // Heat up {0,1,2,3} so it gets merged.
        for i in 0..6 {
            let q = query(i, Vec3::splat(50.0), 5.0, &[0, 1, 2, 3]);
            engine.execute(&storage, &q).unwrap();
        }
        assert_eq!(engine.merger().directory().len(), 1);
        // Now query a 3-subset in the same region: it should route to the
        // superset merge file.
        let q = query(100, Vec3::splat(50.0), 5.0, &[0, 1, 3]);
        let outcome = engine.execute(&storage, &q).unwrap();
        assert_eq!(outcome.route, RouteKind::Superset);
    }

    #[test]
    fn merge_respects_space_budget() {
        let mut cfg = config();
        cfg.merge_space_budget_pages = Some(1);
        let Fixture {
            storage, engine, ..
        } = fixture(4, 1500, cfg);
        for i in 0..8 {
            let q = query(i, Vec3::splat(50.0), 5.0, &[0, 1, 2]);
            engine.execute(&storage, &q).unwrap();
        }
        // The directory can never exceed the one-page budget; with entries
        // larger than a page it ends up empty (evicted) or minimal.
        assert!(engine.merger().directory().total_pages() <= 1);
    }

    #[test]
    fn queries_on_unknown_datasets_return_nothing_extra() {
        let Fixture {
            storage,
            engine,
            all_objects,
        } = fixture(2, 500, config());
        // Dataset 7 does not exist; the answer covers only dataset 0.
        let q = query(0, Vec3::splat(50.0), 60.0, &[0, 7]);
        let outcome = engine.execute(&storage, &q).unwrap();
        let expected: Vec<_> = odyssey_geom::scan_query(&q, all_objects.iter())
            .iter()
            .filter(|o| o.dataset == DatasetId(0))
            .map(|o| o.id)
            .collect();
        assert_eq!(outcome.objects.len(), expected.len());
        assert!(outcome.objects.iter().all(|o| o.dataset == DatasetId(0)));
    }

    #[test]
    fn merging_accelerates_the_hot_combination() {
        // The Figure 5c effect: queries for the hot combination become
        // cheaper once its partitions are merged.
        let run = |merging: bool| {
            let cfg = if merging {
                config()
            } else {
                config().without_merging()
            };
            let Fixture {
                storage, engine, ..
            } = fixture(5, 3000, cfg);
            let hot = [0u16, 1, 2, 3, 4];
            // Warm-up: let refinement converge and merging trigger.
            for i in 0..10 {
                let q = query(i, Vec3::splat(50.0), 4.0, &hot);
                engine.execute(&storage, &q).unwrap();
            }
            // Measure steady-state queries with a cold cache, as in the paper.
            let mut total = 0.0;
            for i in 0..10 {
                storage.clear_cache();
                let before = storage.stats();
                let q = query(100 + i, Vec3::splat(50.0 + (i % 3) as f64), 4.0, &hot);
                engine.execute(&storage, &q).unwrap();
                total += storage.seconds_since(&before);
            }
            total
        };
        let with = run(true);
        let without = run(false);
        assert!(
            with < without,
            "merged hot-combination queries ({with}s) should beat unmerged ({without}s)"
        );
    }

    #[test]
    fn execute_batch_returns_results_in_order() {
        let Fixture {
            storage,
            engine,
            all_objects,
        } = fixture(3, 1000, config());
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let queries: Vec<RangeQuery> = (0..24)
            .map(|i| {
                let c = Vec3::new(
                    rng.gen_range(10.0..90.0),
                    rng.gen_range(10.0..90.0),
                    rng.gen_range(10.0..90.0),
                );
                query(i, c, rng.gen_range(3.0..10.0), &[0, 1, 2])
            })
            .collect();
        let outcomes = engine
            .execute_batch_with_threads(&storage, &queries, 4)
            .unwrap();
        assert_eq!(outcomes.len(), queries.len());
        assert_eq!(engine.queries_executed(), queries.len() as u64);
        for (q, outcome) in queries.iter().zip(&outcomes) {
            let mut expected: Vec<_> = odyssey_geom::scan_query(q, all_objects.iter())
                .iter()
                .map(|o| (o.dataset, o.id))
                .collect();
            let mut got: Vec<_> = outcome.objects.iter().map(|o| (o.dataset, o.id)).collect();
            expected.sort_unstable();
            got.sort_unstable();
            got.dedup();
            assert_eq!(
                got, expected,
                "query {:?} diverged under batch execution",
                q.id
            );
        }
    }

    #[test]
    fn execute_batch_with_zero_or_one_thread_runs_inline() {
        let Fixture {
            storage, engine, ..
        } = fixture(2, 400, config());
        let queries = vec![
            query(0, Vec3::splat(40.0), 5.0, &[0, 1]),
            query(1, Vec3::splat(60.0), 5.0, &[0]),
        ];
        assert_eq!(
            engine
                .execute_batch_with_threads(&storage, &queries, 0)
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            engine
                .execute_batch_with_threads(&storage, &queries, 1)
                .unwrap()
                .len(),
            2
        );
        assert!(engine.execute_batch(&storage, &[]).unwrap().is_empty());
    }
}
