//! Online compaction: the garbage collector of append-only stores.
//!
//! PR 4 made every durable mutation strictly append-only — ingest overflow
//! rewrites always append a fresh run and refinement lays children out
//! append-only — which is what makes crash recovery a pure prefix property,
//! but it also means dead pages accumulate forever: every rewrite orphans
//! the previous run and every split orphans the parent's pages. Under
//! sustained ingestion a long-lived archive would exhaust disk at constant
//! live-data size.
//!
//! The space-reclamation subsystem has two halves:
//!
//! * **Immediate GC of evicted merge files** — eviction deletes the backing
//!   paged file at the eviction site itself
//!   (`Merger::enforce_budget_logged`), since nothing can reference an
//!   evicted file again;
//! * **this [`Compactor`]** — per-dataset copy-forward rewrites. The storage
//!   manager keeps per-file dead-page counters
//!   ([`odyssey_storage::FileSpaceStats`], fed by the orphaning sites in
//!   `octree.rs`); once a partition file's dead ratio crosses
//!   [`OdysseyConfig::compaction_dead_ratio`], the live partition runs are
//!   copied into a fresh file ([`DatasetIndex::compact`]), each partition's
//!   main + overflow runs coalesced into one contiguous run, and the swap
//!   commits through a single `CompactionCommit` WAL record.
//!
//! The engine's ingest and query trigger points no longer rewrite inline:
//! they check `Compactor::should_compact` and enqueue a `Compaction` job
//! on the [`crate::scheduler::MaintenanceScheduler`], which runs the
//! copy-forward in bounded, checkpointed steps
//! ([`DatasetIndex::compact_step`]) — synchronously at the trigger site in
//! foreground mode, from a [`crate::SpaceOdyssey::run_maintenance`] drain
//! in background mode. Compaction is a no-op on non-durable managers,
//! which rewrite in place and hence shed most dead space on their own.
//! Beyond bounding disk use, the rewrite restores sequential layout: a
//! compacted partition is one contiguous run, so the planner's
//! run-coalescing cost estimates (and real scans) see fewer seeks.

use crate::config::OdysseyConfig;
use crate::octree::{CompactionStats, DatasetIndex};
use odyssey_storage::{StorageManager, StorageResult};
use std::sync::atomic::{AtomicU64, Ordering};

/// The compaction trigger check plus the committed-rewrite counters.
/// Shared by reference across query threads; the per-dataset write lock
/// inside [`DatasetIndex::compact`] / [`DatasetIndex::compact_step`] makes
/// each rewrite exactly-once under contention.
#[derive(Debug, Default)]
pub struct Compactor {
    compactions_performed: AtomicU64,
    pages_reclaimed: AtomicU64,
}

impl Compactor {
    /// Creates a compactor with zeroed counters.
    pub fn new() -> Self {
        Compactor::default()
    }

    /// Reinstates the checkpoint-replayed compaction counter (reclaimed
    /// pages are a live observability sum and restart at zero, like the
    /// buffer-pool counters).
    pub fn restore(compactions_performed: u64) -> Self {
        Compactor {
            compactions_performed: AtomicU64::new(compactions_performed),
            pages_reclaimed: AtomicU64::new(0),
        }
    }

    /// Dataset-file compactions committed so far.
    pub fn compactions_performed(&self) -> u64 {
        self.compactions_performed.load(Ordering::Relaxed)
    }

    /// Pages reclaimed by those compactions since the engine was (re)opened.
    pub fn pages_reclaimed(&self) -> u64 {
        self.pages_reclaimed.load(Ordering::Relaxed)
    }

    /// Cheap, lock-free-ish trigger check: compaction is enabled, the
    /// manager is durable (non-durable managers rewrite in place), and the
    /// dataset's partition file has crossed the dead-page ratio. The
    /// engine's trigger sites call this before enqueueing a `Compaction`
    /// job, so a cold dataset never reaches the queue.
    pub(crate) fn should_compact(
        &self,
        storage: &StorageManager,
        config: &OdysseyConfig,
        index: &DatasetIndex,
    ) -> bool {
        let _cover = odyssey_storage::fault::enter("Compactor::should_compact");
        if !config.compaction_enabled || !storage.wal_enabled() {
            return false;
        }
        let Some(file) = index.partition_file() else {
            return false;
        };
        match storage.space_stats(file) {
            Ok(s) => s.dead_pages > 0 && s.dead_ratio() >= config.compaction_dead_ratio,
            Err(_) => false,
        }
    }

    /// Books one committed rewrite into the counters — the scheduler's
    /// `Compaction` job calls this when its final step commits.
    pub(crate) fn record(&self, stats: &CompactionStats) {
        self.compactions_performed.fetch_add(1, Ordering::Relaxed);
        self.pages_reclaimed
            .fetch_add(stats.pages_reclaimed, Ordering::Relaxed);
    }

    /// Compacts the dataset if its trigger holds, updating the counters.
    /// Returns the committed rewrite's stats, or `None` when nothing was
    /// done (trigger not met, or another thread compacted first — the
    /// re-check inside [`DatasetIndex::compact`] settles races). The
    /// unphased, single-call form; the engine itself schedules jobs
    /// instead.
    pub fn maybe_compact(
        &self,
        storage: &StorageManager,
        config: &OdysseyConfig,
        index: &DatasetIndex,
    ) -> StorageResult<Option<CompactionStats>> {
        if !self.should_compact(storage, config, index) {
            return Ok(None);
        }
        let Some(stats) = index.compact(storage, config)? else {
            return Ok(None);
        };
        self.compactions_performed.fetch_add(1, Ordering::Relaxed);
        self.pages_reclaimed
            .fetch_add(stats.pages_reclaimed, Ordering::Relaxed);
        Ok(Some(stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_geom::{Aabb, DatasetId, ObjectId, SpatialObject, Vec3};
    use odyssey_storage::{write_raw_dataset, StorageManager, StorageOptions};

    fn objects(n: u64) -> Vec<SpatialObject> {
        (0..n)
            .map(|i| {
                let c = Vec3::new(
                    (i as f64 * 7.3) % 98.0 + 1.0,
                    (i as f64 * 13.7) % 98.0 + 1.0,
                    (i as f64 * 29.1) % 98.0 + 1.0,
                );
                SpatialObject::new(
                    ObjectId(i),
                    DatasetId(0),
                    Aabb::from_center_extent(c, Vec3::splat(0.3)),
                )
            })
            .collect()
    }

    fn config() -> OdysseyConfig {
        let mut c = OdysseyConfig::paper(Aabb::from_min_max(Vec3::ZERO, Vec3::splat(100.0)));
        c.partitions_per_level = 8;
        c
    }

    #[test]
    fn non_durable_managers_never_compact() {
        let storage = StorageManager::new(StorageOptions::in_memory(256));
        let cfg = config();
        let raw = write_raw_dataset(&storage, DatasetId(0), &objects(500)).unwrap();
        let index = DatasetIndex::new(raw);
        index.ensure_initialized(&storage, &cfg).unwrap();
        let compactor = Compactor::new();
        // Even with dead pages reported, the non-durable manager is skipped.
        storage.note_dead_pages(index.partition_file().unwrap(), 1_000);
        assert!(compactor
            .maybe_compact(&storage, &cfg, &index)
            .unwrap()
            .is_none());
        assert_eq!(compactor.compactions_performed(), 0);
    }

    #[test]
    fn durable_compaction_rewrites_coalesces_and_deletes() {
        let dir = tempfile::tempdir().unwrap();
        let storage = StorageManager::create(StorageOptions::durable(dir.path(), 256)).unwrap();
        let cfg = config().with_ingest_split_objects(0);
        let raw = write_raw_dataset(&storage, DatasetId(0), &objects(800)).unwrap();
        let index = DatasetIndex::new(raw);
        index.ensure_initialized(&storage, &cfg).unwrap();
        let old_file = index.partition_file().unwrap();
        // Churn overflow runs: every batch appends a fresh run, orphaning
        // the previous one.
        for round in 0..12u64 {
            let batch: Vec<SpatialObject> = (0..80)
                .map(|i| {
                    SpatialObject::new(
                        ObjectId(10_000 + round * 1_000 + i),
                        DatasetId(0),
                        Aabb::from_center_extent(
                            Vec3::splat(20.0 + (i % 40) as f64),
                            Vec3::splat(0.2),
                        ),
                    )
                })
                .collect();
            index.ingest(&storage, &cfg, &batch).unwrap();
        }
        let space = storage.space_stats(old_file).unwrap();
        assert!(
            space.dead_ratio() >= cfg.compaction_dead_ratio,
            "churn must cross the trigger ({space:?})"
        );
        let before: Vec<SpatialObject> = {
            let mut all = Vec::new();
            for p in index.partitions() {
                all.extend(index.read_partition(&storage, &p.key).unwrap());
            }
            all.sort_by_key(|o| o.id);
            all
        };
        let compactor = Compactor::new();
        let stats = compactor
            .maybe_compact(&storage, &cfg, &index)
            .unwrap()
            .expect("trigger held");
        assert_eq!(compactor.compactions_performed(), 1);
        assert_eq!(stats.pages_reclaimed, stats.pages_before);
        assert!(stats.pages_after < stats.pages_before);
        let new_file = index.partition_file().unwrap();
        assert_ne!(new_file, old_file);
        assert!(!storage.file_exists(old_file), "old file must be deleted");
        assert_eq!(storage.space_stats(new_file).unwrap().dead_pages, 0);
        // Every partition is one contiguous run now.
        for p in index.partitions() {
            assert_eq!(p.overflow_page_count, 0);
        }
        // Content identical.
        let after: Vec<SpatialObject> = {
            let mut all = Vec::new();
            for p in index.partitions() {
                all.extend(index.read_partition(&storage, &p.key).unwrap());
            }
            all.sort_by_key(|o| o.id);
            all
        };
        assert_eq!(before, after, "compaction must preserve every object");
        // Idempotent: a second call finds nothing to do.
        assert!(compactor
            .maybe_compact(&storage, &cfg, &index)
            .unwrap()
            .is_none());
    }
}
