//! Uniform-grid cell arithmetic.
//!
//! Both the static Grid baseline (60³ cells in the paper) and the synthetic
//! data generator need to map points to cells of a regular grid over a
//! bounding volume, and to enumerate the cells overlapping a query box.

use crate::{Aabb, Vec3};
use serde::{Deserialize, Serialize};

/// Integer coordinate of a grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellCoord {
    /// Cell index along x.
    pub x: u32,
    /// Cell index along y.
    pub y: u32,
    /// Cell index along z.
    pub z: u32,
}

impl CellCoord {
    /// Creates a cell coordinate.
    #[inline]
    pub fn new(x: u32, y: u32, z: u32) -> Self {
        CellCoord { x, y, z }
    }
}

/// A regular grid over a bounding volume with a fixed number of cells per
/// dimension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// The spatial extent covered by the grid.
    pub bounds: Aabb,
    /// Number of cells along each dimension.
    pub cells_per_dim: u32,
}

impl GridSpec {
    /// Creates a grid specification.
    ///
    /// # Panics
    /// Panics if `cells_per_dim` is zero.
    pub fn new(bounds: Aabb, cells_per_dim: u32) -> Self {
        assert!(
            cells_per_dim > 0,
            "a grid needs at least one cell per dimension"
        );
        GridSpec {
            bounds,
            cells_per_dim,
        }
    }

    /// Total number of cells in the grid.
    #[inline]
    pub fn cell_count(&self) -> usize {
        let c = self.cells_per_dim as usize;
        c * c * c
    }

    /// Side lengths of one cell.
    #[inline]
    pub fn cell_extent(&self) -> Vec3 {
        self.bounds.extent() / self.cells_per_dim as f64
    }

    /// Linearises a cell coordinate (x fastest, then y, then z).
    #[inline]
    pub fn linear_index(&self, c: CellCoord) -> usize {
        let n = self.cells_per_dim as usize;
        (c.z as usize * n + c.y as usize) * n + c.x as usize
    }

    /// Inverse of [`GridSpec::linear_index`].
    #[inline]
    pub fn coord_of(&self, linear: usize) -> CellCoord {
        let n = self.cells_per_dim as usize;
        debug_assert!(linear < self.cell_count());
        CellCoord {
            x: (linear % n) as u32,
            y: ((linear / n) % n) as u32,
            z: (linear / (n * n)) as u32,
        }
    }

    /// Cell containing point `p` under half-open cell semantics; points
    /// outside the bounds are clamped to the border cells.
    #[inline]
    pub fn cell_of_point(&self, p: Vec3) -> CellCoord {
        let n = self.cells_per_dim;
        let e = self.bounds.extent();
        let rel = p - self.bounds.min;
        let axis = |r: f64, extent: f64| -> u32 {
            if extent <= 0.0 {
                return 0;
            }
            let f = (r / extent * n as f64).floor();
            if f < 0.0 {
                0
            } else {
                (f as u32).min(n - 1)
            }
        };
        CellCoord {
            x: axis(rel.x, e.x),
            y: axis(rel.y, e.y),
            z: axis(rel.z, e.z),
        }
    }

    /// Geometric bounds of a cell.
    pub fn cell_bounds(&self, c: CellCoord) -> Aabb {
        let e = self.cell_extent();
        let min = Vec3::new(
            self.bounds.min.x + e.x * c.x as f64,
            self.bounds.min.y + e.y * c.y as f64,
            self.bounds.min.z + e.z * c.z as f64,
        );
        let max = Vec3::new(
            if c.x + 1 == self.cells_per_dim {
                self.bounds.max.x
            } else {
                min.x + e.x
            },
            if c.y + 1 == self.cells_per_dim {
                self.bounds.max.y
            } else {
                min.y + e.y
            },
            if c.z + 1 == self.cells_per_dim {
                self.bounds.max.z
            } else {
                min.z + e.z
            },
        );
        Aabb::from_min_max(min, max)
    }

    /// Enumerates the coordinates of every cell overlapping `range`
    /// (inclusive of boundary touches), clamped to the grid.
    pub fn cells_overlapping(&self, range: &Aabb) -> Vec<CellCoord> {
        if !self.bounds.intersects(range) {
            return Vec::new();
        }
        let lo = self.cell_of_point(range.min);
        let hi = self.cell_of_point(range.max);
        let mut out = Vec::with_capacity(
            ((hi.x - lo.x + 1) * (hi.y - lo.y + 1) * (hi.z - lo.z + 1)) as usize,
        );
        for z in lo.z..=hi.z {
            for y in lo.y..=hi.y {
                for x in lo.x..=hi.x {
                    out.push(CellCoord { x, y, z });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: u32) -> GridSpec {
        GridSpec::new(Aabb::unit(), n)
    }

    #[test]
    fn counts_and_extents() {
        let g = grid(4);
        assert_eq!(g.cell_count(), 64);
        assert_eq!(g.cell_extent(), Vec3::splat(0.25));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_panics() {
        let _ = GridSpec::new(Aabb::unit(), 0);
    }

    #[test]
    fn linear_index_roundtrip() {
        let g = grid(5);
        for i in 0..g.cell_count() {
            assert_eq!(g.linear_index(g.coord_of(i)), i);
        }
    }

    #[test]
    fn point_to_cell() {
        let g = grid(4);
        assert_eq!(g.cell_of_point(Vec3::splat(0.0)), CellCoord::new(0, 0, 0));
        assert_eq!(g.cell_of_point(Vec3::splat(0.99)), CellCoord::new(3, 3, 3));
        // The max corner is clamped into the last cell.
        assert_eq!(g.cell_of_point(Vec3::splat(1.0)), CellCoord::new(3, 3, 3));
        // Outside points clamp.
        assert_eq!(g.cell_of_point(Vec3::splat(-5.0)), CellCoord::new(0, 0, 0));
        assert_eq!(g.cell_of_point(Vec3::splat(5.0)), CellCoord::new(3, 3, 3));
        // Half-open: 0.25 belongs to cell 1.
        assert_eq!(g.cell_of_point(Vec3::new(0.25, 0.0, 0.0)).x, 1);
    }

    #[test]
    fn cell_bounds_tile_the_grid() {
        let g = grid(3);
        let mut total = 0.0;
        for i in 0..g.cell_count() {
            let b = g.cell_bounds(g.coord_of(i));
            assert!(g.bounds.contains(&b));
            total += b.volume();
        }
        assert!((total - g.bounds.volume()).abs() < 1e-9);
        // Last cell reaches the grid max exactly.
        let last = g.cell_bounds(CellCoord::new(2, 2, 2));
        assert_eq!(last.max, g.bounds.max);
    }

    #[test]
    fn cell_point_consistent_with_bounds() {
        let g = grid(6);
        for i in 0..g.cell_count() {
            let c = g.coord_of(i);
            let b = g.cell_bounds(c);
            assert_eq!(g.cell_of_point(b.center()), c);
        }
    }

    #[test]
    fn cells_overlapping_query() {
        let g = grid(4);
        // A small query strictly inside one cell.
        let q = Aabb::from_min_max(Vec3::splat(0.3), Vec3::splat(0.35));
        assert_eq!(g.cells_overlapping(&q), vec![CellCoord::new(1, 1, 1)]);
        // A query spanning half the volume in x.
        let q2 = Aabb::from_min_max(Vec3::new(0.0, 0.0, 0.0), Vec3::new(0.49, 0.1, 0.1));
        assert_eq!(g.cells_overlapping(&q2).len(), 2);
        // Query covering everything.
        let q3 = Aabb::from_min_max(Vec3::splat(-1.0), Vec3::splat(2.0));
        assert_eq!(g.cells_overlapping(&q3).len(), 64);
        // Disjoint query.
        let q4 = Aabb::from_min_max(Vec3::splat(2.0), Vec3::splat(3.0));
        assert!(g.cells_overlapping(&q4).is_empty());
    }

    #[test]
    fn overlapping_cells_really_overlap() {
        let g = grid(8);
        let q = Aabb::from_min_max(Vec3::new(0.1, 0.2, 0.3), Vec3::new(0.4, 0.45, 0.9));
        let cells = g.cells_overlapping(&q);
        assert!(!cells.is_empty());
        for c in &cells {
            assert!(g.cell_bounds(*c).intersects(&q));
        }
        // And cells not in the list do not overlap (exhaustive check).
        use std::collections::HashSet;
        let set: HashSet<_> = cells.iter().copied().collect();
        for i in 0..g.cell_count() {
            let c = g.coord_of(i);
            if !set.contains(&c) {
                let b = g.cell_bounds(c);
                // Interior-disjoint: intersection volume must be ~0.
                let inter = b.intersection(&q).map(|x| x.volume()).unwrap_or(0.0);
                assert!(inter < 1e-12);
            }
        }
    }
}
