//! Three-dimensional vector used for positions, extents and sizes.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A three-dimensional vector of `f64` components.
///
/// Used both as a point (object centers, query corners) and as an extent
/// (per-dimension sizes, the `maxExtent` of the query-window-extension
/// technique).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// The unit vector `(1, 1, 1)`.
    pub const ONE: Vec3 = Vec3 {
        x: 1.0,
        y: 1.0,
        z: 1.0,
    };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Clamps every component of `self` into `[lo, hi]` (component-wise).
    #[inline]
    pub fn clamp(self, lo: Vec3, hi: Vec3) -> Vec3 {
        self.max(lo).min(hi)
    }

    /// Product of the three components. For an extent vector this is the
    /// volume of the box it spans.
    #[inline]
    pub fn product(self) -> f64 {
        self.x * self.y * self.z
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the square root on hot paths).
    #[inline]
    pub fn length_squared(self) -> f64 {
        self.dot(self)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).length()
    }

    /// Squared Euclidean distance to another point (avoids the square root on
    /// hot paths such as the kNN best-first traversal).
    #[inline]
    pub fn distance_squared(self, other: Vec3) -> f64 {
        (self - other).length_squared()
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Returns `true` if every component is finite (not NaN or infinite).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Returns `true` if every component of `self` is less than or equal to
    /// the corresponding component of `other`.
    #[inline]
    pub fn le(self, other: Vec3) -> bool {
        self.x <= other.x && self.y <= other.y && self.z <= other.z
    }

    /// Returns `true` if every component of `self` is strictly less than the
    /// corresponding component of `other`.
    #[inline]
    pub fn lt(self, other: Vec3) -> bool {
        self.x < other.x && self.y < other.y && self.z < other.z
    }

    /// Returns the components as an array (x, y, z).
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Builds a vector from an array (x, y, z).
    #[inline]
    pub fn from_array(a: [f64; 3]) -> Vec3 {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            // analyzer: allow(out-of-range index is a caller bug; matches the std slice indexing contract)
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            // analyzer: allow(out-of-range index is a caller bug; matches the std slice indexing contract)
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x * o.x, self.y * o.y, self.z * o.z)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_constants() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.x, 1.0);
        assert_eq!(v.y, 2.0);
        assert_eq!(v.z, 3.0);
        assert_eq!(Vec3::ZERO, Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(Vec3::ONE, Vec3::splat(1.0));
    }

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(b / 2.0, Vec3::new(2.0, 2.5, 3.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a * b, Vec3::new(4.0, 10.0, 18.0));
    }

    #[test]
    fn assign_ops() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::splat(2.0);
        assert_eq!(v, Vec3::splat(3.0));
        v -= Vec3::splat(1.0);
        assert_eq!(v, Vec3::splat(2.0));
    }

    #[test]
    fn min_max_clamp() {
        let a = Vec3::new(1.0, 5.0, 3.0);
        let b = Vec3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, 3.0));
        let clamped = Vec3::new(-1.0, 10.0, 0.5).clamp(Vec3::ZERO, Vec3::ONE);
        assert_eq!(clamped, Vec3::new(0.0, 1.0, 0.5));
    }

    #[test]
    fn dot_length_distance() {
        let a = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(a.length(), 5.0);
        assert_eq!(a.length_squared(), 25.0);
        assert_eq!(a.dot(Vec3::new(1.0, 0.0, 0.0)), 3.0);
        assert_eq!(Vec3::ZERO.distance(a), 5.0);
        assert_eq!(Vec3::ZERO.distance_squared(a), 25.0);
    }

    #[test]
    fn product_and_components() {
        let v = Vec3::new(2.0, 3.0, 4.0);
        assert_eq!(v.product(), 24.0);
        assert_eq!(v.max_component(), 4.0);
        assert_eq!(v.min_component(), 2.0);
    }

    #[test]
    fn lerp_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::splat(2.0);
        assert_eq!(a.lerp(b, 0.5), Vec3::splat(1.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn indexing() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 2.0);
        assert_eq!(v[2], 3.0);
        v[1] = 9.0;
        assert_eq!(v.y, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexing_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn comparisons_and_finiteness() {
        assert!(Vec3::ZERO.le(Vec3::ONE));
        assert!(Vec3::ZERO.lt(Vec3::ONE));
        assert!(!Vec3::ONE.lt(Vec3::ONE));
        assert!(Vec3::ONE.le(Vec3::ONE));
        assert!(Vec3::ONE.is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(f64::INFINITY, 0.0, 0.0).is_finite());
    }

    #[test]
    fn array_roundtrip() {
        let v = Vec3::new(1.5, -2.5, 3.25);
        assert_eq!(Vec3::from_array(v.to_array()), v);
    }
}
