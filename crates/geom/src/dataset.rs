//! Dataset identifiers and dataset combinations.
//!
//! The paper's queries have the form `Q = {A; DS1, …, DSN}`: a spatial range
//! `A` plus the set of datasets it must be evaluated on. Combinations of
//! datasets are the unit the Statistics Collector counts and the Merger acts
//! on, so they need to be tiny, hashable and cheap to compare — a `u64`
//! bitmask supports up to 64 datasets, far more than the paper's 10.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one dataset (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DatasetId(pub u16);

impl DatasetId {
    /// Maximum number of datasets representable in a [`DatasetSet`].
    pub const MAX_DATASETS: usize = 64;

    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DS{}", self.0)
    }
}

impl From<u16> for DatasetId {
    fn from(v: u16) -> Self {
        DatasetId(v)
    }
}

/// A set of datasets represented as a bitmask (bit *i* set ⇔ dataset *i* in
/// the set). This is the combination `C = {DS1, …, DSN}` of the paper.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DatasetSet(pub u64);

impl DatasetSet {
    /// The empty set.
    pub const EMPTY: DatasetSet = DatasetSet(0);

    /// Creates a set containing a single dataset.
    #[inline]
    pub fn single(id: DatasetId) -> Self {
        assert!(
            id.index() < DatasetId::MAX_DATASETS,
            "dataset id out of range: {id}"
        );
        DatasetSet(1u64 << id.index())
    }

    /// Creates a set from an iterator of dataset ids.
    pub fn from_ids<I: IntoIterator<Item = DatasetId>>(ids: I) -> Self {
        let mut s = DatasetSet::EMPTY;
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Creates a set of the first `n` datasets `{DS0, …, DS(n-1)}`.
    #[inline]
    pub fn first_n(n: usize) -> Self {
        assert!(n <= DatasetId::MAX_DATASETS);
        if n == 64 {
            DatasetSet(u64::MAX)
        } else {
            DatasetSet((1u64 << n) - 1)
        }
    }

    /// Number of datasets in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if the set contains no dataset.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if `id` is a member.
    #[inline]
    pub fn contains(self, id: DatasetId) -> bool {
        self.0 & (1u64 << id.index()) != 0
    }

    /// Adds a dataset to the set.
    #[inline]
    pub fn insert(&mut self, id: DatasetId) {
        assert!(
            id.index() < DatasetId::MAX_DATASETS,
            "dataset id out of range: {id}"
        );
        self.0 |= 1u64 << id.index();
    }

    /// Removes a dataset from the set.
    #[inline]
    pub fn remove(&mut self, id: DatasetId) {
        self.0 &= !(1u64 << id.index());
    }

    /// Set union.
    #[inline]
    pub fn union(self, other: DatasetSet) -> DatasetSet {
        DatasetSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(self, other: DatasetSet) -> DatasetSet {
        DatasetSet(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    #[inline]
    pub fn difference(self, other: DatasetSet) -> DatasetSet {
        DatasetSet(self.0 & !other.0)
    }

    /// Returns `true` if every member of `self` is also in `other`
    /// (`self ⊆ other`).
    #[inline]
    pub fn is_subset_of(self, other: DatasetSet) -> bool {
        self.0 & other.0 == self.0
    }

    /// Returns `true` if every member of `other` is also in `self`
    /// (`self ⊇ other`).
    #[inline]
    pub fn is_superset_of(self, other: DatasetSet) -> bool {
        other.is_subset_of(self)
    }

    /// Iterates over the member dataset ids in increasing order.
    pub fn iter(self) -> impl Iterator<Item = DatasetId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as u16;
                bits &= bits - 1;
                Some(DatasetId(i))
            }
        })
    }

    /// Collects the member ids into a vector (increasing order).
    pub fn to_vec(self) -> Vec<DatasetId> {
        self.iter().collect()
    }
}

impl fmt::Display for DatasetSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<DatasetId> for DatasetSet {
    fn from_iter<T: IntoIterator<Item = DatasetId>>(iter: T) -> Self {
        DatasetSet::from_ids(iter)
    }
}

/// A queried combination of datasets together with bookkeeping helpers.
///
/// Thin wrapper over [`DatasetSet`] kept as a distinct type because the
/// Merger and the Statistics Collector reason about *combinations* (which
/// datasets were requested together), not arbitrary dataset sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Combination(pub DatasetSet);

impl Combination {
    /// Creates a combination from a dataset set.
    #[inline]
    pub fn new(set: DatasetSet) -> Self {
        Combination(set)
    }

    /// The underlying dataset set.
    #[inline]
    pub fn set(self) -> DatasetSet {
        self.0
    }

    /// Number of datasets in the combination (`|C|` in the paper).
    #[inline]
    pub fn size(self) -> usize {
        self.0.len()
    }
}

impl From<DatasetSet> for Combination {
    fn from(s: DatasetSet) -> Self {
        Combination(s)
    }
}

impl fmt::Display for Combination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Enumerates every combination of `m` datasets out of `n` (0-based ids), in
/// lexicographic order. Used by the workload generator to build the domain
/// the Gray-et-al. distributions draw from.
pub fn enumerate_combinations(n: usize, m: usize) -> Vec<DatasetSet> {
    assert!(n <= DatasetId::MAX_DATASETS);
    let mut out = Vec::new();
    if m == 0 || m > n {
        return out;
    }
    // Gosper's hack-free recursive enumeration: indices vector.
    let mut idx: Vec<usize> = (0..m).collect();
    loop {
        out.push(DatasetSet::from_ids(
            idx.iter().map(|&i| DatasetId(i as u16)),
        ));
        // Advance.
        let mut i = m;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - m {
                idx[i] += 1;
                for j in i + 1..m {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Number of combinations `C(n, m)` without overflow for the small values
/// used here.
pub fn binomial(n: usize, m: usize) -> usize {
    if m > n {
        return 0;
    }
    let m = m.min(n - m);
    let mut num: u128 = 1;
    let mut den: u128 = 1;
    for i in 0..m {
        num *= (n - i) as u128;
        den *= (i + 1) as u128;
    }
    (num / den) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_contains() {
        let s = DatasetSet::single(DatasetId(3));
        assert!(s.contains(DatasetId(3)));
        assert!(!s.contains(DatasetId(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn insert_remove() {
        let mut s = DatasetSet::EMPTY;
        assert!(s.is_empty());
        s.insert(DatasetId(0));
        s.insert(DatasetId(5));
        s.insert(DatasetId(5));
        assert_eq!(s.len(), 2);
        s.remove(DatasetId(0));
        assert_eq!(s.to_vec(), vec![DatasetId(5)]);
        s.remove(DatasetId(63));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn first_n_sets() {
        assert_eq!(DatasetSet::first_n(0), DatasetSet::EMPTY);
        assert_eq!(
            DatasetSet::first_n(3).to_vec(),
            vec![DatasetId(0), DatasetId(1), DatasetId(2)]
        );
        assert_eq!(DatasetSet::first_n(64).len(), 64);
    }

    #[test]
    fn set_algebra() {
        let a = DatasetSet::from_ids([DatasetId(0), DatasetId(1), DatasetId(2)]);
        let b = DatasetSet::from_ids([DatasetId(2), DatasetId(3)]);
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b).to_vec(), vec![DatasetId(2)]);
        assert_eq!(a.difference(b).to_vec(), vec![DatasetId(0), DatasetId(1)]);
        assert!(DatasetSet::single(DatasetId(1)).is_subset_of(a));
        assert!(a.is_superset_of(DatasetSet::single(DatasetId(1))));
        assert!(!a.is_subset_of(b));
        assert!(DatasetSet::EMPTY.is_subset_of(b));
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s = DatasetSet::from_ids([DatasetId(9), DatasetId(1), DatasetId(4)]);
        assert_eq!(s.to_vec(), vec![DatasetId(1), DatasetId(4), DatasetId(9)]);
    }

    #[test]
    fn display_formats() {
        let s = DatasetSet::from_ids([DatasetId(0), DatasetId(2)]);
        assert_eq!(format!("{s}"), "{DS0,DS2}");
        assert_eq!(format!("{}", Combination::new(s)), "C{DS0,DS2}");
        assert_eq!(format!("{}", DatasetId(7)), "DS7");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_dataset_id_panics() {
        let mut s = DatasetSet::EMPTY;
        s.insert(DatasetId(64));
    }

    #[test]
    fn combination_size() {
        let c = Combination::new(DatasetSet::first_n(5));
        assert_eq!(c.size(), 5);
        assert_eq!(c.set(), DatasetSet::first_n(5));
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(10, 1), 10);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(10, 5), 252);
        assert_eq!(binomial(10, 9), 10);
        assert_eq!(binomial(10, 10), 1);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn enumerate_combinations_counts_match_binomial() {
        for n in 1..=10usize {
            for m in 1..=n {
                let combos = enumerate_combinations(n, m);
                assert_eq!(combos.len(), binomial(n, m), "n={n} m={m}");
                // All unique, all size m, all within range.
                let mut seen = std::collections::HashSet::new();
                for c in &combos {
                    assert_eq!(c.len(), m);
                    assert!(c.is_subset_of(DatasetSet::first_n(n)));
                    assert!(seen.insert(*c));
                }
            }
        }
    }

    #[test]
    fn enumerate_combinations_edge_cases() {
        assert!(enumerate_combinations(5, 0).is_empty());
        assert!(enumerate_combinations(3, 4).is_empty());
        assert_eq!(enumerate_combinations(4, 4).len(), 1);
    }
}
