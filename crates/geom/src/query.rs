//! Typed queries over combinations of datasets.
//!
//! The paper's query has the form `Q = {A; DS1, …, DSN}`: an axis-aligned
//! range `A` evaluated over a set of datasets, answered with the objects of
//! the requested datasets whose MBRs intersect `A`. Real exploration portals
//! are also driven by point lookups, nearest-neighbour probes and
//! count/density summaries, so this module generalises the model into a typed
//! [`Query`] with four kinds:
//!
//! * [`RangeQuery`] — the paper's box scan,
//! * [`PointQuery`] — objects whose MBR contains one point,
//! * [`KnnQuery`] — the `k` objects nearest to a point (MBR `mindist`),
//! * [`CountQuery`] — the *number* of objects a range query would return,
//!   answerable without materializing the objects.
//!
//! Every kind comes with a brute-force oracle (`scan_*`) used by the tests
//! and the benchmark harness to validate every execution path.

use crate::{Aabb, DatasetSet, SpatialObject, Vec3};
use serde::{Deserialize, Serialize};

/// Sequence number of a query within a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueryId(pub u32);

impl QueryId {
    /// Raw index of the query in the workload sequence.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A spatial range query over a combination of datasets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeQuery {
    /// Position of the query in the workload (0-based).
    pub id: QueryId,
    /// The queried spatial range `A`.
    pub range: Aabb,
    /// The datasets the range must be evaluated on.
    pub datasets: DatasetSet,
}

impl RangeQuery {
    /// Creates a query.
    #[inline]
    pub fn new(id: QueryId, range: Aabb, datasets: DatasetSet) -> Self {
        RangeQuery {
            id,
            range,
            datasets,
        }
    }

    /// Volume of the queried range (`Vq` in the refinement rule).
    #[inline]
    pub fn volume(&self) -> f64 {
        self.range.volume()
    }

    /// Returns `true` if `object` is part of the query answer: it belongs to
    /// one of the queried datasets and its MBR intersects the range.
    #[inline]
    pub fn matches(&self, object: &SpatialObject) -> bool {
        self.datasets.contains(object.dataset) && object.mbr.intersects(&self.range)
    }

    /// The query range extended by `max_extent` (query-window extension):
    /// partitions are probed with the extended range, while the answer is
    /// still filtered with the original range via [`RangeQuery::matches`].
    #[inline]
    pub fn extended_range(&self, max_extent: Vec3) -> Aabb {
        // Objects are assigned by center; an object whose center lies up to
        // half of its extent away from the range can still intersect it, so
        // extending by half of the maximum extent is sufficient. We follow
        // the conservative full-extent extension used in the paper's
        // reference [13] formulation.
        self.range.expanded(max_extent * 0.5)
    }
}

/// Reference result computation: scans `objects` and returns the ids of those
/// matching the query. Used by tests and by the correctness oracle of the
/// benchmark harness to validate every index implementation.
pub fn scan_query<'a, I>(query: &RangeQuery, objects: I) -> Vec<SpatialObject>
where
    I: IntoIterator<Item = &'a SpatialObject>,
{
    objects
        .into_iter()
        .filter(|o| query.matches(o))
        .copied()
        .collect()
}

/// A point lookup: the objects of the requested datasets whose MBR contains
/// `point` (an ESASky-style "what is at this position" probe).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointQuery {
    /// Position of the query in the workload (0-based).
    pub id: QueryId,
    /// The probed position.
    pub point: Vec3,
    /// The datasets the lookup must be evaluated on.
    pub datasets: DatasetSet,
}

impl PointQuery {
    /// Creates a point query.
    #[inline]
    pub fn new(id: QueryId, point: Vec3, datasets: DatasetSet) -> Self {
        PointQuery {
            id,
            point,
            datasets,
        }
    }

    /// Returns `true` if `object` is part of the answer.
    #[inline]
    pub fn matches(&self, object: &SpatialObject) -> bool {
        self.datasets.contains(object.dataset) && object.mbr.contains_point(self.point)
    }

    /// The equivalent degenerate range query: a zero-extent box at the point
    /// intersects exactly the MBRs containing it, so the whole range-query
    /// machinery (query-window extension, partition probing, merge routing)
    /// answers point lookups unchanged.
    #[inline]
    pub fn as_range(&self) -> RangeQuery {
        RangeQuery::new(self.id, Aabb::from_point(self.point), self.datasets)
    }
}

/// A k-nearest-neighbour probe: the `k` objects of the requested datasets
/// whose MBRs are nearest to `point`, by minimum Euclidean distance from the
/// point to the MBR (zero when the point lies inside).
///
/// Ties are broken deterministically by `(distance, dataset, object id)`, so
/// every execution path — brute force, best-first octree, expanding-radius
/// baseline — returns the identical answer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnnQuery {
    /// Position of the query in the workload (0-based).
    pub id: QueryId,
    /// The probe position.
    pub point: Vec3,
    /// Number of neighbours requested.
    pub k: usize,
    /// The datasets the probe must be evaluated on.
    pub datasets: DatasetSet,
}

impl KnnQuery {
    /// Creates a kNN query.
    #[inline]
    pub fn new(id: QueryId, point: Vec3, k: usize, datasets: DatasetSet) -> Self {
        KnnQuery {
            id,
            point,
            k,
            datasets,
        }
    }

    /// Squared distance from the probe point to an object's MBR.
    #[inline]
    pub fn distance_squared(&self, object: &SpatialObject) -> f64 {
        object.mbr.min_distance_squared_to(self.point)
    }

    /// The total order used to rank candidates: squared distance, then
    /// dataset, then object id. Deterministic for any set of finite MBRs.
    #[inline]
    pub fn rank_key(&self, object: &SpatialObject) -> (f64, u16, u64) {
        (self.distance_squared(object), object.dataset.0, object.id.0)
    }
}

/// Compares two kNN rank keys ((squared distance, dataset, id) triples).
/// Distances of finite MBRs are never NaN, so the order is total.
#[inline]
pub fn knn_key_cmp(a: &(f64, u16, u64), b: &(f64, u16, u64)) -> std::cmp::Ordering {
    a.0.partial_cmp(&b.0)
        .expect("kNN distances are finite")
        .then(a.1.cmp(&b.1))
        .then(a.2.cmp(&b.2))
}

/// A count query: how many objects a [`RangeQuery`] with the same range and
/// datasets would return. The adaptive engine answers it from partition
/// metadata wherever a partition lies fully inside the range, without reading
/// the objects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountQuery {
    /// Position of the query in the workload (0-based).
    pub id: QueryId,
    /// The counted spatial range.
    pub range: Aabb,
    /// The datasets the count must be evaluated on.
    pub datasets: DatasetSet,
}

impl CountQuery {
    /// Creates a count query.
    #[inline]
    pub fn new(id: QueryId, range: Aabb, datasets: DatasetSet) -> Self {
        CountQuery {
            id,
            range,
            datasets,
        }
    }

    /// Returns `true` if `object` is counted.
    #[inline]
    pub fn matches(&self, object: &SpatialObject) -> bool {
        self.datasets.contains(object.dataset) && object.mbr.intersects(&self.range)
    }

    /// The equivalent materializing range query.
    #[inline]
    pub fn as_range(&self) -> RangeQuery {
        RangeQuery::new(self.id, self.range, self.datasets)
    }
}

/// The kind of a [`Query`], for reporting and per-kind aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryKind {
    /// Axis-aligned box scan.
    Range,
    /// Point lookup.
    Point,
    /// k-nearest-neighbour probe.
    KNearestNeighbors,
    /// Range count without materialization.
    Count,
}

impl QueryKind {
    /// Short display name ("range", "point", "knn", "count").
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Range => "range",
            QueryKind::Point => "point",
            QueryKind::KNearestNeighbors => "knn",
            QueryKind::Count => "count",
        }
    }

    /// Every kind, in display order.
    pub const ALL: [QueryKind; 4] = [
        QueryKind::Range,
        QueryKind::Point,
        QueryKind::KNearestNeighbors,
        QueryKind::Count,
    ];
}

/// A typed query: one of the four supported kinds, each over a combination of
/// datasets. This is what the generalized engine, the baselines and the
/// workload generators exchange.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Axis-aligned range query (the paper's form).
    Range(RangeQuery),
    /// Point lookup.
    Point(PointQuery),
    /// k-nearest-neighbour probe.
    KNearestNeighbors(KnnQuery),
    /// Range count.
    Count(CountQuery),
}

impl Query {
    /// The query's position in the workload.
    #[inline]
    pub fn id(&self) -> QueryId {
        match self {
            Query::Range(q) => q.id,
            Query::Point(q) => q.id,
            Query::KNearestNeighbors(q) => q.id,
            Query::Count(q) => q.id,
        }
    }

    /// The combination of datasets the query addresses.
    #[inline]
    pub fn datasets(&self) -> DatasetSet {
        match self {
            Query::Range(q) => q.datasets,
            Query::Point(q) => q.datasets,
            Query::KNearestNeighbors(q) => q.datasets,
            Query::Count(q) => q.datasets,
        }
    }

    /// The query's kind tag.
    #[inline]
    pub fn kind(&self) -> QueryKind {
        match self {
            Query::Range(_) => QueryKind::Range,
            Query::Point(_) => QueryKind::Point,
            Query::KNearestNeighbors(_) => QueryKind::KNearestNeighbors,
            Query::Count(_) => QueryKind::Count,
        }
    }
}

impl From<RangeQuery> for Query {
    fn from(q: RangeQuery) -> Self {
        Query::Range(q)
    }
}

impl From<PointQuery> for Query {
    fn from(q: PointQuery) -> Self {
        Query::Point(q)
    }
}

impl From<KnnQuery> for Query {
    fn from(q: KnnQuery) -> Self {
        Query::KNearestNeighbors(q)
    }
}

impl From<CountQuery> for Query {
    fn from(q: CountQuery) -> Self {
        Query::Count(q)
    }
}

/// The answer of a typed query: the matching objects, or a bare count for
/// [`CountQuery`] (which never materializes its objects).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAnswer {
    /// Objects, for range / point / kNN queries. kNN answers are sorted by
    /// `(distance, dataset, id)`.
    Objects(Vec<SpatialObject>),
    /// Count, for count queries.
    Count(u64),
}

impl QueryAnswer {
    /// Number of matching objects, regardless of representation.
    #[inline]
    pub fn count(&self) -> u64 {
        match self {
            QueryAnswer::Objects(objs) => objs.len() as u64,
            QueryAnswer::Count(n) => *n,
        }
    }

    /// The materialized objects, or `None` for count answers.
    #[inline]
    pub fn objects(&self) -> Option<&[SpatialObject]> {
        match self {
            QueryAnswer::Objects(objs) => Some(objs),
            QueryAnswer::Count(_) => None,
        }
    }
}

/// Brute-force point-query oracle.
pub fn scan_point_query<'a, I>(query: &PointQuery, objects: I) -> Vec<SpatialObject>
where
    I: IntoIterator<Item = &'a SpatialObject>,
{
    objects
        .into_iter()
        .filter(|o| query.matches(o))
        .copied()
        .collect()
}

/// Brute-force kNN oracle: every matching object ranked by
/// `(distance, dataset, id)`, truncated to `k`.
pub fn scan_knn_query<'a, I>(query: &KnnQuery, objects: I) -> Vec<SpatialObject>
where
    I: IntoIterator<Item = &'a SpatialObject>,
{
    let mut candidates: Vec<SpatialObject> = objects
        .into_iter()
        .filter(|o| query.datasets.contains(o.dataset))
        .copied()
        .collect();
    candidates.sort_by(|a, b| knn_key_cmp(&query.rank_key(a), &query.rank_key(b)));
    candidates.truncate(query.k);
    candidates
}

/// Brute-force count oracle.
pub fn scan_count_query<'a, I>(query: &CountQuery, objects: I) -> u64
where
    I: IntoIterator<Item = &'a SpatialObject>,
{
    objects.into_iter().filter(|o| query.matches(o)).count() as u64
}

/// Canonical, hashable identity of a query's *semantics*.
///
/// Two queries that must return the same answer over the same data map to the
/// same signature: the kind, the geometry (as exact `f64` bit patterns — no
/// epsilon games), `k` for kNN, and the dataset combination. The workload
/// position ([`QueryId`]) is deliberately excluded — re-asking the same
/// question later is the whole point of a result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuerySignature {
    /// Kind discriminant (0 = range, 1 = point, 2 = knn, 3 = count).
    kind: u8,
    /// Geometry as raw `f64` bit patterns: `[min.x, min.y, min.z, max.x,
    /// max.y, max.z]` for ranges/counts, the point duplicated for
    /// point/kNN probes.
    geometry: [u64; 6],
    /// `k` for kNN queries, 0 otherwise.
    k: u64,
    /// Raw bits of the queried dataset combination.
    datasets: u64,
}

impl QuerySignature {
    fn from_parts(kind: u8, min: Vec3, max: Vec3, k: u64, datasets: DatasetSet) -> Self {
        QuerySignature {
            kind,
            geometry: [
                min.x.to_bits(),
                min.y.to_bits(),
                min.z.to_bits(),
                max.x.to_bits(),
                max.y.to_bits(),
                max.z.to_bits(),
            ],
            k,
            datasets: datasets.0,
        }
    }

    /// The signature of `query`.
    pub fn of(query: &Query) -> Self {
        match query {
            Query::Range(q) => Self::from_parts(0, q.range.min, q.range.max, 0, q.datasets),
            Query::Point(q) => Self::from_parts(1, q.point, q.point, 0, q.datasets),
            Query::KNearestNeighbors(q) => {
                Self::from_parts(2, q.point, q.point, q.k as u64, q.datasets)
            }
            Query::Count(q) => Self::from_parts(3, q.range.min, q.range.max, 0, q.datasets),
        }
    }

    /// The dataset combination the signed query addresses.
    #[inline]
    pub fn datasets(&self) -> DatasetSet {
        DatasetSet(self.datasets)
    }
}

/// Brute-force oracle over any query kind.
pub fn scan_any_query<'a, I>(query: &Query, objects: I) -> QueryAnswer
where
    I: IntoIterator<Item = &'a SpatialObject>,
{
    match query {
        Query::Range(q) => QueryAnswer::Objects(scan_query(q, objects)),
        Query::Point(q) => QueryAnswer::Objects(scan_point_query(q, objects)),
        Query::KNearestNeighbors(q) => QueryAnswer::Objects(scan_knn_query(q, objects)),
        Query::Count(q) => QueryAnswer::Count(scan_count_query(q, objects)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetId, ObjectId};

    fn mk_obj(id: u64, ds: u16, lo: f64, hi: f64) -> SpatialObject {
        SpatialObject::new(
            ObjectId(id),
            DatasetId(ds),
            Aabb::from_min_max(Vec3::splat(lo), Vec3::splat(hi)),
        )
    }

    fn mk_query(lo: f64, hi: f64, datasets: &[u16]) -> RangeQuery {
        RangeQuery::new(
            QueryId(0),
            Aabb::from_min_max(Vec3::splat(lo), Vec3::splat(hi)),
            DatasetSet::from_ids(datasets.iter().map(|&d| DatasetId(d))),
        )
    }

    #[test]
    fn matches_requires_dataset_and_intersection() {
        let q = mk_query(0.0, 1.0, &[0, 2]);
        assert!(q.matches(&mk_obj(1, 0, 0.5, 1.5)));
        assert!(q.matches(&mk_obj(2, 2, 0.9, 2.0)));
        // Wrong dataset.
        assert!(!q.matches(&mk_obj(3, 1, 0.5, 0.6)));
        // No spatial overlap.
        assert!(!q.matches(&mk_obj(4, 0, 2.0, 3.0)));
    }

    #[test]
    fn volume() {
        let q = mk_query(0.0, 2.0, &[0]);
        assert_eq!(q.volume(), 8.0);
    }

    #[test]
    fn extended_range_grows_by_half_extent() {
        let q = mk_query(0.4, 0.6, &[0]);
        let ext = q.extended_range(Vec3::splat(0.2));
        assert!((ext.min - Vec3::splat(0.3)).length() < 1e-12);
        assert!((ext.max - Vec3::splat(0.7)).length() < 1e-12);
    }

    #[test]
    fn scan_query_reference() {
        let objects = [
            mk_obj(0, 0, 0.0, 0.1),
            mk_obj(1, 0, 0.45, 0.55),
            mk_obj(2, 1, 0.45, 0.55),
            mk_obj(3, 0, 0.9, 1.0),
        ];
        let q = mk_query(0.4, 0.6, &[0]);
        let res = scan_query(&q, objects.iter());
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].id, ObjectId(1));
    }

    #[test]
    fn query_id_index() {
        assert_eq!(QueryId(17).index(), 17);
    }

    #[test]
    fn point_query_matches_and_degenerate_range() {
        let q = PointQuery::new(
            QueryId(0),
            Vec3::splat(0.5),
            DatasetSet::from_ids([DatasetId(0)]),
        );
        assert!(q.matches(&mk_obj(1, 0, 0.4, 0.6)));
        assert!(!q.matches(&mk_obj(2, 0, 0.6, 0.9)));
        assert!(!q.matches(&mk_obj(3, 1, 0.4, 0.6)));
        // The degenerate range query answers identically.
        let rq = q.as_range();
        assert_eq!(rq.volume(), 0.0);
        assert!(rq.matches(&mk_obj(1, 0, 0.4, 0.6)));
        assert!(!rq.matches(&mk_obj(2, 0, 0.6, 0.9)));
    }

    #[test]
    fn knn_oracle_ranks_by_distance_then_ids() {
        let objects = [
            mk_obj(0, 0, 4.0, 5.0),
            mk_obj(1, 0, 2.0, 3.0),
            mk_obj(2, 1, 2.0, 3.0), // same distance as id 1 but dataset 1
            mk_obj(3, 0, 0.2, 0.4), // contains nothing; nearest to origin
            mk_obj(4, 2, 0.0, 1.0), // not in the queried datasets
        ];
        let q = KnnQuery::new(
            QueryId(0),
            Vec3::ZERO,
            3,
            DatasetSet::from_ids([DatasetId(0), DatasetId(1)]),
        );
        let res = scan_knn_query(&q, objects.iter());
        let ids: Vec<u64> = res.iter().map(|o| o.id.0).collect();
        // 3 first (closest), then the tie 1 vs 2 broken by dataset.
        assert_eq!(ids, vec![3, 1, 2]);
        // k larger than the candidate pool returns everything eligible.
        let all = scan_knn_query(&KnnQuery { k: 10, ..q }, objects.iter());
        assert_eq!(all.len(), 4);
        // k = 0 returns nothing.
        assert!(scan_knn_query(&KnnQuery { k: 0, ..q }, objects.iter()).is_empty());
    }

    #[test]
    fn count_oracle_matches_range_oracle() {
        let objects = [
            mk_obj(0, 0, 0.0, 0.1),
            mk_obj(1, 0, 0.45, 0.55),
            mk_obj(2, 1, 0.45, 0.55),
            mk_obj(3, 0, 0.9, 1.0),
        ];
        let rq = mk_query(0.4, 0.6, &[0, 1]);
        let cq = CountQuery::new(rq.id, rq.range, rq.datasets);
        assert_eq!(
            scan_count_query(&cq, objects.iter()),
            scan_query(&rq, objects.iter()).len() as u64
        );
        assert_eq!(cq.as_range(), rq);
        assert!(cq.matches(&objects[1]));
        assert!(!cq.matches(&objects[0]));
    }

    #[test]
    fn query_enum_accessors_and_conversions() {
        let ds = DatasetSet::from_ids([DatasetId(2)]);
        let range: Query = mk_query(0.0, 1.0, &[2]).into();
        let point: Query = PointQuery::new(QueryId(1), Vec3::ZERO, ds).into();
        let knn: Query = KnnQuery::new(QueryId(2), Vec3::ZERO, 4, ds).into();
        let count: Query = CountQuery::new(QueryId(3), Aabb::unit(), ds).into();
        assert_eq!(range.kind(), QueryKind::Range);
        assert_eq!(point.kind(), QueryKind::Point);
        assert_eq!(knn.kind(), QueryKind::KNearestNeighbors);
        assert_eq!(count.kind(), QueryKind::Count);
        assert_eq!(point.id(), QueryId(1));
        assert_eq!(knn.datasets(), ds);
        assert_eq!(QueryKind::ALL.len(), 4);
        assert_eq!(QueryKind::KNearestNeighbors.name(), "knn");
    }

    #[test]
    fn query_signatures_identify_semantics_not_workload_position() {
        let ds = DatasetSet::from_ids([DatasetId(0), DatasetId(3)]);
        let a: Query = RangeQuery::new(QueryId(0), Aabb::unit(), ds).into();
        let b: Query = RangeQuery::new(QueryId(99), Aabb::unit(), ds).into();
        assert_eq!(QuerySignature::of(&a), QuerySignature::of(&b));
        assert_eq!(QuerySignature::of(&a).datasets(), ds);
        // A different range, a different combination, or a different kind all
        // change the signature.
        let shifted: Query = RangeQuery::new(
            QueryId(0),
            Aabb::from_min_max(Vec3::ZERO, Vec3::splat(2.0)),
            ds,
        )
        .into();
        assert_ne!(QuerySignature::of(&a), QuerySignature::of(&shifted));
        let other_ds: Query =
            RangeQuery::new(QueryId(0), Aabb::unit(), DatasetSet::single(DatasetId(0))).into();
        assert_ne!(QuerySignature::of(&a), QuerySignature::of(&other_ds));
        let count: Query = CountQuery::new(QueryId(0), Aabb::unit(), ds).into();
        assert_ne!(QuerySignature::of(&a), QuerySignature::of(&count));
        // kNN signatures include k.
        let k3: Query = KnnQuery::new(QueryId(0), Vec3::ZERO, 3, ds).into();
        let k4: Query = KnnQuery::new(QueryId(1), Vec3::ZERO, 4, ds).into();
        assert_ne!(QuerySignature::of(&k3), QuerySignature::of(&k4));
        assert_eq!(
            QuerySignature::of(&k3),
            QuerySignature::of(&KnnQuery::new(QueryId(7), Vec3::ZERO, 3, ds).into())
        );
        // Point and range signatures never collide even for a degenerate box.
        let p: Query = PointQuery::new(QueryId(0), Vec3::splat(0.5), ds).into();
        let degenerate: Query =
            RangeQuery::new(QueryId(0), Aabb::from_point(Vec3::splat(0.5)), ds).into();
        assert_ne!(QuerySignature::of(&p), QuerySignature::of(&degenerate));
    }

    #[test]
    fn scan_any_query_dispatches_per_kind() {
        let objects = [mk_obj(0, 0, 0.0, 1.0), mk_obj(1, 0, 5.0, 6.0)];
        let ds = DatasetSet::single(DatasetId(0));
        let a = scan_any_query(&mk_query(0.0, 2.0, &[0]).into(), objects.iter());
        assert_eq!(a.count(), 1);
        assert_eq!(a.objects().unwrap()[0].id.0, 0);
        let c = scan_any_query(
            &CountQuery::new(
                QueryId(0),
                Aabb::from_min_max(Vec3::ZERO, Vec3::splat(10.0)),
                ds,
            )
            .into(),
            objects.iter(),
        );
        assert_eq!(c, QueryAnswer::Count(2));
        assert!(c.objects().is_none());
        let k = scan_any_query(
            &KnnQuery::new(QueryId(0), Vec3::ZERO, 1, ds).into(),
            objects.iter(),
        );
        assert_eq!(k.objects().unwrap().len(), 1);
        let p = scan_any_query(
            &PointQuery::new(QueryId(0), Vec3::splat(0.5), ds).into(),
            objects.iter(),
        );
        assert_eq!(p.count(), 1);
    }
}
