//! Range queries over combinations of datasets.
//!
//! A query in the paper has the form `Q = {A; DS1, …, DSN}`: an axis-aligned
//! range `A` evaluated over a set of datasets. Results are the objects of the
//! requested datasets whose MBRs intersect `A`.

use crate::{Aabb, DatasetSet, SpatialObject, Vec3};
use serde::{Deserialize, Serialize};

/// Sequence number of a query within a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueryId(pub u32);

impl QueryId {
    /// Raw index of the query in the workload sequence.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A spatial range query over a combination of datasets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeQuery {
    /// Position of the query in the workload (0-based).
    pub id: QueryId,
    /// The queried spatial range `A`.
    pub range: Aabb,
    /// The datasets the range must be evaluated on.
    pub datasets: DatasetSet,
}

impl RangeQuery {
    /// Creates a query.
    #[inline]
    pub fn new(id: QueryId, range: Aabb, datasets: DatasetSet) -> Self {
        RangeQuery {
            id,
            range,
            datasets,
        }
    }

    /// Volume of the queried range (`Vq` in the refinement rule).
    #[inline]
    pub fn volume(&self) -> f64 {
        self.range.volume()
    }

    /// Returns `true` if `object` is part of the query answer: it belongs to
    /// one of the queried datasets and its MBR intersects the range.
    #[inline]
    pub fn matches(&self, object: &SpatialObject) -> bool {
        self.datasets.contains(object.dataset) && object.mbr.intersects(&self.range)
    }

    /// The query range extended by `max_extent` (query-window extension):
    /// partitions are probed with the extended range, while the answer is
    /// still filtered with the original range via [`RangeQuery::matches`].
    #[inline]
    pub fn extended_range(&self, max_extent: Vec3) -> Aabb {
        // Objects are assigned by center; an object whose center lies up to
        // half of its extent away from the range can still intersect it, so
        // extending by half of the maximum extent is sufficient. We follow
        // the conservative full-extent extension used in the paper's
        // reference [13] formulation.
        self.range.expanded(max_extent * 0.5)
    }
}

/// Reference result computation: scans `objects` and returns the ids of those
/// matching the query. Used by tests and by the correctness oracle of the
/// benchmark harness to validate every index implementation.
pub fn scan_query<'a, I>(query: &RangeQuery, objects: I) -> Vec<SpatialObject>
where
    I: IntoIterator<Item = &'a SpatialObject>,
{
    objects
        .into_iter()
        .filter(|o| query.matches(o))
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetId, ObjectId};

    fn mk_obj(id: u64, ds: u16, lo: f64, hi: f64) -> SpatialObject {
        SpatialObject::new(
            ObjectId(id),
            DatasetId(ds),
            Aabb::from_min_max(Vec3::splat(lo), Vec3::splat(hi)),
        )
    }

    fn mk_query(lo: f64, hi: f64, datasets: &[u16]) -> RangeQuery {
        RangeQuery::new(
            QueryId(0),
            Aabb::from_min_max(Vec3::splat(lo), Vec3::splat(hi)),
            DatasetSet::from_ids(datasets.iter().map(|&d| DatasetId(d))),
        )
    }

    #[test]
    fn matches_requires_dataset_and_intersection() {
        let q = mk_query(0.0, 1.0, &[0, 2]);
        assert!(q.matches(&mk_obj(1, 0, 0.5, 1.5)));
        assert!(q.matches(&mk_obj(2, 2, 0.9, 2.0)));
        // Wrong dataset.
        assert!(!q.matches(&mk_obj(3, 1, 0.5, 0.6)));
        // No spatial overlap.
        assert!(!q.matches(&mk_obj(4, 0, 2.0, 3.0)));
    }

    #[test]
    fn volume() {
        let q = mk_query(0.0, 2.0, &[0]);
        assert_eq!(q.volume(), 8.0);
    }

    #[test]
    fn extended_range_grows_by_half_extent() {
        let q = mk_query(0.4, 0.6, &[0]);
        let ext = q.extended_range(Vec3::splat(0.2));
        assert!((ext.min - Vec3::splat(0.3)).length() < 1e-12);
        assert!((ext.max - Vec3::splat(0.7)).length() < 1e-12);
    }

    #[test]
    fn scan_query_reference() {
        let objects = [
            mk_obj(0, 0, 0.0, 0.1),
            mk_obj(1, 0, 0.45, 0.55),
            mk_obj(2, 1, 0.45, 0.55),
            mk_obj(3, 0, 0.9, 1.0),
        ];
        let q = mk_query(0.4, 0.6, &[0]);
        let res = scan_query(&q, objects.iter());
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].id, ObjectId(1));
    }

    #[test]
    fn query_id_index() {
        assert_eq!(QueryId(17).index(), 17);
    }
}
