//! Axis-aligned bounding boxes — the universal spatial shape of the system.
//!
//! Datasets, partitions, queries and object MBRs are all axis-aligned boxes.
//! The paper's refinement rule compares partition volume against query volume
//! (`Vp / Vq > rt`), and the query-window-extension technique grows a query
//! box by the dataset's maximum object extent; both operations live here.

use crate::Vec3;
use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box defined by its minimum and maximum corners.
///
/// Invariant: `min` is component-wise less than or equal to `max` for every
/// box produced by the constructors in this module. Degenerate (zero-extent)
/// boxes are allowed; they behave as points or axis-aligned rectangles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Minimum corner (inclusive).
    pub min: Vec3,
    /// Maximum corner (inclusive).
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from two corners, normalising so the invariant holds.
    #[inline]
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Aabb {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Creates a box from corners that are already ordered.
    ///
    /// # Panics
    /// Panics in debug builds if `min` is not component-wise `<= max`.
    #[inline]
    pub fn from_min_max(min: Vec3, max: Vec3) -> Self {
        debug_assert!(
            min.le(max),
            "Aabb::from_min_max requires min <= max: {min:?} {max:?}"
        );
        Aabb { min, max }
    }

    /// Creates a box from its center and full extent (side lengths).
    #[inline]
    pub fn from_center_extent(center: Vec3, extent: Vec3) -> Self {
        let half = extent * 0.5;
        Aabb {
            min: center - half,
            max: center + half,
        }
    }

    /// Creates a degenerate box containing exactly one point.
    #[inline]
    pub fn from_point(p: Vec3) -> Self {
        Aabb { min: p, max: p }
    }

    /// The unit cube `[0,1]^3`.
    #[inline]
    pub fn unit() -> Self {
        Aabb {
            min: Vec3::ZERO,
            max: Vec3::ONE,
        }
    }

    /// An "empty" box that is the identity for [`Aabb::union`]: its min is
    /// +inf and its max is -inf so that any union with it yields the other box.
    #[inline]
    pub fn empty() -> Self {
        Aabb {
            min: Vec3::splat(f64::INFINITY),
            max: Vec3::splat(f64::NEG_INFINITY),
        }
    }

    /// Returns `true` if this is the special empty box (or otherwise inverted).
    #[inline]
    pub fn is_empty(&self) -> bool {
        !(self.min.le(self.max))
    }

    /// Center point of the box.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Full extent (side lengths) of the box.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Volume of the box. Zero for degenerate boxes, zero for empty boxes.
    #[inline]
    pub fn volume(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.extent().product()
    }

    /// Surface area of the box (used by R-tree heuristics).
    #[inline]
    pub fn surface_area(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.x * e.z)
    }

    /// Returns `true` if the two boxes intersect (touching counts).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
            && self.min.z <= other.max.z
            && self.max.z >= other.min.z
    }

    /// Returns `true` if `other` lies entirely inside `self` (boundaries count).
    #[inline]
    pub fn contains(&self, other: &Aabb) -> bool {
        self.min.le(other.min) && other.max.le(self.max)
    }

    /// Returns `true` if point `p` lies inside the box (boundaries count).
    #[inline]
    pub fn contains_point(&self, p: Vec3) -> bool {
        self.min.le(p) && p.le(self.max)
    }

    /// Returns `true` if point `p` lies inside the half-open box
    /// `[min, max)`. Space-oriented partitioning uses half-open cells so that
    /// a point on a shared cell boundary belongs to exactly one cell.
    #[inline]
    pub fn contains_point_half_open(&self, p: Vec3) -> bool {
        self.min.le(p) && p.lt(self.max)
    }

    /// Smallest box containing both inputs.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Intersection of the two boxes, or `None` if they do not overlap.
    #[inline]
    pub fn intersection(&self, other: &Aabb) -> Option<Aabb> {
        let min = self.min.max(other.min);
        let max = self.max.min(other.max);
        if min.le(max) {
            Some(Aabb { min, max })
        } else {
            None
        }
    }

    /// Grows the box by `amount` in every direction (per dimension).
    ///
    /// This is the *query window extension* of Stefanakis et al. used by the
    /// paper: objects are assigned to partitions by their center only, and a
    /// query is answered correctly by extending its range with the maximum
    /// object extent seen in the dataset.
    #[inline]
    pub fn expanded(&self, amount: Vec3) -> Aabb {
        Aabb {
            min: self.min - amount,
            max: self.max + amount,
        }
    }

    /// Grows the box by the same `amount` in every dimension.
    #[inline]
    pub fn expanded_uniform(&self, amount: f64) -> Aabb {
        self.expanded(Vec3::splat(amount))
    }

    /// Clips the box to `bounds`, returning the overlapping part or a
    /// degenerate box on the boundary when there is no overlap.
    #[inline]
    pub fn clipped_to(&self, bounds: &Aabb) -> Aabb {
        Aabb {
            min: self.min.clamp(bounds.min, bounds.max),
            max: self.max.clamp(bounds.min, bounds.max),
        }
    }

    /// Splits the box at its center into `2^3 = 8` octants, returned in
    /// Z-order (x fastest, then y, then z).
    pub fn octants(&self) -> [Aabb; 8] {
        let c = self.center();
        let mut out = [*self; 8];
        for (i, slot) in out.iter_mut().enumerate() {
            let min = Vec3::new(
                if i & 1 == 0 { self.min.x } else { c.x },
                if i & 2 == 0 { self.min.y } else { c.y },
                if i & 4 == 0 { self.min.z } else { c.z },
            );
            let max = Vec3::new(
                if i & 1 == 0 { c.x } else { self.max.x },
                if i & 2 == 0 { c.y } else { self.max.y },
                if i & 4 == 0 { c.z } else { self.max.z },
            );
            *slot = Aabb { min, max };
        }
        out
    }

    /// Splits the box into a regular `k × k × k` grid of sub-boxes, returned
    /// in row-major order (x fastest). This generalises [`Aabb::octants`] to
    /// the configurable partitions-per-level (`ppl`) of the paper, where
    /// `ppl = k^3`.
    pub fn subdivide(&self, k: usize) -> Vec<Aabb> {
        assert!(k >= 1, "subdivision factor must be at least 1");
        let e = self.extent() / k as f64;
        let mut out = Vec::with_capacity(k * k * k);
        for iz in 0..k {
            for iy in 0..k {
                for ix in 0..k {
                    let min = Vec3::new(
                        self.min.x + e.x * ix as f64,
                        self.min.y + e.y * iy as f64,
                        self.min.z + e.z * iz as f64,
                    );
                    // Use the parent's max on the last cell of each axis to
                    // avoid floating-point gaps at the boundary.
                    let max = Vec3::new(
                        if ix + 1 == k {
                            self.max.x
                        } else {
                            self.min.x + e.x * (ix + 1) as f64
                        },
                        if iy + 1 == k {
                            self.max.y
                        } else {
                            self.min.y + e.y * (iy + 1) as f64
                        },
                        if iz + 1 == k {
                            self.max.z
                        } else {
                            self.min.z + e.z * (iz + 1) as f64
                        },
                    );
                    out.push(Aabb { min, max });
                }
            }
        }
        out
    }

    /// Squared Euclidean distance from point `p` to the closest point of the
    /// box (zero when `p` lies inside). This is the `mindist` bound of
    /// best-first nearest-neighbour traversals: no object stored inside the
    /// box can be closer to `p` than this.
    #[inline]
    pub fn min_distance_squared_to(&self, p: Vec3) -> f64 {
        let d = (self.min - p).max(p - self.max).max(Vec3::ZERO);
        d.length_squared()
    }

    /// Euclidean distance from point `p` to the closest point of the box
    /// (zero when `p` lies inside).
    #[inline]
    pub fn min_distance_to(&self, p: Vec3) -> f64 {
        self.min_distance_squared_to(p).sqrt()
    }

    /// Squared Euclidean distance from point `p` to the farthest corner of
    /// the box — an upper bound on the distance to anything stored inside.
    #[inline]
    pub fn max_distance_squared_to(&self, p: Vec3) -> f64 {
        let d = (p - self.min).abs().max((self.max - p).abs());
        d.length_squared()
    }

    /// Index (in the order produced by [`Aabb::subdivide`]) of the sub-box of
    /// a `k × k × k` subdivision that contains point `p` under half-open
    /// semantics. Points outside the box are clamped to the nearest cell.
    #[inline]
    pub fn subdivision_cell_of(&self, k: usize, p: Vec3) -> usize {
        debug_assert!(k >= 1);
        let e = self.extent();
        let rel = p - self.min;
        let cell = |r: f64, extent: f64| -> usize {
            if extent <= 0.0 {
                return 0;
            }
            let f = (r / extent * k as f64).floor();
            (f.max(0.0) as usize).min(k - 1)
        };
        let ix = cell(rel.x, e.x);
        let iy = cell(rel.y, e.y);
        let iz = cell(rel.z, e.z);
        (iz * k + iy) * k + ix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Aabb {
        Aabb::unit()
    }

    #[test]
    fn constructors_normalise() {
        let b = Aabb::new(Vec3::new(1.0, 0.0, 2.0), Vec3::new(0.0, 1.0, 1.0));
        assert_eq!(b.min, Vec3::new(0.0, 0.0, 1.0));
        assert_eq!(b.max, Vec3::new(1.0, 1.0, 2.0));
    }

    #[test]
    fn center_extent_roundtrip() {
        let b = Aabb::from_center_extent(Vec3::splat(0.5), Vec3::splat(1.0));
        assert_eq!(b, unit());
        assert_eq!(b.center(), Vec3::splat(0.5));
        assert_eq!(b.extent(), Vec3::splat(1.0));
    }

    #[test]
    fn volume_and_surface_area() {
        let b = Aabb::from_min_max(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(b.volume(), 24.0);
        assert_eq!(b.surface_area(), 2.0 * (6.0 + 12.0 + 8.0));
        assert_eq!(Aabb::empty().volume(), 0.0);
        assert_eq!(Aabb::from_point(Vec3::ONE).volume(), 0.0);
    }

    #[test]
    fn intersection_tests() {
        let a = unit();
        let b = Aabb::from_min_max(Vec3::splat(0.5), Vec3::splat(1.5));
        let c = Aabb::from_min_max(Vec3::splat(2.0), Vec3::splat(3.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching boxes intersect.
        let d = Aabb::from_min_max(Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 1.0, 1.0));
        assert!(a.intersects(&d));
    }

    #[test]
    fn containment() {
        let a = unit();
        let inner = Aabb::from_min_max(Vec3::splat(0.25), Vec3::splat(0.75));
        assert!(a.contains(&inner));
        assert!(!inner.contains(&a));
        assert!(a.contains(&a));
        assert!(a.contains_point(Vec3::splat(0.5)));
        assert!(a.contains_point(Vec3::ONE));
        assert!(!a.contains_point(Vec3::splat(1.1)));
        assert!(a.contains_point_half_open(Vec3::ZERO));
        assert!(!a.contains_point_half_open(Vec3::ONE));
    }

    #[test]
    fn union_and_intersection() {
        let a = unit();
        let b = Aabb::from_min_max(Vec3::splat(0.5), Vec3::splat(2.0));
        let u = a.union(&b);
        assert_eq!(u, Aabb::from_min_max(Vec3::ZERO, Vec3::splat(2.0)));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Aabb::from_min_max(Vec3::splat(0.5), Vec3::ONE));
        let c = Aabb::from_min_max(Vec3::splat(3.0), Vec3::splat(4.0));
        assert!(a.intersection(&c).is_none());
        // Union with empty is identity.
        assert_eq!(a.union(&Aabb::empty()), a);
    }

    #[test]
    fn expansion_is_query_window_extension() {
        let q = Aabb::from_min_max(Vec3::splat(0.4), Vec3::splat(0.6));
        let ext = Vec3::new(0.1, 0.2, 0.0);
        let e = q.expanded(ext);
        assert!((e.min - Vec3::new(0.3, 0.2, 0.4)).length() < 1e-12);
        assert!((e.max - Vec3::new(0.7, 0.8, 0.6)).length() < 1e-12);
        let u = q.expanded_uniform(0.1);
        assert!((u.min - Vec3::splat(0.3)).length() < 1e-12);
        assert!((u.max - Vec3::splat(0.7)).length() < 1e-12);
    }

    #[test]
    fn clipping() {
        let big = Aabb::from_min_max(Vec3::splat(-1.0), Vec3::splat(2.0));
        let clipped = big.clipped_to(&unit());
        assert_eq!(clipped, unit());
    }

    #[test]
    fn octants_partition_the_box() {
        let b = unit();
        let oct = b.octants();
        let total: f64 = oct.iter().map(|o| o.volume()).sum();
        assert!((total - b.volume()).abs() < 1e-12);
        // Every octant is contained and has 1/8 the volume.
        for o in &oct {
            assert!(b.contains(o));
            assert!((o.volume() - 0.125).abs() < 1e-12);
        }
        // Octant 0 is the min corner, octant 7 the max corner.
        assert_eq!(oct[0].min, b.min);
        assert_eq!(oct[7].max, b.max);
    }

    #[test]
    fn subdivide_matches_octants_for_k2() {
        let b = Aabb::from_min_max(Vec3::ZERO, Vec3::new(2.0, 4.0, 6.0));
        let subs = b.subdivide(2);
        let oct = b.octants();
        assert_eq!(subs.len(), 8);
        for (s, o) in subs.iter().zip(oct.iter()) {
            assert!((s.min - o.min).length() < 1e-12);
            assert!((s.max - o.max).length() < 1e-12);
        }
    }

    #[test]
    fn subdivide_volumes_sum_to_parent() {
        let b = Aabb::from_min_max(Vec3::new(-1.0, 0.0, 2.0), Vec3::new(3.0, 5.0, 4.0));
        for k in [1usize, 2, 3, 4] {
            let subs = b.subdivide(k);
            assert_eq!(subs.len(), k * k * k);
            let total: f64 = subs.iter().map(|s| s.volume()).sum();
            assert!((total - b.volume()).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn subdivision_cell_lookup_agrees_with_geometry() {
        let b = Aabb::from_min_max(Vec3::ZERO, Vec3::new(4.0, 4.0, 4.0));
        let k = 4;
        let subs = b.subdivide(k);
        for (i, s) in subs.iter().enumerate() {
            let c = s.center();
            assert_eq!(
                b.subdivision_cell_of(k, c),
                i,
                "cell center must map to its own cell"
            );
        }
        // Clamping outside points.
        assert_eq!(b.subdivision_cell_of(k, Vec3::splat(-10.0)), 0);
        assert_eq!(b.subdivision_cell_of(k, Vec3::splat(100.0)), k * k * k - 1);
        // Max corner maps to the last cell, not out of range.
        assert_eq!(b.subdivision_cell_of(k, b.max), k * k * k - 1);
    }

    #[test]
    fn point_distance_bounds() {
        let b = Aabb::from_min_max(Vec3::ZERO, Vec3::splat(2.0));
        // Inside: zero min distance.
        assert_eq!(b.min_distance_squared_to(Vec3::ONE), 0.0);
        assert_eq!(b.min_distance_to(Vec3::ONE), 0.0);
        // On the boundary: still zero.
        assert_eq!(b.min_distance_squared_to(Vec3::splat(2.0)), 0.0);
        // Outside along one axis.
        assert_eq!(b.min_distance_squared_to(Vec3::new(5.0, 1.0, 1.0)), 9.0);
        // Outside along all axes (corner distance).
        assert_eq!(b.min_distance_squared_to(Vec3::splat(3.0)), 3.0);
        assert_eq!(b.min_distance_squared_to(Vec3::splat(-1.0)), 3.0);
        // Farthest corner from the center is the main diagonal half-length.
        assert_eq!(b.max_distance_squared_to(Vec3::ONE), 3.0);
        // Farthest corner from the min corner is the full diagonal.
        assert_eq!(b.max_distance_squared_to(Vec3::ZERO), 12.0);
        // min <= max always.
        for p in [Vec3::splat(-4.0), Vec3::ONE, Vec3::splat(7.5)] {
            assert!(b.min_distance_squared_to(p) <= b.max_distance_squared_to(p));
        }
    }

    #[test]
    fn degenerate_box_cell_lookup() {
        let b = Aabb::from_point(Vec3::splat(1.0));
        assert_eq!(b.subdivision_cell_of(4, Vec3::splat(1.0)), 0);
    }
}
