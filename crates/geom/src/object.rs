//! Spatial objects: the unit of data stored, indexed and retrieved.
//!
//! In the paper, a dataset is a set of neuron surface meshes. The indexing
//! layer only ever needs an object's minimum bounding rectangle (MBR), its
//! center (space-oriented partitioning assigns by center) and its owning
//! dataset, so [`SpatialObject`] carries exactly that plus a stable
//! identifier. The synthetic data generator produces objects from tubular
//! neuron [`Segment`]s.

use crate::{Aabb, DatasetId, Vec3};
use serde::{Deserialize, Serialize};

/// Identifier of one spatial object, unique within its dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl ObjectId {
    /// Returns the raw value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One spatial object: identifier, owning dataset and bounding box.
///
/// The fixed-size record layout (see `odyssey-storage::codec`) serialises an
/// object into 64 bytes, so a 4 KB page holds 63 objects plus a header.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialObject {
    /// Object identifier, unique within `dataset`.
    pub id: ObjectId,
    /// Dataset this object belongs to.
    pub dataset: DatasetId,
    /// Minimum bounding rectangle of the object.
    pub mbr: Aabb,
}

impl SpatialObject {
    /// Creates a new object.
    #[inline]
    pub fn new(id: ObjectId, dataset: DatasetId, mbr: Aabb) -> Self {
        SpatialObject { id, dataset, mbr }
    }

    /// Center of the object's MBR. Space-oriented partitioning (both the
    /// Grid baseline and Space Odyssey's Octree) assigns objects to exactly
    /// one partition based on this point.
    #[inline]
    pub fn center(&self) -> Vec3 {
        self.mbr.center()
    }

    /// Extent (side lengths) of the object's MBR, used to maintain the
    /// per-dataset `maxExtent` for query-window extension.
    #[inline]
    pub fn extent(&self) -> Vec3 {
        self.mbr.extent()
    }

    /// Returns `true` if the object's MBR intersects the query range.
    #[inline]
    pub fn intersects(&self, range: &Aabb) -> bool {
        self.mbr.intersects(range)
    }
}

/// A tubular neuron segment: a cylinder between two points with a radius.
///
/// The synthetic neuroscience generator models neuron morphologies as trees
/// of such segments; each segment is converted to a [`SpatialObject`] through
/// its bounding box, mirroring how the original datasets reduce mesh pieces
/// to MBRs for indexing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point of the segment.
    pub start: Vec3,
    /// End point of the segment.
    pub end: Vec3,
    /// Radius of the tubular segment.
    pub radius: f64,
}

impl Segment {
    /// Creates a new segment.
    #[inline]
    pub fn new(start: Vec3, end: Vec3, radius: f64) -> Self {
        debug_assert!(radius >= 0.0, "segment radius must be non-negative");
        Segment { start, end, radius }
    }

    /// Axis-aligned bounding box of the segment (cylinder approximated by the
    /// box around both endpoints expanded by the radius).
    #[inline]
    pub fn mbr(&self) -> Aabb {
        Aabb::new(self.start, self.end).expanded_uniform(self.radius)
    }

    /// Length of the segment's axis.
    #[inline]
    pub fn length(&self) -> f64 {
        self.start.distance(self.end)
    }

    /// Converts the segment into a spatial object.
    #[inline]
    pub fn to_object(&self, id: ObjectId, dataset: DatasetId) -> SpatialObject {
        SpatialObject::new(id, dataset, self.mbr())
    }
}

/// The smallest [`ObjectId`] strictly greater than every id in `objects`
/// (`ObjectId(0)` for an empty collection). Online ingestion uses this to
/// keep newly arriving objects unique within their dataset.
pub fn next_object_id<'a, I: IntoIterator<Item = &'a SpatialObject>>(objects: I) -> ObjectId {
    ObjectId(objects.into_iter().map(|o| o.id.0 + 1).max().unwrap_or(0))
}

/// Materializes a batch of newly arrived MBRs as objects of `dataset`, with
/// consecutive ids starting at `first`. This is the arrival-side counterpart
/// of [`Segment::to_object`]: ingestion sources deliver bare geometry, and
/// the engine needs stable `(dataset, id)` identities for them.
pub fn arrivals_from_mbrs<I: IntoIterator<Item = Aabb>>(
    dataset: DatasetId,
    first: ObjectId,
    mbrs: I,
) -> Vec<SpatialObject> {
    mbrs.into_iter()
        .enumerate()
        .map(|(i, mbr)| SpatialObject::new(ObjectId(first.0 + i as u64), dataset, mbr))
        .collect()
}

/// Computes the component-wise maximum extent over a collection of objects.
///
/// This is the `maxExtent` of the query-window-extension technique: when a
/// dataset is queried, the query box is expanded by this vector so that
/// objects assigned (by center) to neighbouring partitions are still found.
pub fn max_extent<'a, I: IntoIterator<Item = &'a SpatialObject>>(objects: I) -> Vec3 {
    objects
        .into_iter()
        .fold(Vec3::ZERO, |acc, o| acc.max(o.extent()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(id: u64, min: f64, max: f64) -> SpatialObject {
        SpatialObject::new(
            ObjectId(id),
            DatasetId(0),
            Aabb::from_min_max(Vec3::splat(min), Vec3::splat(max)),
        )
    }

    #[test]
    fn object_center_and_extent() {
        let o = obj(1, 0.0, 2.0);
        assert_eq!(o.center(), Vec3::splat(1.0));
        assert_eq!(o.extent(), Vec3::splat(2.0));
        assert_eq!(o.id.raw(), 1);
    }

    #[test]
    fn object_intersection() {
        let o = obj(1, 0.0, 1.0);
        assert!(o.intersects(&Aabb::from_min_max(Vec3::splat(0.5), Vec3::splat(2.0))));
        assert!(!o.intersects(&Aabb::from_min_max(Vec3::splat(1.5), Vec3::splat(2.0))));
    }

    #[test]
    fn segment_mbr_includes_radius() {
        let s = Segment::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 0.25);
        let mbr = s.mbr();
        assert_eq!(mbr.min, Vec3::new(-0.25, -0.25, -0.25));
        assert_eq!(mbr.max, Vec3::new(1.25, 0.25, 0.25));
        assert!((s.length() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segment_to_object_carries_ids() {
        let s = Segment::new(Vec3::ZERO, Vec3::ONE, 0.1);
        let o = s.to_object(ObjectId(42), DatasetId(3));
        assert_eq!(o.id, ObjectId(42));
        assert_eq!(o.dataset, DatasetId(3));
        assert_eq!(o.mbr, s.mbr());
    }

    #[test]
    fn arrival_helpers_assign_fresh_consecutive_ids() {
        let existing = [obj(3, 0.0, 1.0), obj(7, 0.0, 1.0), obj(5, 0.0, 1.0)];
        assert_eq!(next_object_id(existing.iter()), ObjectId(8));
        assert_eq!(next_object_id(std::iter::empty()), ObjectId(0));
        let arrivals = arrivals_from_mbrs(
            DatasetId(2),
            ObjectId(8),
            (0..3).map(|i| Aabb::from_min_max(Vec3::splat(i as f64), Vec3::splat(i as f64 + 1.0))),
        );
        assert_eq!(arrivals.len(), 3);
        for (i, o) in arrivals.iter().enumerate() {
            assert_eq!(o.id, ObjectId(8 + i as u64));
            assert_eq!(o.dataset, DatasetId(2));
        }
        assert_eq!(next_object_id(arrivals.iter()), ObjectId(11));
    }

    #[test]
    fn max_extent_over_objects() {
        let objs = [
            SpatialObject::new(
                ObjectId(0),
                DatasetId(0),
                Aabb::from_min_max(Vec3::ZERO, Vec3::new(1.0, 0.1, 0.1)),
            ),
            SpatialObject::new(
                ObjectId(1),
                DatasetId(0),
                Aabb::from_min_max(Vec3::ZERO, Vec3::new(0.1, 2.0, 0.1)),
            ),
            SpatialObject::new(
                ObjectId(2),
                DatasetId(0),
                Aabb::from_min_max(Vec3::ZERO, Vec3::new(0.1, 0.1, 3.0)),
            ),
        ];
        assert_eq!(max_extent(objs.iter()), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(max_extent(std::iter::empty()), Vec3::ZERO);
    }
}
