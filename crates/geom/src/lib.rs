//! # odyssey-geom
//!
//! Geometry primitives and the query model shared by every other crate of the
//! Space Odyssey reproduction.
//!
//! The paper operates on three-dimensional spatial objects (neuron surface
//! meshes reduced to their bounding boxes) that belong to one of up to a few
//! dozen *datasets*. Queries are axis-aligned range queries over an arbitrary
//! *combination* of datasets. This crate provides:
//!
//! * [`Vec3`] / [`Aabb`] — plain `f64` vector and axis-aligned bounding box,
//! * [`SpatialObject`] — an object identifier, its owning dataset and its MBR,
//! * [`DatasetId`] / [`DatasetSet`] — compact dataset identifiers and bitset
//!   combinations (the `C = {DS1, …, DSN}` of the paper),
//! * [`Query`] — the typed query model: [`RangeQuery`] (the paper's
//!   `Q = {A; DS1, …, DSN}` form) plus [`PointQuery`], [`KnnQuery`] and
//!   [`CountQuery`], with brute-force oracles for each kind,
//! * [`GridSpec`] — uniform-grid cell arithmetic used by the static Grid
//!   baseline and by Space Odyssey's space-oriented partitioning,
//! * [`morton`] — Z-order encoding used for packing objects into disk pages.
//!
//! Everything here is deterministic, `Copy`-friendly and allocation-free on
//! the hot paths, following the database-performance guidance used for this
//! project.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aabb;
pub mod dataset;
pub mod grid;
pub mod morton;
pub mod object;
pub mod query;
pub mod vec3;

pub use aabb::Aabb;
pub use dataset::{binomial, enumerate_combinations, Combination, DatasetId, DatasetSet};
pub use grid::{CellCoord, GridSpec};
pub use object::{
    arrivals_from_mbrs, max_extent, next_object_id, ObjectId, Segment, SpatialObject,
};
pub use query::{
    knn_key_cmp, scan_any_query, scan_count_query, scan_knn_query, scan_point_query, scan_query,
    CountQuery, KnnQuery, PointQuery, Query, QueryAnswer, QueryId, QueryKind, QuerySignature,
    RangeQuery,
};
pub use vec3::Vec3;

/// Number of spatial dimensions used throughout the system.
///
/// The paper's use case (neuroscience meshes) is three-dimensional; the
/// Octree therefore splits into `2^DIMS = 8` children at the minimum
/// partitions-per-level setting.
pub const DIMS: usize = 3;
