//! Three-dimensional Morton (Z-order) codes.
//!
//! FLAT's page packing and the data generator use Z-order to give spatially
//! close objects close positions in a one-dimensional order, which in turn
//! makes page reads during neighbourhood crawls largely sequential.

use crate::{Aabb, Vec3};

/// Number of bits encoded per dimension (21 × 3 = 63 bits fit in a `u64`).
pub const BITS_PER_DIM: u32 = 21;

/// Spreads the lowest 21 bits of `v` so that there are two zero bits between
/// every payload bit ("part1by2").
#[inline]
fn part1by2(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff; // 21 bits
    x = (x | (x << 32)) & 0x1f00000000ffff;
    x = (x | (x << 16)) & 0x1f0000ff0000ff;
    x = (x | (x << 8)) & 0x100f00f00f00f00f;
    x = (x | (x << 4)) & 0x10c30c30c30c30c3;
    x = (x | (x << 2)) & 0x1249249249249249;
    x
}

/// Inverse of [`part1by2`].
#[inline]
fn compact1by2(v: u64) -> u64 {
    let mut x = v & 0x1249249249249249;
    x = (x | (x >> 2)) & 0x10c30c30c30c30c3;
    x = (x | (x >> 4)) & 0x100f00f00f00f00f;
    x = (x | (x >> 8)) & 0x1f0000ff0000ff;
    x = (x | (x >> 16)) & 0x1f00000000ffff;
    x = (x | (x >> 32)) & 0x1f_ffff;
    x
}

/// Interleaves three 21-bit integer coordinates into a 63-bit Morton code.
#[inline]
pub fn encode(x: u64, y: u64, z: u64) -> u64 {
    debug_assert!(x < (1 << BITS_PER_DIM));
    debug_assert!(y < (1 << BITS_PER_DIM));
    debug_assert!(z < (1 << BITS_PER_DIM));
    part1by2(x) | (part1by2(y) << 1) | (part1by2(z) << 2)
}

/// Inverse of [`encode`]: recovers the three 21-bit coordinates.
#[inline]
pub fn decode(code: u64) -> (u64, u64, u64) {
    (
        compact1by2(code),
        compact1by2(code >> 1),
        compact1by2(code >> 2),
    )
}

/// Maps a point inside `bounds` to a Morton code by quantising each
/// coordinate to 21 bits. Points outside the bounds are clamped.
#[inline]
pub fn encode_point(p: Vec3, bounds: &Aabb) -> u64 {
    let scale = (1u64 << BITS_PER_DIM) as f64 - 1.0;
    let e = bounds.extent();
    let q = |v: f64, lo: f64, extent: f64| -> u64 {
        if extent <= 0.0 {
            return 0;
        }
        let t = ((v - lo) / extent).clamp(0.0, 1.0);
        (t * scale).round() as u64
    };
    encode(
        q(p.x, bounds.min.x, e.x),
        q(p.y, bounds.min.y, e.y),
        q(p.z, bounds.min.z, e.z),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn encode_decode_roundtrip_small() {
        for x in 0..8u64 {
            for y in 0..8u64 {
                for z in 0..8u64 {
                    let code = encode(x, y, z);
                    assert_eq!(decode(code), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn encode_is_monotone_in_each_axis_at_origin() {
        // With the other coordinates at zero, the code is monotone in one axis.
        let mut prev = 0;
        for x in 1..100u64 {
            let c = encode(x, 0, 0);
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn encode_point_corners() {
        let b = Aabb::unit();
        assert_eq!(encode_point(Vec3::ZERO, &b), 0);
        let max_code = encode_point(Vec3::ONE, &b);
        let (x, y, z) = decode(max_code);
        let max = (1u64 << BITS_PER_DIM) - 1;
        assert_eq!((x, y, z), (max, max, max));
        // Clamping.
        assert_eq!(encode_point(Vec3::splat(-4.0), &b), 0);
        assert_eq!(encode_point(Vec3::splat(9.0), &b), max_code);
    }

    #[test]
    fn degenerate_bounds_yield_zero() {
        let b = Aabb::from_point(Vec3::splat(2.0));
        assert_eq!(encode_point(Vec3::splat(2.0), &b), 0);
    }

    #[test]
    fn locality_nearby_points_share_prefix() {
        let b = Aabb::unit();
        let a = encode_point(Vec3::new(0.50, 0.50, 0.50), &b);
        let near = encode_point(Vec3::new(0.5000001, 0.50, 0.50), &b);
        let far = encode_point(Vec3::new(0.99, 0.99, 0.01), &b);
        // The near point's code differs from a in fewer high bits than the far one.
        let diff_near = (a ^ near).leading_zeros();
        let diff_far = (a ^ far).leading_zeros();
        assert!(diff_near >= diff_far);
    }

    #[test]
    fn prop_roundtrip_and_code_fits_63_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(0x3d);
        for _ in 0..4096 {
            let x = rng.gen_range(0u64..(1 << 21));
            let y = rng.gen_range(0u64..(1 << 21));
            let z = rng.gen_range(0u64..(1 << 21));
            let code = encode(x, y, z);
            assert_eq!(decode(code), (x, y, z));
            assert!(code < (1u64 << 63));
        }
    }
}
