//! Property-based tests for the geometry core: these are the invariants the
//! rest of the system (partitioning, merging, query routing) relies on.
//!
//! The properties are exercised over seeded random inputs (the build
//! environment has no registry access, so `proptest` is replaced by a
//! deterministic ChaCha-driven case generator with the same assertions).

use odyssey_geom::{
    Aabb, DatasetId, DatasetSet, GridSpec, ObjectId, QueryId, RangeQuery, SpatialObject, Vec3,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const CASES: usize = 256;

fn rng(salt: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x9e0_2016 ^ salt)
}

fn rand_vec3(rng: &mut ChaCha8Rng, lo: f64, hi: f64) -> Vec3 {
    Vec3::new(
        rng.gen_range(lo..hi),
        rng.gen_range(lo..hi),
        rng.gen_range(lo..hi),
    )
}

fn rand_aabb(rng: &mut ChaCha8Rng) -> Aabb {
    Aabb::new(rand_vec3(rng, -100.0, 100.0), rand_vec3(rng, -100.0, 100.0))
}

#[test]
fn aabb_new_normalises() {
    let mut rng = rng(1);
    for _ in 0..CASES {
        let bb = Aabb::new(
            rand_vec3(&mut rng, -10.0, 10.0),
            rand_vec3(&mut rng, -10.0, 10.0),
        );
        assert!(bb.min.le(bb.max));
        assert!(bb.volume() >= 0.0);
    }
}

#[test]
fn union_contains_both() {
    let mut rng = rng(2);
    for _ in 0..CASES {
        let (a, b) = (rand_aabb(&mut rng), rand_aabb(&mut rng));
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
        assert!(u.volume() + 1e-9 >= a.volume().max(b.volume()));
    }
}

#[test]
fn intersection_is_contained_and_symmetric() {
    let mut rng = rng(3);
    for _ in 0..CASES {
        let (a, b) = (rand_aabb(&mut rng), rand_aabb(&mut rng));
        match (a.intersection(&b), b.intersection(&a)) {
            (Some(i1), Some(i2)) => {
                assert_eq!(i1, i2);
                assert!(a.contains(&i1));
                assert!(b.contains(&i1));
                assert!(a.intersects(&b));
            }
            (None, None) => {
                assert!(!a.contains(&b) || a.is_empty() || b.is_empty());
            }
            _ => panic!("intersection not symmetric for {a:?} and {b:?}"),
        }
    }
}

#[test]
fn intersects_iff_intersection_exists() {
    let mut rng = rng(4);
    for _ in 0..CASES {
        let (a, b) = (rand_aabb(&mut rng), rand_aabb(&mut rng));
        assert_eq!(a.intersects(&b), a.intersection(&b).is_some());
    }
}

#[test]
fn expansion_preserves_containment() {
    let mut rng = rng(5);
    for _ in 0..CASES {
        let a = rand_aabb(&mut rng);
        let amount = rng.gen_range(0.0..5.0);
        assert!(a.expanded_uniform(amount).contains(&a));
    }
}

#[test]
fn octants_tile_parent() {
    let mut rng = rng(6);
    for _ in 0..CASES {
        let a = rand_aabb(&mut rng);
        let total: f64 = a.octants().iter().map(|o| o.volume()).sum();
        assert!((total - a.volume()).abs() <= 1e-6 * (1.0 + a.volume()));
        for o in a.octants() {
            assert!(a.contains(&o));
        }
    }
}

#[test]
fn subdivide_tiles_parent() {
    let mut rng = rng(7);
    for _ in 0..CASES {
        let a = rand_aabb(&mut rng);
        let k = rng.gen_range(1usize..5);
        let subs = a.subdivide(k);
        assert_eq!(subs.len(), k * k * k);
        let total: f64 = subs.iter().map(|s| s.volume()).sum();
        assert!((total - a.volume()).abs() <= 1e-6 * (1.0 + a.volume()));
        for s in &subs {
            assert!(a.contains(s));
        }
    }
}

#[test]
fn subdivision_cell_contains_interior_point() {
    let mut rng = rng(8);
    for _ in 0..CASES {
        let k = rng.gen_range(1usize..5);
        let p = rand_vec3(&mut rng, 0.001, 0.999);
        let bounds = Aabb::unit();
        let idx = bounds.subdivision_cell_of(k, p);
        let cell = bounds.subdivide(k)[idx];
        assert!(
            cell.contains_point(p),
            "point {p:?} not in cell {cell:?} (k={k}, idx={idx})"
        );
    }
}

#[test]
fn grid_cell_of_point_contains_point() {
    let mut rng = rng(9);
    for _ in 0..CASES {
        let n = rng.gen_range(1u32..16);
        let p = rand_vec3(&mut rng, 0.0, 1.0);
        let g = GridSpec::new(Aabb::unit(), n);
        let c = g.cell_of_point(p);
        assert!(g.cell_bounds(c).contains_point(p));
    }
}

#[test]
fn grid_overlap_enumeration_is_sound() {
    let mut rng = rng(10);
    for _ in 0..CASES {
        let n = rng.gen_range(1u32..12);
        let g = GridSpec::new(Aabb::unit(), n);
        let q = Aabb::new(rand_vec3(&mut rng, 0.0, 1.0), rand_vec3(&mut rng, 0.0, 1.0));
        let cells = g.cells_overlapping(&q);
        // Soundness: every returned cell overlaps.
        for c in &cells {
            assert!(g.cell_bounds(*c).intersects(&q));
        }
        // Completeness: every overlapping cell is returned.
        let set: std::collections::HashSet<_> = cells.into_iter().collect();
        for i in 0..g.cell_count() {
            let c = g.coord_of(i);
            if g.cell_bounds(c).intersects(&q) {
                assert!(set.contains(&c));
            }
        }
    }
}

#[test]
fn dataset_set_roundtrip() {
    let mut rng = rng(11);
    for _ in 0..CASES {
        let len = rng.gen_range(0usize..20);
        let ids: Vec<u16> = (0..len).map(|_| rng.gen_range(0u16..64)).collect();
        let set = DatasetSet::from_ids(ids.iter().map(|&i| DatasetId(i)));
        for &i in &ids {
            assert!(set.contains(DatasetId(i)));
        }
        let unique: std::collections::BTreeSet<_> = ids.iter().copied().collect();
        assert_eq!(set.len(), unique.len());
        let back: Vec<u16> = set.iter().map(|d| d.0).collect();
        let expect: Vec<u16> = unique.into_iter().collect();
        assert_eq!(back, expect);
    }
}

#[test]
fn dataset_set_algebra_laws() {
    let mut rng = rng(12);
    for _ in 0..CASES {
        let a = DatasetSet(rng.gen_range(0..=u64::MAX));
        let b = DatasetSet(rng.gen_range(0..=u64::MAX));
        assert_eq!(a.union(b), b.union(a));
        assert_eq!(a.intersection(b), b.intersection(a));
        assert!(a.intersection(b).is_subset_of(a));
        assert!(a.is_subset_of(a.union(b)));
        assert_eq!(a.difference(b).intersection(b), DatasetSet::EMPTY);
        assert_eq!(a.difference(b).union(a.intersection(b)), a);
    }
}

#[test]
fn query_window_extension_is_correct() {
    let mut rng = rng(13);
    for _ in 0..CASES {
        // The core invariant behind the paper's replication-free partitioning:
        // if an object intersects the query, then its *center* falls inside
        // the query extended by half of the maximum extent.
        let obj = SpatialObject::new(
            ObjectId(0),
            DatasetId(0),
            Aabb::from_center_extent(rand_vec3(&mut rng, 0.1, 0.9), rand_vec3(&mut rng, 0.0, 0.2)),
        );
        let q = RangeQuery::new(
            QueryId(0),
            Aabb::new(rand_vec3(&mut rng, 0.0, 1.0), rand_vec3(&mut rng, 0.0, 1.0)),
            DatasetSet::single(DatasetId(0)),
        );
        let max_extent = obj.extent();
        if q.matches(&obj) {
            let extended = q.extended_range(max_extent);
            assert!(
                extended.contains_point(obj.center()),
                "center {:?} escaped extended range {:?}",
                obj.center(),
                extended
            );
        }
    }
}
