//! Property-based tests for the geometry core: these are the invariants the
//! rest of the system (partitioning, merging, query routing) relies on.

use odyssey_geom::{Aabb, DatasetId, DatasetSet, GridSpec, ObjectId, RangeQuery, QueryId, SpatialObject, Vec3};
use proptest::prelude::*;

fn vec3_strategy(lo: f64, hi: f64) -> impl Strategy<Value = Vec3> {
    (lo..hi, lo..hi, lo..hi).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn aabb_strategy() -> impl Strategy<Value = Aabb> {
    (vec3_strategy(-100.0, 100.0), vec3_strategy(-100.0, 100.0)).prop_map(|(a, b)| Aabb::new(a, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn aabb_new_normalises(a in vec3_strategy(-10.0, 10.0), b in vec3_strategy(-10.0, 10.0)) {
        let bb = Aabb::new(a, b);
        prop_assert!(bb.min.le(bb.max));
        prop_assert!(bb.volume() >= 0.0);
    }

    #[test]
    fn union_contains_both(a in aabb_strategy(), b in aabb_strategy()) {
        let u = a.union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
        prop_assert!(u.volume() + 1e-9 >= a.volume().max(b.volume()));
    }

    #[test]
    fn intersection_is_contained_and_symmetric(a in aabb_strategy(), b in aabb_strategy()) {
        match (a.intersection(&b), b.intersection(&a)) {
            (Some(i1), Some(i2)) => {
                prop_assert_eq!(i1, i2);
                prop_assert!(a.contains(&i1));
                prop_assert!(b.contains(&i1));
                prop_assert!(a.intersects(&b));
            }
            (None, None) => {
                // Boxes may still touch exactly on a face (intersects is inclusive),
                // but a missing intersection implies no interior overlap.
                prop_assert!(!a.contains(&b) || a.is_empty() || b.is_empty());
            }
            _ => prop_assert!(false, "intersection not symmetric"),
        }
    }

    #[test]
    fn intersects_iff_intersection_exists(a in aabb_strategy(), b in aabb_strategy()) {
        prop_assert_eq!(a.intersects(&b), a.intersection(&b).is_some());
    }

    #[test]
    fn expansion_preserves_containment(a in aabb_strategy(), amount in 0.0..5.0f64) {
        let e = a.expanded_uniform(amount);
        prop_assert!(e.contains(&a));
    }

    #[test]
    fn octants_tile_parent(a in aabb_strategy()) {
        let total: f64 = a.octants().iter().map(|o| o.volume()).sum();
        prop_assert!((total - a.volume()).abs() <= 1e-6 * (1.0 + a.volume()));
        for o in a.octants() {
            prop_assert!(a.contains(&o));
        }
    }

    #[test]
    fn subdivide_tiles_parent(a in aabb_strategy(), k in 1usize..5) {
        let subs = a.subdivide(k);
        prop_assert_eq!(subs.len(), k * k * k);
        let total: f64 = subs.iter().map(|s| s.volume()).sum();
        prop_assert!((total - a.volume()).abs() <= 1e-6 * (1.0 + a.volume()));
        for s in &subs {
            prop_assert!(a.contains(s));
        }
    }

    #[test]
    fn subdivision_cell_contains_interior_point(
        k in 1usize..5,
        p in vec3_strategy(0.001, 0.999),
    ) {
        let bounds = Aabb::unit();
        let idx = bounds.subdivision_cell_of(k, p);
        let cell = bounds.subdivide(k)[idx];
        prop_assert!(cell.contains_point(p), "point {p:?} not in cell {cell:?} (k={k}, idx={idx})");
    }

    #[test]
    fn grid_cell_of_point_contains_point(
        n in 1u32..16,
        p in vec3_strategy(0.0, 1.0),
    ) {
        let g = GridSpec::new(Aabb::unit(), n);
        let c = g.cell_of_point(p);
        prop_assert!(g.cell_bounds(c).contains_point(p));
    }

    #[test]
    fn grid_overlap_enumeration_is_sound(
        n in 1u32..12,
        a in vec3_strategy(0.0, 1.0),
        b in vec3_strategy(0.0, 1.0),
    ) {
        let g = GridSpec::new(Aabb::unit(), n);
        let q = Aabb::new(a, b);
        let cells = g.cells_overlapping(&q);
        // Soundness: every returned cell overlaps.
        for c in &cells {
            prop_assert!(g.cell_bounds(*c).intersects(&q));
        }
        // Completeness: every overlapping cell is returned.
        let set: std::collections::HashSet<_> = cells.into_iter().collect();
        for i in 0..g.cell_count() {
            let c = g.coord_of(i);
            if g.cell_bounds(c).intersects(&q) {
                prop_assert!(set.contains(&c));
            }
        }
    }

    #[test]
    fn dataset_set_roundtrip(ids in proptest::collection::vec(0u16..64, 0..20)) {
        let set = DatasetSet::from_ids(ids.iter().map(|&i| DatasetId(i)));
        for &i in &ids {
            prop_assert!(set.contains(DatasetId(i)));
        }
        let unique: std::collections::BTreeSet<_> = ids.iter().copied().collect();
        prop_assert_eq!(set.len(), unique.len());
        let back: Vec<u16> = set.iter().map(|d| d.0).collect();
        let expect: Vec<u16> = unique.into_iter().collect();
        prop_assert_eq!(back, expect);
    }

    #[test]
    fn dataset_set_algebra_laws(a_bits in any::<u64>(), b_bits in any::<u64>()) {
        let a = DatasetSet(a_bits);
        let b = DatasetSet(b_bits);
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.intersection(b), b.intersection(a));
        prop_assert!(a.intersection(b).is_subset_of(a));
        prop_assert!(a.is_subset_of(a.union(b)));
        prop_assert_eq!(a.difference(b).intersection(b), DatasetSet::EMPTY);
        prop_assert_eq!(a.difference(b).union(a.intersection(b)), a);
    }

    #[test]
    fn query_window_extension_is_correct(
        obj_center in vec3_strategy(0.1, 0.9),
        obj_extent in vec3_strategy(0.0, 0.2),
        q_min in vec3_strategy(0.0, 1.0),
        q_max in vec3_strategy(0.0, 1.0),
    ) {
        // The core invariant behind the paper's replication-free partitioning:
        // if an object intersects the query, then its *center* falls inside
        // the query extended by half of the maximum extent.
        let obj = SpatialObject::new(
            ObjectId(0),
            DatasetId(0),
            Aabb::from_center_extent(obj_center, obj_extent),
        );
        let q = RangeQuery::new(QueryId(0), Aabb::new(q_min, q_max), DatasetSet::single(DatasetId(0)));
        let max_extent = obj.extent();
        if q.matches(&obj) {
            let extended = q.extended_range(max_extent);
            prop_assert!(
                extended.contains_point(obj.center()),
                "center {:?} escaped extended range {:?}",
                obj.center(),
                extended
            );
        }
    }
}
