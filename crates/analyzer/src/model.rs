//! AST-lite model of the workspace: functions, lock classifications, guard
//! scopes, acquisition edges, call sites, WAL-append sites, panic sites.
//!
//! The model is built from the token stream alone (no type information).
//! The workspace meets it halfway: every lock is constructed through
//! `Shared::new(LockClass::X, ...)` / `Exclusive::new(LockClass::X, ...)`
//! with a globally unique field/binding name per class, which makes
//! name-based classification exact. Where a receiver's class is not
//! inferrable from a construction site (e.g. an accessor method returning
//! `&Exclusive<_>`), a `// analyzer: lock(name = Class)` directive supplies
//! it.
//!
//! # Guard-scope model
//!
//! * `let g = x.read();` — the guard lives until the end of the enclosing
//!   block or an explicit `drop(g)`.
//! * `x.lock().f(...)` (not bound by a plain `let`) — a *temporary* guard,
//!   held for the remainder of the statement (matching Rust's
//!   end-of-full-statement temporary lifetime).
//!
//! Every acquisition and every call records the set of classes held at that
//! point; interprocedural closure (`Model::finish`) then turns calls
//! into edges via each callee's transitively acquired classes.

use crate::lexer::{lex, Directive, Lexed, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Method names whose argless invocation is a lock acquisition.
const ACQUIRE_METHODS: [&str; 3] = ["read", "write", "lock"];

/// Keywords that can precede `(` without being calls.
const KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "loop", "return", "in", "move", "let", "else", "as", "where",
    "break", "continue",
];

/// Generic wrapper type names skipped when extracting the "interesting" type
/// idents from a field declaration (`wal: Option<Exclusive<MetaWal>>` →
/// `MetaWal`).
const WRAPPER_TYPES: [&str; 12] = [
    "Shared",
    "Exclusive",
    "Option",
    "Arc",
    "Box",
    "Vec",
    "VecDeque",
    "HashMap",
    "BTreeMap",
    "RwLock",
    "Mutex",
    "Result",
];

/// Method names whose presence in a statement means a discarded result was
/// inspected or transformed, not silently swallowed.
const RESCUE_METHODS: [&str; 10] = [
    "is_ok",
    "is_err",
    "err",
    "map_err",
    "ok_or",
    "ok_or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect_err",
];

/// Standard-library method names that must NOT resolve through the untyped
/// by-name fallback: local functions that happen to share these names
/// (`ResultCache::len`, `BufferPool::get`, a cursor's `Iterator::next`, ...)
/// would otherwise be attributed to every `Vec::len`/`HashMap::get` call in
/// the workspace. Calls to the real local functions still resolve through
/// the typed paths (guard receiver, `self.method`, `self.field.method`,
/// `Type::method`).
const STD_METHOD_NAMES: [&str; 31] = [
    "file_name",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "clear",
    "contains",
    "contains_key",
    "append",
    "extend",
    "retain",
    "iter",
    "iter_mut",
    "next",
    "peek",
    "find",
    "map",
    "filter",
    "collect",
    "clone",
    "take",
    "replace",
    "last",
    "first",
    "entry",
    "drain",
    "split_off",
];

/// A lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Lint identifier (kebab-case).
    pub lint: String,
    /// File the finding is anchored in.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// One deduplicated lock-acquisition edge (held → acquired), with an
/// exemplar site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Class held when the acquisition happened.
    pub from: String,
    /// Class acquired.
    pub to: String,
    /// Exemplar file.
    pub file: String,
    /// Exemplar line.
    pub line: u32,
    /// `true` when the edge came through a call (the acquisition happens
    /// inside a callee) rather than a direct acquisition.
    pub via_call: bool,
}

/// How a call's receiver chain is rooted.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Receiver {
    /// `guard.method(...)` or `x.lock().method(...)` — the receiver is (or
    /// derives from) a guard of this class; candidates are restricted to
    /// impls of the class's protected data type(s).
    Guard(String),
    /// `self.method(...)` / `self.field.method(...)` / `Type::func(...)` —
    /// candidates are restricted to impls of these types (expanded through
    /// trait impls), with no by-name fallback.
    Typed(BTreeSet<String>),
    /// `module::func(...)` — a module-qualified free call, resolved by name.
    Module,
    /// Anything else: resolved by name (method calls additionally skip
    /// [`STD_METHOD_NAMES`]).
    Plain,
}

/// A recorded call site.
#[derive(Debug, Clone)]
struct CallSite {
    name: String,
    receiver: Receiver,
    is_method: bool,
    held: Vec<String>,
    file: usize,
    line: u32,
}

/// A recorded `durability::log` / `.log_meta(` site.
#[derive(Debug, Clone)]
pub struct LogSite {
    /// Function (index into [`Model::functions`]) containing the call.
    pub func: usize,
    /// File index.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// `MetaRecord::X` variant named in the call arguments, if syntactically
    /// visible.
    pub record: Option<String>,
    /// Lock classes held at the call.
    pub held: Vec<String>,
    /// Whether a `sync_file` call appears earlier in the same function.
    pub prior_sync: bool,
    /// `true` for a raw `.log_meta(` call (bypassing `durability::log`).
    pub raw_log_meta: bool,
}

/// A panic-surface site (`.unwrap()`, `.expect(`, `panic!`, ...).
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// File index.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// Which construct (`unwrap`, `expect`, `panic`, ...).
    pub what: String,
}

/// A swallowed-result site: a statement that discards its value via
/// `let _ = ...;` or a terminal `.ok();`, with no rescue (`?`, `unwrap`,
/// `is_err`, `map_err`, ...) anywhere in the same statement.
#[derive(Debug, Clone)]
pub struct SwallowSite {
    /// Function (index into [`Model::functions`]) containing the statement.
    pub func: usize,
    /// File index.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// Which discard form (`"let _"` or `".ok()"`).
    pub how: &'static str,
    /// Whether the statement contains an argless `.join()` (a thread join —
    /// discarding it swallows a worker panic).
    pub join: bool,
    /// Filled by `Model::finish`: callees in the discarded statement that
    /// resolve to an io-fallible workspace function.
    pub fallible_callees: Vec<String>,
    calls: Vec<CallSite>,
}

/// A `ServeError::...` construction site (the serving tier's error path),
/// with the lock classes held there.
#[derive(Debug, Clone)]
pub struct ErrorSite {
    /// Function (index into [`Model::functions`]) containing the site.
    pub func: usize,
    /// File index.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// Lock classes held at the construction.
    pub held: Vec<String>,
    /// Filled by `Model::finish`: lock classes transitively acquired by
    /// calls made inside the constructor's arguments (error-path side
    /// effects).
    pub arg_acq: Vec<String>,
    /// Names of calls lexically inside the constructor's argument list.
    arg_calls: Vec<String>,
}

/// A durable-state mutation call (`delete_file` / `truncate_file`), for the
/// mutate-before-log dominance check.
#[derive(Debug, Clone)]
pub struct MutateSite {
    /// Function (index into [`Model::functions`]) containing the call.
    pub func: usize,
    /// File index.
    pub file: usize,
    /// 1-based line.
    pub line: u32,
    /// Which mutation (`delete_file` or `truncate_file`).
    pub name: String,
    /// Lock classes held at the call.
    pub held: Vec<String>,
}

/// One entry of the fault-surface inventory: a call site that resolves to a
/// fallible storage-API function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FallibleSite {
    /// Enclosing function, rendered as the runtime coverage hooks name it
    /// (`Type::name` or a bare `name` for free functions).
    pub caller: String,
    /// Callee name at the call site.
    pub callee: String,
    /// File path of the call site.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Whether the site sits in the crash-consistency core (WAL, manifest,
    /// durability wrapper, compactor trigger, or a durable-path
    /// `manager.rs` function) and hence must be covered by a
    /// fault-injection test.
    pub durable_core: bool,
    /// Whether an `// analyzer: allow(reason)` annotation covers the site.
    pub exempt: bool,
}

/// Basenames of the storage crate's fallible API surface: call sites whose
/// callee is defined in one of these files form the fault surface.
const STORAGE_API_FILES: [&str; 5] = ["file.rs", "wal.rs", "manifest.rs", "manager.rs", "fault.rs"];

/// Caller files whose fault-surface sites are crash-consistency core.
const DURABLE_CORE_FILES: [&str; 4] = ["wal.rs", "manifest.rs", "durability.rs", "compactor.rs"];

/// `manager.rs` functions on the durable path (the crash-consistency core's
/// entry points); the manager's read/stats functions are fault surface but
/// not core.
pub const DURABLE_MANAGER_FNS: [&str; 9] = [
    "create",
    "open",
    "wal_file",
    "checkpoint",
    "log_meta",
    "sync_file",
    "create_file",
    "delete_file",
    "truncate_file",
];

/// One analyzed function.
#[derive(Debug)]
pub struct FnInfo {
    /// Impl/trait type the function is defined on, if any.
    pub impl_type: Option<String>,
    /// Function name.
    pub name: String,
    /// File index.
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Classes acquired directly in the body.
    pub direct_acq: BTreeSet<String>,
    /// Classes acquired transitively (filled by `Model::finish`).
    pub trans_acq: BTreeSet<String>,
    /// Whether the return type mentions a `Result`.
    pub fallible: bool,
    /// Whether that `Result` is io-flavored (`io::Result`, `StorageResult`,
    /// `ServeResult`, or an explicit `StorageError`/`ServeError` payload) —
    /// the errors a crash or injected fault can produce.
    pub fallible_io: bool,
    calls: Vec<CallSite>,
}

/// The assembled workspace model.
#[derive(Debug, Default)]
pub struct Model {
    /// File paths, indexed by the `file` fields elsewhere.
    pub files: Vec<String>,
    /// All analyzed (non-test) functions.
    pub functions: Vec<FnInfo>,
    /// Receiver name → lock class (from construction sites + directives).
    pub classes: BTreeMap<String, String>,
    /// Lock class → protected data type names seen at construction or in
    /// lock-field declarations.
    pub data_types: BTreeMap<String, BTreeSet<String>>,
    /// Struct field name → candidate type idents (wrappers stripped).
    pub field_types: BTreeMap<String, BTreeSet<String>>,
    /// Trait name → implementing type names.
    pub trait_impls: BTreeMap<String, BTreeSet<String>>,
    /// Deduplicated acquisition edges.
    pub edges: Vec<Edge>,
    /// All WAL-append sites.
    pub log_sites: Vec<LogSite>,
    /// All panic-surface sites.
    pub panic_sites: Vec<PanicSite>,
    /// All discarded-result statements.
    pub swallow_sites: Vec<SwallowSite>,
    /// All `ServeError` construction sites.
    pub error_sites: Vec<ErrorSite>,
    /// All `delete_file`/`truncate_file` call sites.
    pub mutate_sites: Vec<MutateSite>,
    /// Lines carrying an `allow` directive, per file index.
    pub allow_lines: BTreeMap<usize, BTreeSet<u32>>,
    /// Model-level findings (unclassified acquisitions, name conflicts,
    /// raw `Mutex::new`/`RwLock::new` in analyzed code).
    pub findings: Vec<Finding>,
    /// Comment lines of every file (for the canonical-order declaration).
    pub comment_lines: Vec<(usize, u32, String)>,
    lexed: Vec<Lexed>,
}

impl Model {
    /// Lexes and models the given `(path, source)` pairs.
    pub fn build(inputs: &[(String, String)]) -> Model {
        let mut m = Model::default();
        for (path, source) in inputs {
            let lexed = lex(source);
            let fi = m.files.len();
            m.files.push(path.clone());
            for (line, text) in &lexed.comment_lines {
                m.comment_lines.push((fi, *line, text.clone()));
            }
            for d in &lexed.directives {
                match d {
                    Directive::Allow { line, .. } => {
                        m.allow_lines.entry(fi).or_default().insert(*line);
                    }
                    Directive::LockName { line, name, class } => {
                        m.record_class(fi, *line, name, class);
                    }
                }
            }
            m.lexed.push(lexed);
        }
        for fi in 0..m.files.len() {
            m.scan_constructors(fi);
        }
        for fi in 0..m.files.len() {
            m.scan_structs(fi);
        }
        for fi in 0..m.files.len() {
            m.scan_items(fi);
        }
        m.finish();
        m
    }

    /// Whether `line` (or the line above it) in `file` carries an `allow`.
    pub fn is_allowed(&self, file: usize, line: u32) -> bool {
        self.allow_lines
            .get(&file)
            .is_some_and(|s| s.contains(&line) || (line > 0 && s.contains(&(line - 1))))
    }

    fn record_class(&mut self, fi: usize, line: u32, name: &str, class: &str) {
        if let Some(prev) = self.classes.get(name) {
            if prev != class {
                self.findings.push(Finding {
                    lint: "lock-name-conflict".into(),
                    file: self.files[fi].clone(),
                    line,
                    message: format!(
                        "receiver name `{name}` is classified as both {prev} and {class}; \
                         lock names must map to exactly one class workspace-wide"
                    ),
                });
            }
            return;
        }
        self.classes.insert(name.to_string(), class.to_string());
    }

    /// Finds `Shared::new(LockClass::X, ...)` / `Exclusive::new(...)` sites:
    /// classifies the binding/field name and records the protected data type.
    fn scan_constructors(&mut self, fi: usize) {
        let toks = std::mem::take(&mut self.lexed[fi].tokens);
        for i in 0..toks.len() {
            if !(toks[i].is_ident("Shared") || toks[i].is_ident("Exclusive")) {
                continue;
            }
            if !(matches!(toks.get(i + 1), Some(t) if t.is_punct("::"))
                && matches!(toks.get(i + 2), Some(t) if t.is_ident("new"))
                && matches!(toks.get(i + 3), Some(t) if t.is_punct("("))
                && matches!(toks.get(i + 4), Some(t) if t.is_ident("LockClass"))
                && matches!(toks.get(i + 5), Some(t) if t.is_punct("::")))
            {
                continue;
            }
            let Some(class_tok) = toks.get(i + 6) else {
                continue;
            };
            let class = class_tok.text.clone();
            let line = toks[i].line;
            // Protected data type: first token after the `,`, if it looks
            // like a type name.
            if let Some(t) = toks.get(i + 8) {
                if matches!(toks.get(i + 7), Some(c) if c.is_punct(","))
                    && t.kind == TokKind::Ident
                    && t.text.chars().next().is_some_and(|c| c.is_uppercase())
                {
                    self.data_types
                        .entry(class.clone())
                        .or_default()
                        .insert(t.text.clone());
                }
            }
            // Binding name: scan backward for `let [mut] NAME` or `NAME :`.
            let mut name: Option<String> = None;
            let mut j = i;
            while j > 0 {
                j -= 1;
                let t = &toks[j];
                if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") || t.is_ident("fn") {
                    break;
                }
                if t.is_ident("let") {
                    let mut k = j + 1;
                    if matches!(toks.get(k), Some(t) if t.is_ident("mut")) {
                        k += 1;
                    }
                    if let Some(n) = toks.get(k) {
                        if n.kind == TokKind::Ident {
                            name = Some(n.text.clone());
                        }
                    }
                    break;
                }
                if t.is_punct(":") && j > 0 && toks[j - 1].kind == TokKind::Ident {
                    name = Some(toks[j - 1].text.clone());
                    break;
                }
            }
            match name {
                Some(n) => self.record_class(fi, line, &n, &class),
                None => self.findings.push(Finding {
                    lint: "unnamed-lock-constructor".into(),
                    file: self.files[fi].clone(),
                    line,
                    message: format!(
                        "LockClass::{class} constructor is not bound to a field or `let` name; \
                         the analyzer cannot classify its acquisitions"
                    ),
                }),
            }
        }
        self.lexed[fi].tokens = toks;
    }

    /// Records struct (and struct-variant) field types: `wal:
    /// Option<Exclusive<MetaWal>>` maps field `wal` to type `MetaWal`.
    /// Used to resolve `self.field.method(...)` calls, and to enrich a lock
    /// class's protected-type set when the field is a classified lock.
    fn scan_structs(&mut self, fi: usize) {
        let toks = std::mem::take(&mut self.lexed[fi].tokens);
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            // Skip test modules entirely.
            if t.is_ident("mod")
                && matches!(toks.get(i + 1), Some(n) if n.is_ident("tests"))
                && matches!(toks.get(i + 2), Some(b) if b.is_punct("{"))
            {
                i = match_balanced(&toks, i + 2, "{", "}") + 1;
                continue;
            }
            if !(t.is_ident("struct") || t.is_ident("enum")) {
                i += 1;
                continue;
            }
            // Find the body `{` (tuple structs / unit structs have none
            // before the `;`).
            let mut j = i + 1;
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                j += 1;
            }
            if j >= toks.len() || toks[j].is_punct(";") {
                i = j + 1;
                continue;
            }
            let end = match_balanced(&toks, j, "{", "}");
            let mut k = j + 1;
            while k < end {
                // Field pattern: IDENT `:` TYPE... up to the `,` (or `}`) at
                // this nesting level.
                if toks[k].kind == TokKind::Ident
                    && matches!(toks.get(k + 1), Some(c) if c.is_punct(":"))
                {
                    let field = toks[k].text.clone();
                    let mut types: BTreeSet<String> = BTreeSet::new();
                    let mut depth = 0i32;
                    let mut m = k + 2;
                    while m < end {
                        let tm = &toks[m];
                        if tm.is_punct("<") || tm.is_punct("(") || tm.is_punct("[") {
                            depth += 1;
                        } else if tm.is_punct(">") || tm.is_punct(")") || tm.is_punct("]") {
                            depth -= 1;
                        } else if (tm.is_punct(",") && depth <= 0) || tm.is_punct("{") {
                            break;
                        } else if tm.kind == TokKind::Ident
                            && tm.text.chars().next().is_some_and(|c| c.is_uppercase())
                            && !WRAPPER_TYPES.contains(&tm.text.as_str())
                        {
                            types.insert(tm.text.clone());
                        }
                        m += 1;
                    }
                    if !types.is_empty() {
                        self.field_types
                            .entry(field.clone())
                            .or_default()
                            .extend(types.iter().cloned());
                        if let Some(class) = self.classes.get(&field) {
                            self.data_types
                                .entry(class.clone())
                                .or_default()
                                .extend(types.iter().cloned());
                        }
                    }
                    k = m;
                }
                k += 1;
            }
            i = end + 1;
        }
        self.lexed[fi].tokens = toks;
    }

    /// Walks a file's items: tracks impl/trait context, skips test code,
    /// analyzes each function body.
    fn scan_items(&mut self, fi: usize) {
        let toks = std::mem::take(&mut self.lexed[fi].tokens);
        let mut depth: i32 = 0;
        let mut impl_stack: Vec<(String, i32)> = Vec::new();
        let mut pending_test = false;
        let mut i = 0usize;
        while i < toks.len() {
            let t = &toks[i];
            if t.is_punct("#") && matches!(toks.get(i + 1), Some(b) if b.is_punct("[")) {
                let end = match_balanced(&toks, i + 1, "[", "]");
                if attr_is_test(&toks[i + 1..=end]) {
                    pending_test = true;
                }
                i = end + 1;
                continue;
            }
            if t.is_punct("{") {
                depth += 1;
                i += 1;
                continue;
            }
            if t.is_punct("}") {
                depth -= 1;
                while impl_stack.last().is_some_and(|(_, d)| *d >= depth) {
                    impl_stack.pop();
                }
                i += 1;
                continue;
            }
            if t.is_ident("mod") {
                let is_tests = matches!(toks.get(i + 1), Some(n) if n.is_ident("tests"));
                if (is_tests || pending_test)
                    && matches!(toks.get(i + 2), Some(b) if b.is_punct("{"))
                {
                    i = match_balanced(&toks, i + 2, "{", "}") + 1;
                    pending_test = false;
                    continue;
                }
                pending_test = false;
                i += 1;
                continue;
            }
            if t.is_ident("impl") || t.is_ident("trait") {
                pending_test = false;
                // Collect tokens up to the opening brace; the impl type is
                // the path after `for` (trait impls) or after the generics.
                let mut j = i + 1;
                let mut after_for: Option<usize> = None;
                while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                    if toks[j].is_ident("for") {
                        after_for = Some(j + 1);
                    }
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct("{") {
                    let mut first = i + 1;
                    if toks[first].is_punct("<") {
                        first = skip_angles(&toks, first);
                    }
                    let start = after_for.unwrap_or(first);
                    if let Some(ty) = path_last_ident(&toks[start..j]) {
                        // `impl Trait for Type` also records the trait→type
                        // relation, so trait-typed receivers (e.g.
                        // `Box<dyn PagedFile>` fields) resolve to the
                        // implementing types.
                        if let Some(af) = after_for {
                            if let Some(tr) = path_last_ident(&toks[first..af - 1]) {
                                self.trait_impls.entry(tr).or_default().insert(ty.clone());
                            }
                        }
                        impl_stack.push((ty, depth));
                    }
                    depth += 1;
                    i = j + 1;
                    continue;
                }
                i = j + 1;
                continue;
            }
            if t.is_ident("fn") {
                let name = match toks.get(i + 1) {
                    Some(n) if n.kind == TokKind::Ident => n.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let line = t.line;
                // Find the body `{` (or `;` for a bodyless declaration).
                let mut j = i + 2;
                let mut paren: i32 = 0;
                while j < toks.len() {
                    let tj = &toks[j];
                    if tj.is_punct("(") || tj.is_punct("[") {
                        paren += 1;
                    } else if tj.is_punct(")") || tj.is_punct("]") {
                        paren -= 1;
                    } else if paren == 0 && (tj.is_punct("{") || tj.is_punct(";")) {
                        break;
                    }
                    j += 1;
                }
                if j >= toks.len() || toks[j].is_punct(";") {
                    pending_test = false;
                    i = j + 1;
                    continue;
                }
                let body_end = match_balanced(&toks, j, "{", "}");
                if !pending_test {
                    let impl_type = impl_stack.last().map(|(t, _)| t.clone());
                    let params = param_types(&toks, i + 2, j);
                    let (fallible, fallible_io) = signature_fallibility(&toks[i + 2..j]);
                    self.scan_body(
                        fi,
                        &toks,
                        j,
                        body_end,
                        impl_type,
                        &name,
                        line,
                        &params,
                        (fallible, fallible_io),
                    );
                }
                pending_test = false;
                i = body_end + 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                pending_test = false;
            }
            i += 1;
        }
        self.lexed[fi].tokens = toks;
    }

    /// Analyzes one function body: guard scopes, acquisitions, calls, WAL
    /// appends, panic sites.
    #[allow(clippy::too_many_arguments)]
    fn scan_body(
        &mut self,
        fi: usize,
        toks: &[Token],
        body_start: usize,
        body_end: usize,
        impl_type: Option<String>,
        name: &str,
        fn_line: u32,
        params: &HashMap<String, BTreeSet<String>>,
        fallibility: (bool, bool),
    ) {
        struct Guard {
            name: Option<String>,
            class: String,
            depth: i32,
            temp: bool,
            cond: bool,
        }
        let func_idx = self.functions.len();
        let mut info = FnInfo {
            impl_type,
            name: name.to_string(),
            file: fi,
            line: fn_line,
            direct_acq: BTreeSet::new(),
            trans_acq: BTreeSet::new(),
            fallible: fallibility.0,
            fallible_io: fallibility.1,
            calls: Vec::new(),
        };
        let mut guards: Vec<Guard> = Vec::new();
        // Local `let` bindings whose type is evident from an annotation or a
        // `Type::new()`-style initializer.
        let mut locals: HashMap<String, BTreeSet<String>> = HashMap::new();
        let mut depth: i32 = 0;
        let mut pending_let: Option<String> = None;
        let mut let_consumed = false;
        let mut seen_sync = false;
        // Inside an `if`/`while` condition (not `if let`/`while let`):
        // condition temporaries drop at the opening `{` of the block, unlike
        // statement temporaries.
        let mut cond_mode = false;
        // Swallow tracking: a simple statement (no inner block) that
        // discards its value via `let _ = ...;` or a terminal `.ok();`, the
        // calls made inside it, and whether anything in it rescues the
        // result (`?`, `unwrap`/`expect`, `is_err`, `map_err`, ...).
        let mut stmt_discard: Option<(&'static str, u32)> = None;
        let mut stmt_rescued = false;
        let mut stmt_join = false;
        let mut stmt_calls: Vec<CallSite> = Vec::new();
        let held = |guards: &Vec<Guard>| -> Vec<String> {
            let mut h: Vec<String> = guards.iter().map(|g| g.class.clone()).collect();
            h.dedup();
            h
        };

        let mut i = body_start;
        while i <= body_end {
            let t = &toks[i];
            if t.is_punct("{") {
                if cond_mode {
                    guards.retain(|g| !g.cond);
                    cond_mode = false;
                }
                // A `let` initializer that opens a block (or closure body)
                // cannot bind a guard acquired inside it.
                pending_let = None;
                // Statements containing blocks are not "simple" — swallow
                // tracking restarts inside.
                stmt_discard = None;
                stmt_rescued = false;
                stmt_join = false;
                stmt_calls.clear();
                depth += 1;
                i += 1;
                continue;
            }
            if (t.is_ident("if") || t.is_ident("while"))
                && !matches!(toks.get(i + 1), Some(n) if n.is_ident("let"))
            {
                cond_mode = true;
                i += 1;
                continue;
            }
            if t.is_punct("}") {
                guards.retain(|g| g.depth < depth);
                depth -= 1;
                pending_let = None;
                stmt_discard = None;
                stmt_rescued = false;
                stmt_join = false;
                stmt_calls.clear();
                i += 1;
                continue;
            }
            if t.is_punct(";") {
                // Temporaries die at the end of the full statement; a `;`
                // deeper than the temp's depth (inside a loop body whose
                // header holds the guard) does not end it.
                guards.retain(|g| !(g.temp && g.depth == depth));
                if let Some((how, line)) = stmt_discard.take() {
                    if !stmt_rescued && (stmt_join || !stmt_calls.is_empty()) {
                        self.swallow_sites.push(SwallowSite {
                            func: func_idx,
                            file: fi,
                            line,
                            how,
                            join: stmt_join,
                            fallible_callees: Vec::new(),
                            calls: std::mem::take(&mut stmt_calls),
                        });
                    }
                }
                stmt_rescued = false;
                stmt_join = false;
                stmt_calls.clear();
                pending_let = None;
                let_consumed = false;
                i += 1;
                continue;
            }
            if t.is_punct("?") {
                stmt_rescued = true;
                i += 1;
                continue;
            }
            if t.is_ident("let") {
                let mut k = i + 1;
                if matches!(toks.get(k), Some(x) if x.is_ident("mut")) {
                    k += 1;
                }
                pending_let = match (toks.get(k), toks.get(k + 1)) {
                    (Some(n), Some(nx))
                        if n.kind == TokKind::Ident && (nx.is_punct(":") || nx.is_punct("=")) =>
                    {
                        Some(n.text.clone())
                    }
                    _ => None,
                };
                // Record the binding's type when it is evident, so later
                // `var.method(..)` calls resolve within that type:
                // `let e: Enc = ..` (annotation) or `let e = Enc::new()`
                // (constructor call).
                if let Some(name) = &pending_let {
                    let mut types: BTreeSet<String> = BTreeSet::new();
                    if toks[k + 1].is_punct(":") {
                        let mut m = k + 2;
                        let mut tdepth = 0i32;
                        while m <= body_end {
                            let tm = &toks[m];
                            if tm.is_punct("<") || tm.is_punct("(") || tm.is_punct("[") {
                                tdepth += 1;
                            } else if tm.is_punct(">") || tm.is_punct(")") || tm.is_punct("]") {
                                tdepth -= 1;
                            } else if (tm.is_punct("=") || tm.is_punct(";")) && tdepth <= 0 {
                                break;
                            } else if tm.kind == TokKind::Ident
                                && tm.text.len() > 1
                                && tm.text.chars().next().is_some_and(|c| c.is_uppercase())
                                && !WRAPPER_TYPES.contains(&tm.text.as_str())
                            {
                                types.insert(tm.text.clone());
                            }
                            m += 1;
                        }
                    } else if matches!(
                        (toks.get(k + 2), toks.get(k + 3), toks.get(k + 4)),
                        (Some(ty), Some(sep), Some(ctor))
                            if ty.kind == TokKind::Ident
                                && ty.text.chars().next().is_some_and(|c| c.is_uppercase())
                                && !WRAPPER_TYPES.contains(&ty.text.as_str())
                                && sep.is_punct("::")
                                && (ctor.is_ident("new") || ctor.is_ident("default"))
                    ) {
                        types.insert(toks[k + 2].text.clone());
                    }
                    if !types.is_empty() {
                        locals.insert(name.clone(), types);
                    }
                }
                if pending_let.as_deref() == Some("_") {
                    stmt_discard = Some(("let _", t.line));
                }
                let_consumed = false;
                i = k;
                continue;
            }
            // drop(name): ends a named guard.
            if t.is_ident("drop")
                && matches!(toks.get(i + 1), Some(x) if x.is_punct("("))
                && matches!(toks.get(i + 3), Some(x) if x.is_punct(")"))
            {
                if let Some(n) = toks.get(i + 2) {
                    if let Some(pos) = guards
                        .iter()
                        .rposition(|g| g.name.as_deref() == Some(n.text.as_str()))
                    {
                        guards.remove(pos);
                    }
                }
                i += 4;
                continue;
            }
            // Panic-surface sites.
            if t.kind == TokKind::Ident {
                let is_macro_panic = matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && matches!(toks.get(i + 1), Some(x) if x.is_punct("!"));
                let is_method_panic = matches!(t.text.as_str(), "unwrap" | "expect")
                    && i > body_start
                    && toks[i - 1].is_punct(".")
                    && matches!(toks.get(i + 1), Some(x) if x.is_punct("("));
                if is_macro_panic || is_method_panic {
                    self.panic_sites.push(PanicSite {
                        file: fi,
                        line: t.line,
                        what: t.text.clone(),
                    });
                    // A panic consumes the result: the statement does not
                    // silently swallow it.
                    stmt_rescued = true;
                    i += 1;
                    continue;
                }
            }
            // `ServeError::...` construction: the serving tier's error path.
            if t.is_ident("ServeError") && matches!(toks.get(i + 1), Some(x) if x.is_punct("::")) {
                let mut arg_calls: Vec<String> = Vec::new();
                if matches!(toks.get(i + 2), Some(v) if v.kind == TokKind::Ident)
                    && matches!(toks.get(i + 3), Some(p) if p.is_punct("("))
                {
                    let close = match_balanced(toks, i + 3, "(", ")");
                    for x in i + 4..close {
                        if toks[x].kind == TokKind::Ident
                            && matches!(toks.get(x + 1), Some(p) if p.is_punct("("))
                            && !KEYWORDS.contains(&toks[x].text.as_str())
                        {
                            arg_calls.push(toks[x].text.clone());
                        }
                    }
                }
                self.error_sites.push(ErrorSite {
                    func: func_idx,
                    file: fi,
                    line: t.line,
                    held: held(&guards),
                    arg_acq: Vec::new(),
                    arg_calls,
                });
                i += 1;
                continue;
            }
            // Raw lock constructors in analyzed code.
            if (t.is_ident("RwLock") || t.is_ident("Mutex"))
                && matches!(toks.get(i + 1), Some(x) if x.is_punct("::"))
                && matches!(toks.get(i + 2), Some(x) if x.is_ident("new"))
            {
                self.findings.push(Finding {
                    lint: "raw-lock-construction".into(),
                    file: self.files[fi].clone(),
                    line: t.line,
                    message: format!(
                        "raw {}::new in analyzed code; use Shared/Exclusive with a LockClass \
                         so the acquisition order is checkable",
                        t.text
                    ),
                });
                i += 3;
                continue;
            }
            // Acquisition: `.read()` / `.write()` / `.lock()`.
            if t.kind == TokKind::Ident
                && ACQUIRE_METHODS.contains(&t.text.as_str())
                && i > body_start
                && toks[i - 1].is_punct(".")
                && matches!(toks.get(i + 1), Some(x) if x.is_punct("("))
                && matches!(toks.get(i + 2), Some(x) if x.is_punct(")"))
            {
                let recv = receiver_name(toks, i - 1);
                match recv.and_then(|n| self.classes.get(&n).cloned()) {
                    Some(class) => {
                        for h in held(&guards) {
                            self.add_edge(&h, &class, fi, t.line, false);
                        }
                        info.direct_acq.insert(class.clone());
                        // The acquisition binds the `let` only when it IS the
                        // whole initializer: `let g = <chain>.read();`. A
                        // continuing chain (`.retrieved(..)`), a deref copy
                        // (`*self.raw.read()`) or any surrounding expression
                        // leaves a statement temporary instead.
                        let ends_stmt = matches!(toks.get(i + 3), Some(x) if x.is_punct(";"));
                        let direct_init = {
                            let cs = chain_start(toks, i - 1);
                            cs > 0 && toks[cs - 1].is_punct("=")
                        };
                        let bound =
                            pending_let.is_some() && !let_consumed && ends_stmt && direct_init;
                        guards.push(Guard {
                            name: if bound { pending_let.clone() } else { None },
                            class,
                            depth,
                            temp: !bound,
                            cond: !bound && cond_mode,
                        });
                        if bound {
                            let_consumed = true;
                        }
                    }
                    None => {
                        if !self.is_allowed(fi, t.line) {
                            self.findings.push(Finding {
                                lint: "unclassified-acquisition".into(),
                                file: self.files[fi].clone(),
                                line: t.line,
                                message: format!(
                                    ".{}() on a receiver with no known LockClass; construct the \
                                     lock via Shared::new/Exclusive::new or add \
                                     `// analyzer: lock(name = Class)`",
                                    t.text
                                ),
                            });
                        }
                    }
                }
                i += 3;
                continue;
            }
            // Call site: IDENT followed by `(` (method, qualified or free).
            if t.kind == TokKind::Ident
                && matches!(toks.get(i + 1), Some(x) if x.is_punct("("))
                && !KEYWORDS.contains(&t.text.as_str())
            {
                let is_method = i > body_start && toks[i - 1].is_punct(".");
                let qual = if !is_method
                    && i >= 2
                    && toks[i - 1].is_punct("::")
                    && toks[i - 2].kind == TokKind::Ident
                {
                    Some(toks[i - 2].text.clone())
                } else {
                    None
                };
                let typed_self = || -> Receiver {
                    match &info.impl_type {
                        Some(t) => Receiver::Typed([t.clone()].into_iter().collect()),
                        None => Receiver::Plain,
                    }
                };
                let receiver = if is_method {
                    if let Some(class) =
                        chain_guard_class(toks, i - 1, &self.classes, &guards_view(&guards))
                    {
                        Receiver::Guard(class)
                    } else if i >= 2 && toks[i - 2].is_ident("self") {
                        // `self.method(...)`: an inherent (or trait) method
                        // on the enclosing impl type.
                        typed_self()
                    } else if i >= 3
                        && toks[i - 2].kind == TokKind::Ident
                        && toks[i - 3].is_punct(".")
                    {
                        // `<chain>.field.method(...)`: typed via the field
                        // declaration when known (`self.maintenance.pop()`,
                        // `entry.file.sync()`).
                        match self.field_types.get(&toks[i - 2].text) {
                            Some(types) => Receiver::Typed(types.clone()),
                            None => Receiver::Plain,
                        }
                    } else if i >= 2
                        && toks[i - 2].kind == TokKind::Ident
                        && (i < 3 || !(toks[i - 3].is_punct(".") || toks[i - 3].is_punct("::")))
                    {
                        // `var.method(...)`: typed via the enclosing fn's
                        // parameter list or an evidently-typed local binding
                        // (`storage.create_file(..)` inside
                        // `fn f(storage: &StorageManager, ..)`;
                        // `let mut e = Enc::new(); .. e.u64(..)`).
                        match params
                            .get(&toks[i - 2].text)
                            .or_else(|| locals.get(&toks[i - 2].text))
                        {
                            Some(types) => Receiver::Typed(types.clone()),
                            None => Receiver::Plain,
                        }
                    } else {
                        // A longer chain: type it by its root when the root
                        // is a `Type::` path — `OpenOptions::new().create(..)
                        // .open(..)` stays on `OpenOptions` and must not
                        // resolve by name to every local `open`.
                        let cs = chain_start(toks, i - 1);
                        if toks[cs].kind == TokKind::Ident
                            && toks[cs]
                                .text
                                .chars()
                                .next()
                                .is_some_and(|c| c.is_uppercase())
                            && matches!(toks.get(cs + 1), Some(x) if x.is_punct("::"))
                        {
                            Receiver::Typed([toks[cs].text.clone()].into_iter().collect())
                        } else {
                            Receiver::Plain
                        }
                    }
                } else if let Some(q) = qual.clone() {
                    if q == "Self" {
                        typed_self()
                    } else if q.chars().next().is_some_and(|c| c.is_uppercase()) {
                        // `Type::func(...)`: restricted to that type's impls
                        // (no by-name fallback — `Box::new` must not resolve
                        // to every local `new`).
                        Receiver::Typed([q].into_iter().collect())
                    } else {
                        Receiver::Module
                    }
                } else {
                    Receiver::Plain
                };
                if t.is_ident("sync_file") {
                    seen_sync = true;
                }
                if is_method && RESCUE_METHODS.contains(&t.text.as_str()) {
                    // The statement inspects or transforms the result: not a
                    // silent swallow.
                    stmt_rescued = true;
                }
                if is_method
                    && t.is_ident("join")
                    && matches!(toks.get(i + 2), Some(x) if x.is_punct(")"))
                {
                    stmt_join = true;
                }
                if is_method
                    && t.is_ident("ok")
                    && matches!(toks.get(i + 2), Some(x) if x.is_punct(")"))
                    && matches!(toks.get(i + 3), Some(x) if x.is_punct(";"))
                    && (pending_let.is_none() || stmt_discard.is_some())
                {
                    // A terminal `.ok();` as a bare expression statement
                    // discards the result (a `let x = ....ok();` binds it).
                    stmt_discard = Some((".ok()", t.line));
                }
                if t.is_ident("delete_file") || t.is_ident("truncate_file") {
                    self.mutate_sites.push(MutateSite {
                        func: func_idx,
                        file: fi,
                        line: t.line,
                        name: t.text.clone(),
                        held: held(&guards),
                    });
                }
                let is_log = (t.is_ident("log") && qual.as_deref() == Some("durability"))
                    || t.is_ident("log_meta");
                if is_log {
                    let close = match_balanced(toks, i + 1, "(", ")");
                    self.log_sites.push(LogSite {
                        func: func_idx,
                        file: fi,
                        line: t.line,
                        record: find_record_variant(&toks[i + 1..=close]),
                        held: held(&guards),
                        prior_sync: seen_sync,
                        raw_log_meta: t.is_ident("log_meta"),
                    });
                }
                let call = CallSite {
                    name: t.text.clone(),
                    receiver,
                    is_method,
                    held: held(&guards),
                    file: fi,
                    line: t.line,
                };
                stmt_calls.push(call.clone());
                info.calls.push(call);
                i += 1;
                continue;
            }
            i += 1;
        }
        self.functions.push(info);

        fn guards_view(guards: &[Guard]) -> Vec<(Option<&str>, &str)> {
            guards
                .iter()
                .map(|g| (g.name.as_deref(), g.class.as_str()))
                .collect()
        }
    }

    fn add_edge(&mut self, from: &str, to: &str, fi: usize, line: u32, via_call: bool) {
        if self
            .edges
            .iter()
            .any(|e| e.from == from && e.to == to && e.via_call <= via_call)
        {
            return;
        }
        self.edges.retain(|e| !(e.from == from && e.to == to));
        self.edges.push(Edge {
            from: from.to_string(),
            to: to.to_string(),
            file: self.files[fi].clone(),
            line,
            via_call,
        });
    }

    /// Resolves a call site to candidate function indices.
    fn resolve(&self, call: &CallSite) -> Vec<usize> {
        let by_name = |name: &str| -> Vec<usize> {
            self.functions
                .iter()
                .enumerate()
                .filter(|(_, f)| f.name == name)
                .map(|(i, _)| i)
                .collect()
        };
        // Close candidate type sets under trait impls: a call on a
        // `Box<dyn Trait>` receiver typed `Trait` reaches every impl.
        let expand = |types: &BTreeSet<String>| -> BTreeSet<String> {
            let mut out = types.clone();
            for t in types {
                if let Some(impls) = self.trait_impls.get(t) {
                    out.extend(impls.iter().cloned());
                }
            }
            out
        };
        let by_impl_types = |types: &BTreeSet<String>| -> Vec<usize> {
            self.functions
                .iter()
                .enumerate()
                .filter(|(_, f)| {
                    f.name == call.name && f.impl_type.as_ref().is_some_and(|t| types.contains(t))
                })
                .map(|(i, _)| i)
                .collect()
        };
        match &call.receiver {
            // A known receiver type restricts resolution with NO by-name
            // fallback: `Box::new(...)` must not resolve to every local
            // `fn new`.
            Receiver::Typed(types) => by_impl_types(&expand(types)),
            Receiver::Guard(class) => match self.data_types.get(class) {
                Some(types) if !types.is_empty() => by_impl_types(&expand(types)),
                _ => by_name(&call.name),
            },
            Receiver::Module => by_name(&call.name),
            Receiver::Plain => {
                // Untyped method calls named like std collection methods
                // (`.len()`, `.insert(..)`, ...) overwhelmingly hit std
                // types, not the identically named local methods — resolving
                // them by name fabricates edges into every lock-taking
                // `len`/`insert` in the workspace.
                if call.is_method && STD_METHOD_NAMES.contains(&call.name.as_str()) {
                    Vec::new()
                } else {
                    by_name(&call.name)
                }
            }
        }
    }

    /// Fixpoint of transitive acquisitions, then call-derived edges.
    fn finish(&mut self) {
        if let Some(name) = std::env::var_os("ANALYZER_DEBUG_FN") {
            for fi in 0..self.functions.len() {
                if self.functions[fi].name == name.to_string_lossy() {
                    for c in self.functions[fi].calls.clone() {
                        eprintln!(
                            "debug-fn: {} line {} call {} ({:?}) -> {:?}",
                            self.functions[fi].name,
                            c.line,
                            c.name,
                            c.receiver,
                            self.resolve(&c)
                                .iter()
                                .map(|g| format!(
                                    "{:?}::{}",
                                    self.functions[*g].impl_type, self.functions[*g].name
                                ))
                                .collect::<Vec<_>>()
                        );
                    }
                }
            }
        }
        for f in &mut self.functions {
            f.trans_acq = f.direct_acq.clone();
        }
        loop {
            let mut changed = false;
            for fi in 0..self.functions.len() {
                let mut add: BTreeSet<String> = BTreeSet::new();
                for c in &self.functions[fi].calls {
                    for g in self.resolve(c) {
                        for class in &self.functions[g].trans_acq {
                            if !self.functions[fi].trans_acq.contains(class) {
                                add.insert(class.clone());
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    self.functions[fi].trans_acq.extend(add);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Call-derived edges: held classes at the call × callee's acquired
        // classes.
        let mut derived: Vec<(String, String, usize, u32)> = Vec::new();
        for f in &self.functions {
            for c in &f.calls {
                if c.held.is_empty() {
                    continue;
                }
                for g in self.resolve(c) {
                    if std::env::var_os("ANALYZER_DEBUG_EDGES").is_some()
                        && !self.functions[g].trans_acq.is_empty()
                    {
                        eprintln!(
                            "debug: {}:{} call {} ({:?}) -> {:?}::{} acq {:?}",
                            self.files[c.file],
                            c.line,
                            c.name,
                            c.receiver,
                            self.functions[g].impl_type,
                            self.functions[g].name,
                            self.functions[g].trans_acq
                        );
                    }
                    for to in &self.functions[g].trans_acq {
                        for from in &c.held {
                            derived.push((from.clone(), to.clone(), c.file, c.line));
                        }
                    }
                }
            }
        }
        for (from, to, fi, line) in derived {
            self.add_edge(&from, &to, fi, line, true);
        }
        // Resolve the calls recorded inside discarded statements: which of
        // them reach an io-fallible workspace function?
        let mut swallows = std::mem::take(&mut self.swallow_sites);
        for s in &mut swallows {
            let mut callees: Vec<String> = Vec::new();
            for c in &s.calls {
                if self
                    .resolve(c)
                    .into_iter()
                    .any(|g| self.functions[g].fallible_io)
                {
                    callees.push(c.name.clone());
                }
            }
            callees.dedup();
            s.fallible_callees = callees;
        }
        self.swallow_sites = swallows;
        // Resolve the side effects of error constructions: classes
        // transitively acquired by the calls inside the constructor's
        // arguments.
        let mut errors = std::mem::take(&mut self.error_sites);
        for s in &mut errors {
            let mut acq: BTreeSet<String> = BTreeSet::new();
            for c in &self.functions[s.func].calls {
                if c.line != s.line || !s.arg_calls.contains(&c.name) {
                    continue;
                }
                for g in self.resolve(c) {
                    acq.extend(self.functions[g].trans_acq.iter().cloned());
                }
            }
            s.arg_acq = acq.into_iter().collect();
        }
        self.error_sites = errors;
    }

    /// Renders a function's key the way the runtime coverage hooks name it:
    /// `Type::name` for inherent/trait methods, bare `name` for free
    /// functions.
    pub fn fn_key(&self, idx: usize) -> String {
        let f = &self.functions[idx];
        match &f.impl_type {
            Some(t) => format!("{t}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// The fault-surface inventory: every call site that resolves to an
    /// io-fallible function defined in the storage crate's API files
    /// (`STORAGE_API_FILES`), annotated with whether the *caller* sits in
    /// the crash-consistency core (and hence must be exercised by a
    /// fault-injection test).
    pub fn fault_surface(&self) -> Vec<FallibleSite> {
        fn basename(path: &str) -> &str {
            path.rsplit('/').next().unwrap_or(path)
        }
        let mut out: Vec<FallibleSite> = Vec::new();
        for (idx, f) in self.functions.iter().enumerate() {
            for c in &f.calls {
                let hits = self.resolve(c).into_iter().any(|g| {
                    let gf = &self.functions[g];
                    let gfile = &self.files[gf.file];
                    gf.fallible_io
                        && STORAGE_API_FILES.contains(&basename(gfile))
                        && (gfile.contains("storage/src") || !gfile.contains('/'))
                });
                if !hits {
                    continue;
                }
                let file = self.files[c.file].clone();
                let base = basename(&file);
                let durable_core = DURABLE_CORE_FILES.contains(&base)
                    || (base == "manager.rs" && DURABLE_MANAGER_FNS.contains(&f.name.as_str()));
                out.push(FallibleSite {
                    caller: self.fn_key(idx),
                    callee: c.name.clone(),
                    file,
                    line: c.line,
                    durable_core,
                    exempt: self.is_allowed(c.file, c.line),
                });
            }
        }
        out.sort_by(|a, b| {
            (&a.file, a.line, &a.callee, &a.caller).cmp(&(&b.file, b.line, &b.callee, &b.caller))
        });
        out.dedup();
        out
    }

    /// Callers of function `target`, with the classes held at each call site.
    pub fn callers_of(&self, target: usize) -> Vec<(usize, Vec<String>, u32)> {
        let mut out = Vec::new();
        for (ci, f) in self.functions.iter().enumerate() {
            for c in &f.calls {
                if self.resolve(c).contains(&target) {
                    out.push((ci, c.held.clone(), c.line));
                }
            }
        }
        out
    }
}

/// `#[...]` attribute → is this item test-only? Handles `#[test]`,
/// `#[cfg(test)]` and composites, but not `cfg(not(test))`.
fn attr_is_test(attr: &[Token]) -> bool {
    for (i, t) in attr.iter().enumerate() {
        if t.is_ident("test") {
            // `not(test)` marks the item as NOT test-only.
            let negated = i >= 2 && attr[i - 1].is_punct("(") && attr[i - 2].is_ident("not");
            if !negated {
                return true;
            }
        }
    }
    false
}

/// Index of the token matching the opener at `open` (`toks[open]` must be
/// the opener). Returns the last index if unbalanced.
fn match_balanced(toks: &[Token], open: usize, op: &str, cl: &str) -> usize {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct(op) {
            depth += 1;
        } else if t.is_punct(cl) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len() - 1
}

/// Skips a `<...>` generics group starting at `open` (pointing at `<`).
fn skip_angles(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct("<") {
            depth += 1;
        } else if toks[i].is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        } else if toks[i].is_punct("{") || toks[i].is_punct(";") {
            return i;
        }
        i += 1;
    }
    i
}

/// Last identifier of a leading path in `toks` (e.g. `crate::foo::Bar<T>`
/// → `Bar`).
fn path_last_ident(toks: &[Token]) -> Option<String> {
    let mut last = None;
    for t in toks {
        if t.kind == TokKind::Ident {
            if t.text == "dyn" || t.text == "mut" {
                continue;
            }
            last = Some(t.text.clone());
        } else if !t.is_punct("::") && !t.is_punct("&") {
            break;
        }
    }
    last
}

/// Receiver name of a method call / acquisition whose `.` is at `dot`:
/// skips one balanced `(...)`/`[...]` group, then takes the identifier.
/// `self.stats.read()` → `stats`; `slots[i].lock()` → `slots`;
/// `self.shard(&key).lock()` → `shard`.
fn receiver_name(toks: &[Token], dot: usize) -> Option<String> {
    let mut j = dot;
    if j == 0 {
        return None;
    }
    j -= 1;
    if toks[j].is_punct(")") || toks[j].is_punct("]") {
        let (op, cl) = if toks[j].is_punct(")") {
            ("(", ")")
        } else {
            ("[", "]")
        };
        let mut depth = 0i32;
        loop {
            if toks[j].is_punct(cl) {
                depth += 1;
            } else if toks[j].is_punct(op) {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return None;
            }
            j -= 1;
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    (toks[j].kind == TokKind::Ident).then(|| toks[j].text.clone())
}

/// Parameter name → candidate type idents for a `fn` header starting after
/// the function name: `storage: &StorageManager` types `storage` as
/// `StorageManager`. Wrapper/container types and single-letter generics are
/// skipped, like struct fields in `scan_structs`.
fn param_types(
    toks: &[Token],
    after_name: usize,
    body: usize,
) -> HashMap<String, BTreeSet<String>> {
    let mut out = HashMap::new();
    let mut i = after_name;
    if i < body && toks[i].is_punct("<") {
        i = skip_angles(toks, i);
    }
    if i >= body || !toks[i].is_punct("(") {
        return out;
    }
    let close = match_balanced(toks, i, "(", ")");
    let mut k = i + 1;
    let mut depth = 0i32;
    while k < close {
        let t = &toks[k];
        if t.is_punct("<") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(">") || t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0
            && t.kind == TokKind::Ident
            && matches!(toks.get(k + 1), Some(c) if c.is_punct(":"))
        {
            let name = t.text.clone();
            let mut types: BTreeSet<String> = BTreeSet::new();
            let mut tdepth = 0i32;
            let mut m = k + 2;
            while m < close {
                let tm = &toks[m];
                if tm.is_punct("<") || tm.is_punct("(") || tm.is_punct("[") {
                    tdepth += 1;
                } else if tm.is_punct(">") || tm.is_punct(")") || tm.is_punct("]") {
                    tdepth -= 1;
                } else if tm.is_punct(",") && tdepth <= 0 {
                    break;
                } else if tm.kind == TokKind::Ident
                    && tm.text.len() > 1
                    && tm.text.chars().next().is_some_and(|c| c.is_uppercase())
                    && !WRAPPER_TYPES.contains(&tm.text.as_str())
                {
                    types.insert(tm.text.clone());
                }
                m += 1;
            }
            if !types.is_empty() {
                out.insert(name, types);
            }
            k = m;
            continue;
        }
        k += 1;
    }
    out
}

/// Index of the first token of the receiver chain whose trailing `.` is at
/// `dot`: walks back over identifiers, `.`/`::` separators and balanced
/// `(...)`/`[...]` groups. `let g = self.shard(&k).lock()` with `dot` on the
/// `.` before `lock` returns the index of `self`.
fn chain_start(toks: &[Token], dot: usize) -> usize {
    let mut j = dot;
    while j > 0 {
        let p = &toks[j - 1];
        if p.kind == TokKind::Ident || p.is_punct(".") || p.is_punct("::") {
            j -= 1;
        } else if p.is_punct(")") || p.is_punct("]") {
            let (op, cl) = if p.is_punct(")") {
                ("(", ")")
            } else {
                ("[", "]")
            };
            let mut depth = 0i32;
            let mut k = j - 1;
            loop {
                if toks[k].is_punct(cl) {
                    depth += 1;
                } else if toks[k].is_punct(op) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return 0;
                }
                k -= 1;
            }
            j = k;
        } else {
            break;
        }
    }
    j
}

/// For a method call whose `.` is at `dot`: if the receiver is (or derives
/// from) a lock guard, return the guard's class.
///
/// * `x.lock().f()` / `self.stats.read().f()` — chained directly on an
///   acquisition: class of that acquisition.
/// * `guard.f()` / `guard.field.f()` — rooted at a live guard binding:
///   that binding's class.
fn chain_guard_class(
    toks: &[Token],
    dot: usize,
    classes: &BTreeMap<String, String>,
    guards: &[(Option<&str>, &str)],
) -> Option<String> {
    // Chained-on-acquisition: `... .read() .f(` — token before the dot is
    // `)`, preceded by `(`, preceded by read/write/lock.
    if dot >= 4
        && toks[dot - 1].is_punct(")")
        && toks[dot - 2].is_punct("(")
        && toks[dot - 3].kind == TokKind::Ident
        && ACQUIRE_METHODS.contains(&toks[dot - 3].text.as_str())
        && toks[dot - 4].is_punct(".")
    {
        let name = receiver_name(toks, dot - 4)?;
        return classes.get(&name).cloned();
    }
    // Rooted at a guard binding: walk the dotted chain back to its root.
    let mut j = dot;
    let mut root: Option<String> = None;
    loop {
        if j == 0 {
            break;
        }
        j -= 1;
        if toks[j].is_punct(")") || toks[j].is_punct("]") {
            // A call or index in the chain: its result type is unknown.
            return None;
        }
        if toks[j].kind != TokKind::Ident {
            break;
        }
        root = Some(toks[j].text.clone());
        if j == 0 || !toks[j - 1].is_punct(".") {
            break;
        }
        j -= 1;
    }
    let root = root?;
    guards
        .iter()
        .rev()
        .find(|(n, _)| *n == Some(root.as_str()))
        .map(|(_, c)| c.to_string())
}

/// Finds `MetaRecord::Variant` inside a call's argument tokens.
/// Scans a function signature (the tokens between the name and the body
/// brace) for fallibility: does the return type mention a `Result`, and is
/// it io-flavored (`io::Result`, `StorageResult`/`ServeResult`, or an
/// explicit `StorageError`/`ServeError` payload)?
fn signature_fallibility(sig: &[Token]) -> (bool, bool) {
    let mut k = 0usize;
    if sig.first().is_some_and(|t| t.is_punct("<")) {
        k = skip_angles(sig, 0);
    }
    while k < sig.len() && !sig[k].is_punct("(") {
        k += 1;
    }
    if k >= sig.len() {
        return (false, false);
    }
    let mut m = match_balanced(sig, k, "(", ")") + 1;
    if !(m + 1 < sig.len() && sig[m].is_punct("-") && sig[m + 1].is_punct(">")) {
        return (false, false);
    }
    m += 2;
    let mut fallible = false;
    let mut io_flavored = false;
    while m < sig.len() && !sig[m].is_ident("where") {
        if sig[m].kind == TokKind::Ident {
            let s = sig[m].text.as_str();
            if s == "Result" || s.ends_with("Result") {
                fallible = true;
            }
            if matches!(
                s,
                "io" | "StorageResult" | "StorageError" | "ServeResult" | "ServeError"
            ) {
                io_flavored = true;
            }
        }
        m += 1;
    }
    (fallible, fallible && io_flavored)
}

fn find_record_variant(args: &[Token]) -> Option<String> {
    for i in 0..args.len() {
        if args[i].is_ident("MetaRecord") && matches!(args.get(i + 1), Some(t) if t.is_punct("::"))
        {
            return args.get(i + 2).map(|t| t.text.clone());
        }
    }
    None
}
