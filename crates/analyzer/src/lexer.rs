//! A minimal Rust lexer: just enough to tokenize the workspace's own source.
//!
//! Comments, strings (plain, raw, byte), char literals and lifetimes are
//! recognized and stripped; what remains is a flat stream of identifier,
//! literal and punctuation tokens with line numbers. `::`, `..`, `..=` and
//! `=>` are lexed as single tokens so downstream scans can tell a path
//! separator from a type ascription and a range from a method dot.
//!
//! `// analyzer: ...` comments are captured as [`Directive`]s instead of
//! being discarded — they are the annotation surface of the lints.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric, string, char or byte literal (contents dropped for strings).
    Literal,
    /// Punctuation (single char, or one of the fused `::` `..` `..=` `=>`).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Kind of token.
    pub kind: TokKind,
    /// Source text (empty for string literals).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// An `// analyzer: ...` annotation captured during lexing.
#[derive(Debug, Clone)]
pub enum Directive {
    /// `// analyzer: allow(reason)` — suppresses panic-surface and
    /// lock-order findings on this line and the next.
    Allow {
        /// 1-based line the directive appears on.
        line: u32,
        /// The reason text inside the parentheses.
        reason: String,
    },
    /// `// analyzer: lock(name = Class)` — declares that acquisitions whose
    /// receiver is `name` (a field, binding or accessor method) take a lock
    /// of the given class. Used where the class is not inferrable from a
    /// `Shared::new`/`Exclusive::new` construction site.
    LockName {
        /// 1-based line the directive appears on.
        line: u32,
        /// Receiver name being classified.
        name: String,
        /// Lock-class name it maps to.
        class: String,
    },
}

/// Output of [`lex`]: the token stream plus any analyzer directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and string contents stripped.
    pub tokens: Vec<Token>,
    /// All `// analyzer:` directives, in source order.
    pub directives: Vec<Directive>,
    /// Every comment line's text (leading `/`s and `!` stripped), with its
    /// line number — the canonical-order declaration is parsed from these.
    pub comment_lines: Vec<(u32, String)>,
}

fn parse_directive(body: &str, line: u32) -> Option<Directive> {
    let rest = body.trim().strip_prefix("analyzer:")?.trim();
    if let Some(inner) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.strip_suffix(')'))
    {
        return Some(Directive::Allow {
            line,
            reason: inner.to_string(),
        });
    }
    if let Some(inner) = rest.strip_prefix("lock(").and_then(|r| r.strip_suffix(')')) {
        let (name, class) = inner.split_once('=')?;
        return Some(Directive::LockName {
            line,
            name: name.trim().to_string(),
            class: class.trim().to_string(),
        });
    }
    None
}

/// Tokenizes `source`. Never fails: unrecognized bytes become punctuation.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let push = |out: &mut Lexed, kind: TokKind, text: &str, line: u32| {
        out.tokens.push(Token {
            kind,
            text: text.to_string(),
            line,
        });
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                // Line comment: strip leading slashes and `!`, keep the text.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                let text = &source[start..i];
                let body = text.trim_start_matches('/').trim_start_matches('!');
                out.comment_lines.push((line, body.trim().to_string()));
                if let Some(d) = parse_directive(body, line) {
                    out.directives.push(d);
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comment, possibly nested.
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i = skip_string(bytes, i + 1, &mut line);
                push(&mut out, TokKind::Literal, "", line);
            }
            'r' | 'b' if starts_raw_or_byte_string(bytes, i) => {
                i = skip_raw_or_byte_string(bytes, i, &mut line);
                push(&mut out, TokKind::Literal, "", line);
            }
            '\'' => {
                // Char literal vs lifetime.
                if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    // Escaped char literal.
                    i += 2;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    push(&mut out, TokKind::Literal, "", line);
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    // Plain char literal 'x'.
                    i += 3;
                    push(&mut out, TokKind::Literal, "", line);
                } else {
                    // Lifetime: consume the tick and the identifier, drop it.
                    i += 1;
                    while i < bytes.len() && is_ident_char(bytes[i]) {
                        i += 1;
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && is_ident_char(bytes[i]) {
                    i += 1;
                }
                push(&mut out, TokKind::Ident, &source[start..i], line);
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (is_ident_char(bytes[i])
                        || (bytes[i] == b'.'
                            && i + 1 < bytes.len()
                            && bytes[i + 1].is_ascii_digit()
                            && !source[start..i].contains('.')))
                {
                    i += 1;
                }
                push(&mut out, TokKind::Literal, &source[start..i], line);
            }
            ':' if i + 1 < bytes.len() && bytes[i + 1] == b':' => {
                push(&mut out, TokKind::Punct, "::", line);
                i += 2;
            }
            '.' if i + 1 < bytes.len() && bytes[i + 1] == b'.' => {
                let text = if i + 2 < bytes.len() && bytes[i + 2] == b'=' {
                    i += 3;
                    "..="
                } else {
                    i += 2;
                    ".."
                };
                push(&mut out, TokKind::Punct, text, line);
            }
            '=' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                push(&mut out, TokKind::Punct, "=>", line);
                i += 2;
            }
            c => {
                push(&mut out, TokKind::Punct, &c.to_string(), line);
                i += 1;
            }
        }
    }
    out
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // r"..."  r#"..."#  b"..."  br"..."  br#"..."#  (but not r#ident).
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j >= bytes.len() {
            return false;
        }
        if bytes[j] == b'"' {
            return true;
        }
        if bytes[j] != b'r' {
            return false;
        }
    }
    // bytes[j] == b'r'
    j += 1;
    let mut hashes = 0;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    j < bytes.len()
        && bytes[j] == b'"'
        && (hashes > 0 || bytes[i..].starts_with(b"r\"") || bytes[i..].starts_with(b"br\""))
}

fn skip_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                // A line-continuation escape (`\` before a newline) still
                // advances the line counter.
                if bytes.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

fn skip_raw_or_byte_string(bytes: &[u8], mut i: usize, line: &mut u32) -> usize {
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes[i] == b'"' {
        // Plain byte string.
        return skip_string(bytes, i + 1, line);
    }
    // Raw string: r with n hashes.
    i += 1; // skip 'r'
    let mut hashes = 0;
    while bytes[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0;
            while j < bytes.len() && bytes[j] == b'#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_continuation_in_string_counts_the_newline() {
        let l = lex("let a = \"x \\\n y\";\nfn after() {}");
        let after = l.tokens.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn idents_puncts_and_fused_tokens() {
        let l = lex("let a = b.c()?; x::y(0..3, 1..=2) => z");
        let texts: Vec<&str> = l.tokens.iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"::"));
        assert!(texts.contains(&".."));
        assert!(texts.contains(&"..="));
        assert!(texts.contains(&"=>"));
        assert!(texts.contains(&"a"));
    }

    #[test]
    fn strings_comments_lifetimes_are_stripped() {
        let l = lex("fn f<'a>(x: &'a str) { let s = \"no // here\"; /* b {{{ */ g('{'); }");
        assert!(!l.tokens.iter().any(|t| t.text == "here"));
        // Brace balance must survive the char literal and the comment.
        let open = l.tokens.iter().filter(|t| t.is_punct("{")).count();
        let close = l.tokens.iter().filter(|t| t.is_punct("}")).count();
        assert_eq!(open, close);
        assert!(!l.tokens.iter().any(|t| t.is_ident("a"))); // lifetime dropped
    }

    #[test]
    fn raw_strings() {
        let l = lex(r###"let x = r#"a " b"#; let y = 1;"###);
        assert!(l.tokens.iter().any(|t| t.is_ident("y")));
        assert!(!l.tokens.iter().any(|t| t.is_ident("b")));
    }

    #[test]
    fn directives_are_captured() {
        let l = lex("x(); // analyzer: allow(slice length is fixed)\n// analyzer: lock(shard = BufferShard)\n");
        assert_eq!(l.directives.len(), 2);
        match &l.directives[0] {
            Directive::Allow { line, reason } => {
                assert_eq!(*line, 1);
                assert_eq!(reason, "slice length is fixed");
            }
            d => panic!("unexpected {d:?}"),
        }
        match &l.directives[1] {
            Directive::LockName { name, class, .. } => {
                assert_eq!(name, "shard");
                assert_eq!(class, "BufferShard");
            }
            d => panic!("unexpected {d:?}"),
        }
    }
}
