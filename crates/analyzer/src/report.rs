//! Machine-readable report: hand-rolled JSON emission (the analyzer is
//! dependency-free).

use crate::model::{Edge, FallibleSite, Finding};

/// The analyzer's full output for one run.
#[derive(Debug)]
pub struct Report {
    /// Canonical order the run checked against, outermost first.
    pub order: Vec<String>,
    /// Self-nesting classes.
    pub self_nesting: Vec<String>,
    /// Where the order was declared (`file:line`), if parsed from source.
    pub order_source: Option<(String, u32)>,
    /// Deduplicated acquisition edges.
    pub edges: Vec<Edge>,
    /// All findings, sorted by file/line.
    pub findings: Vec<Finding>,
    /// The fault-surface inventory (call sites resolving to fallible
    /// storage-API functions).
    pub fault_surface: Vec<FallibleSite>,
    /// Number of files analyzed.
    pub files_analyzed: usize,
    /// Number of non-test functions modeled.
    pub functions: usize,
}

impl Report {
    /// Renders the report as a JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"files_analyzed\": {},\n  \"functions\": {},\n",
            self.files_analyzed, self.functions
        ));
        s.push_str(&format!(
            "  \"fault_sites\": {},\n  \"durable_core_sites\": {},\n",
            self.fault_surface.len(),
            self.fault_surface.iter().filter(|f| f.durable_core).count()
        ));
        s.push_str("  \"order\": [");
        push_str_list(&mut s, &self.order);
        s.push_str("],\n  \"self_nesting\": [");
        push_str_list(&mut s, &self.self_nesting);
        s.push_str("],\n");
        match &self.order_source {
            Some((f, l)) => s.push_str(&format!(
                "  \"order_source\": {},\n",
                json_str(&format!("{f}:{l}"))
            )),
            None => s.push_str("  \"order_source\": null,\n"),
        }
        s.push_str("  \"edges\": [\n");
        for (i, e) in self.edges.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"from\": {}, \"to\": {}, \"via_call\": {}, \"site\": {}}}{}\n",
                json_str(&e.from),
                json_str(&e.to),
                e.via_call,
                json_str(&format!("{}:{}", e.file, e.line)),
                if i + 1 < self.edges.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"lint\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
                json_str(&f.lint),
                json_str(&f.file),
                f.line,
                json_str(&f.message),
                if i + 1 < self.findings.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders the fault-surface inventory as its own JSON document
    /// (`fault_surface.json`): one entry per call site that resolves to a
    /// fallible storage-API function, in `(caller, callee)` pair form — the
    /// same shape the runtime coverage registry records under the
    /// `fault-coverage` feature.
    pub fn fault_surface_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"sites\": {},\n  \"durable_core\": {},\n  \"exempt\": {},\n",
            self.fault_surface.len(),
            self.fault_surface.iter().filter(|f| f.durable_core).count(),
            self.fault_surface.iter().filter(|f| f.exempt).count()
        ));
        s.push_str("  \"fault_surface\": [\n");
        for (i, f) in self.fault_surface.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"caller\": {}, \"callee\": {}, \"site\": {}, \
                 \"durable_core\": {}, \"exempt\": {}}}{}\n",
                json_str(&f.caller),
                json_str(&f.callee),
                json_str(&format!("{}:{}", f.file, f.line)),
                f.durable_core,
                f.exempt,
                if i + 1 < self.fault_surface.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable summary (one line per finding).
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "analyzed {} files, {} functions; {} acquisition edges; canonical order from {}\n",
            self.files_analyzed,
            self.functions,
            self.edges.len(),
            match &self.order_source {
                Some((f, l)) => format!("{f}:{l}"),
                None => "builtin fallback".into(),
            }
        ));
        s.push_str(&format!(
            "fault surface: {} call sites resolve to fallible storage APIs \
             ({} durable-core, {} exempt)\n",
            self.fault_surface.len(),
            self.fault_surface.iter().filter(|f| f.durable_core).count(),
            self.fault_surface.iter().filter(|f| f.exempt).count()
        ));
        for e in &self.edges {
            s.push_str(&format!(
                "  edge {} -> {}{} ({}:{})\n",
                e.from,
                e.to,
                if e.via_call { " [via call]" } else { "" },
                e.file,
                e.line
            ));
        }
        if self.findings.is_empty() {
            s.push_str("no findings\n");
        } else {
            for f in &self.findings {
                s.push_str(&format!(
                    "{}:{}: [{}] {}\n",
                    f.file, f.line, f.lint, f.message
                ));
            }
            s.push_str(&format!("{} finding(s)\n", self.findings.len()));
        }
        s
    }
}

fn push_str_list(s: &mut String, items: &[String]) {
    for (i, it) in items.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&json_str(it));
    }
}

/// Escapes a string for JSON.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
