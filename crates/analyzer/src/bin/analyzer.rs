//! CLI driver for the workspace invariant checker.
//!
//! ```text
//! analyzer [--root PATH] [--deny-findings] [--json PATH]
//!          [--fault-surface PATH] [--quiet]
//! ```
//!
//! * `--root PATH` — repository checkout to analyze (default: the current
//!   directory, walking up until a `Cargo.toml` with `crates/core` is found).
//! * `--deny-findings` — exit with status 1 if any finding survives
//!   (CI mode).
//! * `--json PATH` — also write the machine-readable report to `PATH`.
//! * `--fault-surface PATH` — write the fault-surface inventory (every call
//!   site resolving to a fallible storage API) to `PATH` as JSON.
//! * `--quiet` — suppress the edge list, print findings only.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates/core/src").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny = false;
    let mut json_path: Option<PathBuf> = None;
    let mut surface_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--deny-findings" => deny = true,
            "--json" => json_path = args.next().map(PathBuf::from),
            "--fault-surface" => surface_path = args.next().map(PathBuf::from),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: analyzer [--root PATH] [--deny-findings] [--json PATH] \
                     [--fault-surface PATH] [--quiet]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "analyzer: could not locate the workspace root (looked for \
                         Cargo.toml + crates/core/src upward from the current directory); \
                         pass --root"
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };
    let report = match odyssey_analyzer::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "analyzer: failed to read workspace under {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("analyzer: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if let Some(path) = surface_path {
        if let Err(e) = std::fs::write(&path, report.fault_surface_json()) {
            eprintln!("analyzer: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if quiet {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.lint, f.message);
        }
        println!(
            "{} finding(s), {} edges, {} functions",
            report.findings.len(),
            report.edges.len(),
            report.functions
        );
    } else {
        print!("{}", report.render_text());
    }
    if deny && !report.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
