//! # odyssey-analyzer
//!
//! Workspace-local static analysis for the Space Odyssey engine: lock-order
//! and WAL-protocol lints plus a panic-surface audit, over a hand-rolled
//! lexer and AST-lite model (deliberately dependency-free — no `syn`).
//!
//! The analyzer extracts every lock acquisition from `crates/core`,
//! `crates/storage` and `crates/serve`, resolves calls interprocedurally,
//! and checks the
//! resulting held→acquired edge graph against the canonical order declared
//! in `crates/core/src/lib.rs` (cross-validated against `LockClass::ALL` in
//! `crates/storage/src/sync.rs`). See the README's *Invariants & static
//! analysis* section for the lint catalogue and annotation syntax.
//!
//! The runtime complement is the `lock-order-check` cargo feature in
//! `odyssey-storage`, which records actually observed acquisition edges;
//! `tests/lock_order.rs` asserts they are a subset of the static graph.

pub mod lexer;
pub mod lints;
pub mod model;
pub mod report;

pub use lints::Declared;
pub use model::{Edge, FallibleSite, Finding, Model};
pub use report::Report;

use std::path::Path;

/// Analyzes a set of `(path, source)` pairs and returns the full report.
///
/// The canonical order is parsed from the sources' comment lines
/// (`lock-order:` / `self-nesting:`); if absent, a `missing-order-declaration`
/// finding is emitted and the built-in order is used so the remaining lints
/// still run.
pub fn analyze_sources(inputs: &[(String, String)]) -> Report {
    let model = Model::build(inputs);
    let (declared, mut findings) = match lints::parse_declared(&model) {
        Some(d) => (d, Vec::new()),
        None => (
            Declared::builtin(),
            vec![Finding {
                lint: "missing-order-declaration".into(),
                file: inputs.first().map(|(p, _)| p.clone()).unwrap_or_default(),
                line: 1,
                message: "no `lock-order:` declaration found in any analyzed comment; \
                          falling back to the analyzer's built-in order"
                    .into(),
            }],
        ),
    };
    findings.extend(lints::run(&model, &declared));
    findings.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    Report {
        order: declared.order.clone(),
        self_nesting: declared.self_nesting.iter().cloned().collect(),
        order_source: declared.source,
        edges: model.edges.clone(),
        findings,
        fault_surface: model.fault_surface(),
        files_analyzed: model.files.len(),
        functions: model.functions.len(),
    }
}

/// Analyzes the workspace rooted at `root` (the repository checkout):
/// every `.rs` file under `crates/core/src`, `crates/storage/src` and
/// `crates/serve/src`, except `sync.rs` itself (the lock-wrapper
/// implementation, which is read separately to cross-check
/// `LockClass::ALL` against the declared order).
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let mut inputs: Vec<(String, String)> = Vec::new();
    let mut sync_source: Option<String> = None;
    for dir in ["crates/core/src", "crates/storage/src", "crates/serve/src"] {
        let mut paths: Vec<_> = std::fs::read_dir(root.join(dir))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        paths.sort();
        for p in paths {
            let rel = format!(
                "{dir}/{}",
                p.file_name().and_then(|n| n.to_str()).unwrap_or_default()
            );
            let src = std::fs::read_to_string(&p)?;
            if rel.ends_with("storage/src/sync.rs") {
                sync_source = Some(src);
            } else {
                inputs.push((rel, src));
            }
        }
    }
    let mut report = analyze_sources(&inputs);
    // The peripheral crates (geometry, data generation, baselines, bench
    // harness) take no locks and append no WAL records, so they get the
    // restricted audit: panic-surface + swallowed-io-error only.
    let mut peripheral: Vec<(String, String)> = Vec::new();
    for dir in [
        "crates/geom/src",
        "crates/datagen/src",
        "crates/baselines/src",
        "crates/bench/src",
    ] {
        let Ok(entries) = std::fs::read_dir(root.join(dir)) else {
            continue;
        };
        let mut paths: Vec<_> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        paths.sort();
        for p in paths {
            let rel = format!(
                "{dir}/{}",
                p.file_name().and_then(|n| n.to_str()).unwrap_or_default()
            );
            peripheral.push((rel, std::fs::read_to_string(&p)?));
        }
    }
    if !peripheral.is_empty() {
        let pmodel = Model::build(&peripheral);
        report.findings.extend(lints::run_peripheral(&pmodel));
        report.files_analyzed += pmodel.files.len();
        report.functions += pmodel.functions.len();
        report
            .findings
            .sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    }
    if let Some(sync_src) = sync_source {
        cross_check_sync(&sync_src, &mut report);
    } else {
        report.findings.push(Finding {
            lint: "order-mismatch".into(),
            file: "crates/storage/src/sync.rs".into(),
            line: 1,
            message: "crates/storage/src/sync.rs not found; cannot cross-check \
                      LockClass::ALL against the declared order"
                .into(),
        });
    }
    Ok(report)
}

/// Cross-checks the declared canonical order against `LockClass::ALL` and
/// `allows_self_nesting` in the lock-wrapper source.
fn cross_check_sync(sync_src: &str, report: &mut Report) {
    let lexed = lexer::lex(sync_src);
    let toks = &lexed.tokens;
    // `const ALL: [LockClass; N] = [LockClass::A, ...]` — skip to the `=`
    // after the `const ALL` tokens, then collect variant names until `]`.
    let mut impl_order: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident("const") && matches!(toks.get(i + 1), Some(t) if t.is_ident("ALL")) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("=") {
                j += 1;
            }
            while j < toks.len() && !toks[j].is_punct("]") {
                if toks[j].is_ident("LockClass")
                    && matches!(toks.get(j + 1), Some(t) if t.is_punct("::"))
                {
                    if let Some(v) = toks.get(j + 2) {
                        impl_order.push(v.text.clone());
                    }
                    j += 3;
                } else {
                    j += 1;
                }
            }
            break;
        }
    }
    if impl_order.is_empty() {
        report.findings.push(Finding {
            lint: "order-mismatch".into(),
            file: "crates/storage/src/sync.rs".into(),
            line: 1,
            message: "could not parse LockClass::ALL from sync.rs".into(),
        });
        return;
    }
    if impl_order != report.order {
        report.findings.push(Finding {
            lint: "order-mismatch".into(),
            file: "crates/storage/src/sync.rs".into(),
            line: 1,
            message: format!(
                "LockClass::ALL ({}) disagrees with the declared canonical order ({})",
                impl_order.join(" < "),
                report.order.join(" < ")
            ),
        });
    }
    // `allows_self_nesting` body: the variants matched there must equal the
    // declared self-nesting set.
    let mut impl_nesting: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("allows_self_nesting") {
            continue;
        }
        let mut j = i;
        while j < toks.len() && !toks[j].is_punct("{") {
            j += 1;
        }
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct("{") {
                depth += 1;
            } else if toks[j].is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if toks[j].is_ident("LockClass")
                && matches!(toks.get(j + 1), Some(t) if t.is_punct("::"))
            {
                if let Some(v) = toks.get(j + 2) {
                    impl_nesting.push(v.text.clone());
                }
            }
            j += 1;
        }
        break;
    }
    impl_nesting.sort();
    let mut declared_nesting = report.self_nesting.clone();
    declared_nesting.sort();
    if impl_nesting != declared_nesting {
        report.findings.push(Finding {
            lint: "order-mismatch".into(),
            file: "crates/storage/src/sync.rs".into(),
            line: 1,
            message: format!(
                "allows_self_nesting ({}) disagrees with the declared self-nesting set ({})",
                impl_nesting.join(", "),
                declared_nesting.join(", ")
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(named: &[(&str, &str)]) -> Report {
        let inputs: Vec<(String, String)> = named
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze_sources(&inputs)
    }

    fn lints_of(report: &Report) -> Vec<&str> {
        report.findings.iter().map(|f| f.lint.as_str()).collect()
    }

    const DECL: &str = "//! lock-order: Alpha < Beta < Gamma\n//! self-nesting: Gamma\n";

    #[test]
    fn clean_ordered_acquisition_has_no_findings() {
        let src = format!(
            "{DECL}
            struct S {{ a: Shared<Foo>, b: Exclusive<Bar> }}
            impl S {{
                fn new() -> S {{
                    S {{
                        a: Shared::new(LockClass::Alpha, Foo),
                        b: Exclusive::new(LockClass::Beta, Bar),
                    }}
                }}
                fn nested(&self) -> u32 {{
                    let a = self.a.read();
                    let b = self.b.lock();
                    a.x + b.y
                }}
            }}"
        );
        let r = analyze(&[("fixture.rs", &src)]);
        assert_eq!(r.findings, vec![], "unexpected findings: {:?}", r.findings);
        assert!(r
            .edges
            .iter()
            .any(|e| e.from == "Alpha" && e.to == "Beta" && !e.via_call));
    }

    #[test]
    fn seeded_cycle_is_detected() {
        let src = format!(
            "{DECL}
            struct S {{ a: Shared<Foo>, b: Shared<Bar> }}
            impl S {{
                fn forward(&self) {{
                    let a = self.a.read();
                    let _b = self.b.read();
                }}
                fn backward(&self) {{
                    let b = self.b.read();
                    let _a = self.a.read();
                }}
                fn mk() -> S {{
                    S {{
                        a: Shared::new(LockClass::Alpha, Foo),
                        b: Shared::new(LockClass::Beta, Bar),
                    }}
                }}
            }}"
        );
        let r = analyze(&[("fixture.rs", &src)]);
        let lints = lints_of(&r);
        assert!(
            lints.contains(&"lock-order-violation"),
            "missing order violation: {:?}",
            r.findings
        );
        assert!(
            lints.contains(&"lock-order-cycle"),
            "missing cycle: {:?}",
            r.findings
        );
    }

    #[test]
    fn constructor_tuple_without_binding_is_flagged_but_field_names_classify() {
        // `mk()` in the cycle fixture constructs into a tuple — covered by
        // the struct-field classifications, but a source where the ONLY
        // construction is unnamed must be flagged.
        let src = format!(
            "{DECL}
            fn orphan() {{
                consume(Shared::new(LockClass::Alpha, Foo));
            }}"
        );
        let r = analyze(&[("fixture.rs", &src)]);
        assert!(lints_of(&r).contains(&"unnamed-lock-constructor"));
    }

    #[test]
    fn self_nesting_is_allowed_only_where_declared() {
        let src = format!(
            "{DECL}
            struct S {{ g: Shared<Foo>, b: Shared<Bar> }}
            impl S {{
                fn new() -> S {{
                    S {{
                        g: Shared::new(LockClass::Gamma, Foo),
                        b: Shared::new(LockClass::Beta, Bar),
                    }}
                }}
                fn nest_gamma(&self, other: &S) {{
                    let g = self.g.read();
                    let _g2 = other.g.read();
                }}
                fn nest_beta(&self, other: &S) {{
                    let b = self.b.read();
                    let _b2 = other.b.read();
                }}
            }}"
        );
        let r = analyze(&[("fixture.rs", &src)]);
        let violations: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.lint == "lock-order-violation")
            .collect();
        assert_eq!(violations.len(), 1, "{:?}", r.findings);
        assert!(violations[0].message.contains("Beta"));
    }

    #[test]
    fn wal_outside_lock_is_flagged_and_guarded_sites_pass() {
        let src = "//! lock-order: Stats
            struct E { stats: Shared<St> }
            impl E {
                fn new() -> E {
                    E { stats: Shared::new(LockClass::Stats, St) }
                }
                fn protected(&self, storage: &StorageManager) {
                    let s = self.stats.write();
                    durability::log(storage, MetaRecord::QueryStats { n: s.n });
                }
                fn unprotected(storage: &StorageManager) {
                    durability::log(storage, MetaRecord::QueryStats { n: 0 });
                }
            }";
        let unprotected_line = src
            .lines()
            .position(|l| l.contains("MetaRecord::QueryStats { n: 0 }"))
            .expect("fixture contains the unprotected site") as u32
            + 1;
        let r = analyze(&[("fixture.rs", src)]);
        let wal: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.lint == "wal-outside-lock")
            .collect();
        assert_eq!(wal.len(), 1, "{:?}", r.findings);
        assert_eq!(wal[0].line, unprotected_line, "{:?}", wal);
    }

    #[test]
    fn wal_protection_through_caller_path_passes() {
        let src = "//! lock-order: Stats
            struct E { stats: Shared<St> }
            impl E {
                fn new() -> E {
                    E { stats: Shared::new(LockClass::Stats, St) }
                }
                fn outer(&self, storage: &StorageManager) {
                    let s = self.stats.write();
                    helper(storage, s.n);
                }
            }
            fn helper(storage: &StorageManager, n: u64) {
                durability::log(storage, MetaRecord::QueryStats { n });
            }";
        let r = analyze(&[("fixture.rs", src)]);
        assert!(
            !lints_of(&r).contains(&"wal-outside-lock"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn log_before_sync_requires_data_sync_dominance() {
        let src = "//! lock-order: Stats
            struct E { stats: Shared<St> }
            impl E {
                fn new() -> E {
                    E { stats: Shared::new(LockClass::Stats, St) }
                }
                fn missing_sync(&self, storage: &StorageManager) {
                    let s = self.stats.write();
                    durability::log(storage, MetaRecord::Ingest { n: s.n });
                }
                fn synced(&self, storage: &StorageManager, f: FileId) {
                    let s = self.stats.write();
                    storage.sync_file(f);
                    durability::log(storage, MetaRecord::Ingest { n: s.n });
                }
            }";
        let r = analyze(&[("fixture.rs", src)]);
        let sync: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.lint == "log-before-sync")
            .collect();
        assert_eq!(sync.len(), 1, "{:?}", r.findings);
        assert_eq!(sync[0].line, 9);
    }

    #[test]
    fn panic_surface_flagged_unless_allowed() {
        let src = "//! lock-order: Alpha
            fn f(x: Option<u32>) -> u32 {
                x.unwrap()
            }
            fn g(x: Option<u32>) -> u32 {
                x.unwrap() // analyzer: allow(caller checked is_some)
            }
            #[cfg(test)]
            mod tests {
                fn h(x: Option<u32>) -> u32 {
                    x.unwrap()
                }
            }";
        let r = analyze(&[("fixture.rs", src)]);
        let panics: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.lint == "panic-surface")
            .collect();
        assert_eq!(panics.len(), 1, "{:?}", r.findings);
        assert_eq!(panics[0].line, 3);
    }

    #[test]
    fn raw_lock_construction_is_flagged() {
        let src = "//! lock-order: Alpha
            fn f() {
                let m = Mutex::new(0u32);
            }";
        let r = analyze(&[("fixture.rs", src)]);
        assert!(lints_of(&r).contains(&"raw-lock-construction"));
    }

    #[test]
    fn missing_declaration_is_a_finding() {
        let r = analyze(&[("fixture.rs", "fn f() {}")]);
        assert!(lints_of(&r).contains(&"missing-order-declaration"));
    }

    #[test]
    fn lock_directive_classifies_accessor_receivers() {
        let src = "//! lock-order: Alpha < Beta
            struct P { cells: Vec<Exclusive<u64>> }
            impl P {
                fn cell(&self, i: usize) -> &Exclusive<u64> {
                    // analyzer: lock(cell = Beta)
                    &self.cells[i]
                }
                fn bump(&self, i: usize) {
                    *self.cell(i).lock() += 1;
                }
            }";
        let r = analyze(&[("fixture.rs", src)]);
        assert!(
            !lints_of(&r).contains(&"unclassified-acquisition"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn interprocedural_edge_through_call() {
        let src = "//! lock-order: Alpha < Beta
            struct S { a: Shared<Foo>, b: Shared<Bar> }
            impl S {
                fn new() -> S {
                    S {
                        a: Shared::new(LockClass::Alpha, Foo),
                        b: Shared::new(LockClass::Beta, Bar),
                    }
                }
                fn inner(&self) -> u64 {
                    self.b.read().v
                }
                fn outer(&self) -> u64 {
                    let a = self.a.read();
                    self.inner() + a.v
                }
            }";
        let r = analyze(&[("fixture.rs", src)]);
        assert!(
            r.edges
                .iter()
                .any(|e| e.from == "Alpha" && e.to == "Beta" && e.via_call),
            "{:?}",
            r.edges
        );
        assert_eq!(r.findings, vec![]);
    }

    #[test]
    fn swallowed_io_error_flags_discards_and_respects_rescue() {
        let src = "//! lock-order: Alpha
            fn flaky() -> StorageResult<u32> { Ok(1) }
            fn discards() {
                let _ = flaky();
            }
            fn ok_terminal() {
                flaky().ok();
            }
            fn rescued() -> StorageResult<u32> {
                let v = flaky()?;
                Ok(v)
            }
            fn bound() -> Option<u32> {
                let v = flaky().ok();
                v
            }
            fn annotated() {
                let _ = flaky(); // analyzer: allow(fixture discards on purpose)
            }";
        let r = analyze(&[("fixture.rs", src)]);
        let swallows: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.lint == "swallowed-io-error")
            .collect();
        assert_eq!(swallows.len(), 2, "{:?}", r.findings);
        assert_eq!(swallows[0].line, 4, "{:?}", swallows);
        assert!(swallows[0].message.contains("`let _`"));
        assert_eq!(swallows[1].line, 7, "{:?}", swallows);
        assert!(swallows[1].message.contains("`.ok()`"));
    }

    #[test]
    fn discarded_thread_join_is_flagged() {
        let src = "//! lock-order: Alpha
            fn waits(h: JoinHandle<()>) {
                let _ = h.join();
            }
            fn path_join(dir: &Path) -> PathBuf {
                let _ = probe();
                dir.join(\"segment\")
            }
            fn probe() -> bool { true }";
        let r = analyze(&[("fixture.rs", src)]);
        let swallows: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.lint == "swallowed-io-error")
            .collect();
        // Arg-less `.join()` is a thread join (worker panic channel); the
        // arg-taking `Path::join` and the infallible `probe()` are not.
        assert_eq!(swallows.len(), 1, "{:?}", r.findings);
        assert_eq!(swallows[0].line, 3);
    }

    #[test]
    fn mutate_before_log_requires_wal_dominance() {
        let src = "//! lock-order: Stats
            struct E { stats: Shared<St> }
            impl E {
                fn new() -> E {
                    E { stats: Shared::new(LockClass::Stats, St) }
                }
                fn bad(&self, storage: &StorageManager, f: FileId) {
                    let s = self.stats.write();
                    storage.delete_file(f);
                }
                fn good(&self, storage: &StorageManager, f: FileId) {
                    let s = self.stats.write();
                    durability::log(storage, MetaRecord::QueryStats { n: s.n });
                    storage.delete_file(f);
                }
            }";
        let r = analyze(&[("fixture.rs", src)]);
        let mutates: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.lint == "mutate-before-log")
            .collect();
        assert_eq!(mutates.len(), 1, "{:?}", r.findings);
        assert_eq!(mutates[0].line, 9, "{:?}", mutates);
    }

    #[test]
    fn unguarded_recovery_mutation_is_not_flagged() {
        // No lock held and no callers: a recovery path (engine open) that
        // replays the WAL rather than appending to it.
        let src = "//! lock-order: Alpha
            fn recover(storage: &StorageManager, f: FileId) {
                storage.delete_file(f);
            }";
        let r = analyze(&[("fixture.rs", src)]);
        assert!(
            !lints_of(&r).contains(&"mutate-before-log"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn error_path_purity_flags_engine_locks_but_allows_serve_locks() {
        let src = "//! lock-order: Merger < ServeQueue
            struct S { m: Exclusive<M>, q: Exclusive<Q> }
            impl S {
                fn new() -> S {
                    S {
                        m: Exclusive::new(LockClass::Merger, M),
                        q: Exclusive::new(LockClass::ServeQueue, Q),
                    }
                }
                fn bad(&self) -> ServeError {
                    let g = self.m.lock();
                    ServeError::Internal(g.msg.clone())
                }
                fn good(&self) -> ServeError {
                    let q = self.q.lock();
                    ServeError::Busy(q.depth)
                }
            }";
        let r = analyze(&[("fixture.rs", src)]);
        let purity: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.lint == "error-path-purity")
            .collect();
        assert_eq!(purity.len(), 1, "{:?}", r.findings);
        assert!(purity[0].message.contains("Merger"), "{:?}", purity);
    }

    #[test]
    fn error_path_purity_flags_mutating_calls_in_constructor_args() {
        let src = "//! lock-order: Merger
            struct S { m: Exclusive<M> }
            impl S {
                fn new() -> S {
                    S { m: Exclusive::new(LockClass::Merger, M) }
                }
                fn touch(&self) -> String {
                    let g = self.m.lock();
                    g.msg.clone()
                }
                fn indirect(&self) -> ServeError {
                    ServeError::Internal(self.touch())
                }
                fn beside(&self) -> ServeResult<u32> {
                    self.touch();
                    Ok(1)
                }
            }";
        let r = analyze(&[("fixture.rs", src)]);
        let purity: Vec<_> = r
            .findings
            .iter()
            .filter(|f| f.lint == "error-path-purity")
            .collect();
        // Only the call inside the constructor parens counts; `beside` calls
        // the same mutating helper outside any ServeError construction.
        assert_eq!(purity.len(), 1, "{:?}", r.findings);
        assert_eq!(purity[0].line, 12, "{:?}", purity);
        assert!(purity[0].message.contains("Merger"), "{:?}", purity);
    }

    #[test]
    fn fault_surface_classifies_durable_core_and_exempt_sites() {
        let api = "//! lock-order: Alpha
            impl StorageManager {
                fn sync_file(&self, f: FileId) -> StorageResult<()> { Ok(()) }
            }";
        let durable_caller = "fn persist(storage: &StorageManager) -> StorageResult<()> {
                storage.sync_file(FileId(0))?;
                Ok(())
            }";
        let lateral_caller = "fn best_effort(storage: &StorageManager) -> StorageResult<()> {
                // analyzer: allow(advisory sync; failure only costs cache warmth)
                storage.sync_file(FileId(1))?;
                Ok(())
            }";
        let r = analyze(&[
            ("manager.rs", api),
            ("wal.rs", durable_caller),
            ("engine.rs", lateral_caller),
        ]);
        assert_eq!(r.fault_surface.len(), 2, "{:?}", r.fault_surface);
        let durable: Vec<_> = r.fault_surface.iter().filter(|f| f.durable_core).collect();
        assert_eq!(durable.len(), 1, "{:?}", r.fault_surface);
        assert_eq!(durable[0].caller, "persist");
        assert_eq!(durable[0].callee, "sync_file");
        assert_eq!(durable[0].file, "wal.rs");
        let exempt: Vec<_> = r.fault_surface.iter().filter(|f| f.exempt).collect();
        assert_eq!(exempt.len(), 1, "{:?}", r.fault_surface);
        assert_eq!(exempt[0].file, "engine.rs");
    }

    #[test]
    fn fault_surface_skips_infallible_and_non_storage_calls() {
        let api = "//! lock-order: Alpha
            impl StorageManager {
                fn stats(&self) -> Stats { Stats }
            }";
        let caller = "fn peek(storage: &StorageManager) -> Stats {
                storage.stats()
            }";
        let r = analyze(&[("manager.rs", api), ("octree.rs", caller)]);
        assert_eq!(r.fault_surface, vec![], "{:?}", r.fault_surface);
    }
}
