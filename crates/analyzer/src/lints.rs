//! The lint passes over a built [`Model`]: lock-order conformance, cycle
//! detection, WAL-protocol discipline and panic-surface audit.

use crate::model::{Finding, Model};
use std::collections::{BTreeMap, BTreeSet};

/// Classes whose guard scope counts as "protecting the mutation" for the
/// WAL lint: every durable-state mutation in the engine is guarded by one
/// of these.
pub const MUTATING_CLASSES: [&str; 4] = ["Merger", "Stats", "DatasetState", "DatasetRaw"];

/// Record variants that reference no freshly written data pages, so the
/// data-sync-before-log dominance requirement does not apply:
///
/// * `InitDataset` / `MergeCreate` — register a file before any page is
///   written into it;
/// * `MergeEvict` — removes an entry, writes nothing;
/// * `CompactionProgress` — a resume cursor, references already-synced pages;
/// * `QueryStats` — planner statistics, no pages at all.
pub const SYNC_EXEMPT_RECORDS: [&str; 5] = [
    "InitDataset",
    "MergeCreate",
    "MergeEvict",
    "CompactionProgress",
    "QueryStats",
];

/// The canonical lock order the workspace declares (parsed from source, or
/// [`Declared::builtin`] as a fallback so the other lints still run).
#[derive(Debug, Clone)]
pub struct Declared {
    /// Class names, outermost first. Rank = index.
    pub order: Vec<String>,
    /// Classes allowed to nest within themselves (disjoint instances taken
    /// in a deterministic order).
    pub self_nesting: BTreeSet<String>,
    /// Where the declaration was parsed from, if it was.
    pub source: Option<(String, u32)>,
}

impl Declared {
    /// The built-in fallback order (mirrors `LockClass::ALL` in
    /// `crates/storage/src/sync.rs`).
    pub fn builtin() -> Declared {
        Declared {
            order: [
                "Merger",
                "Stats",
                "SchedulerQueue",
                "DatasetState",
                "DatasetRaw",
                "ResultCache",
                "Wal",
                "StorageFiles",
                "WalState",
                "BufferShard",
                "FilePages",
                "WorkCell",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            self_nesting: ["DatasetState", "DatasetRaw", "WorkCell"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            source: None,
        }
    }

    fn rank(&self, class: &str) -> Option<usize> {
        self.order.iter().position(|c| c == class)
    }
}

/// Parses the canonical-order declaration out of the model's comment lines:
///
/// ```text
/// lock-order: Merger < Stats < ... < WorkCell
/// self-nesting: DatasetState, DatasetRaw, WorkCell
/// ```
///
/// A `lock-order:` line may be continued by following comment lines that
/// start with `<`.
pub fn parse_declared(model: &Model) -> Option<Declared> {
    let mut order: Vec<String> = Vec::new();
    let mut self_nesting: BTreeSet<String> = BTreeSet::new();
    let mut source = None;
    let mut i = 0;
    while i < model.comment_lines.len() {
        let (fi, line, text) = &model.comment_lines[i];
        if let Some(rest) = text.strip_prefix("lock-order:") {
            if order.is_empty() {
                source = Some((model.files[*fi].clone(), *line));
                let mut decl = rest.trim().to_string();
                // Continuation lines start with `<`.
                while let Some((nfi, _, next)) = model.comment_lines.get(i + 1) {
                    if *nfi == *fi && next.starts_with('<') {
                        decl.push(' ');
                        decl.push_str(next);
                        i += 1;
                    } else {
                        break;
                    }
                }
                order = decl
                    .split('<')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
        } else if let Some(rest) = text.strip_prefix("self-nesting:") {
            self_nesting = rest
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
        }
        i += 1;
    }
    if order.is_empty() {
        return None;
    }
    Some(Declared {
        order,
        self_nesting,
        source,
    })
}

fn allowed(model: &Model, file: &str, line: u32) -> bool {
    model
        .files
        .iter()
        .position(|f| f == file)
        .is_some_and(|fi| model.is_allowed(fi, line))
}

/// Lock classes the serving tier may legitimately hold while constructing
/// an error reply (its own admission-queue and work-cell locks).
pub const ERROR_PATH_ALLOWED: [&str; 2] = ["ServeQueue", "WorkCell"];

/// Runs every lint; returns findings (model-level findings included).
pub fn run(model: &Model, declared: &Declared) -> Vec<Finding> {
    let mut findings: Vec<Finding> = model.findings.clone();
    order_lint(model, declared, &mut findings);
    cycle_lint(model, &mut findings);
    wal_lint(model, &mut findings);
    panic_lint(model, &mut findings);
    swallow_lint(model, &mut findings);
    mutate_lint(model, &mut findings);
    error_path_lint(model, &mut findings);
    findings.retain(|f| !allowed(model, &f.file, f.line));
    findings.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    findings
}

/// The restricted pass for the peripheral crates (geom, datagen, baselines,
/// bench): panic-surface and swallowed-io-error only — those crates take no
/// locks and append no WAL records, so the protocol lints don't apply.
///
/// The panic lint runs relaxed here: the harness/generator binaries handle
/// unrecoverable setup errors by aborting, and `.expect("message")` is the
/// accepted way to do that — the message documents the invariant. Bare
/// `unwrap` and `panic!` are still flagged.
pub fn run_peripheral(model: &Model) -> Vec<Finding> {
    let mut findings = Vec::new();
    for site in &model.panic_sites {
        if site.what == "expect" {
            continue;
        }
        findings.push(Finding {
            lint: "panic-surface".into(),
            file: model.files[site.file].clone(),
            line: site.line,
            message: format!(
                "`{}` in non-test code: use `.expect(\"why this cannot fail\")` or \
                 annotate with `// analyzer: allow(reason)`",
                site.what
            ),
        });
    }
    swallow_lint(model, &mut findings);
    findings.retain(|f| !allowed(model, &f.file, f.line));
    findings.sort_by(|a, b| (&a.file, a.line, &a.lint).cmp(&(&b.file, b.line, &b.lint)));
    findings
}

/// Memoized "every caller path holds a mutating lock" check, shared by the
/// WAL-append and mutate-before-log dominance lints.
fn callers_hold_mutating(
    model: &Model,
    func: usize,
    memo: &mut BTreeMap<usize, Option<bool>>,
) -> bool {
    match memo.get(&func) {
        Some(Some(v)) => return *v,
        Some(None) => return false, // cycle: be conservative
        None => {}
    }
    memo.insert(func, None);
    let callers = model.callers_of(func);
    let ok = !callers.is_empty()
        && callers.iter().all(|(caller, held, _)| {
            held.iter().any(|h| MUTATING_CLASSES.contains(&h.as_str()))
                || callers_hold_mutating(model, *caller, memo)
        });
    memo.insert(func, Some(ok));
    ok
}

/// Every acquisition edge must go strictly down the declared order (equal
/// ranks only for self-nesting classes).
fn order_lint(model: &Model, declared: &Declared, findings: &mut Vec<Finding>) {
    for e in &model.edges {
        let (Some(rf), Some(rt)) = (declared.rank(&e.from), declared.rank(&e.to)) else {
            for c in [&e.from, &e.to] {
                if declared.rank(c).is_none() {
                    findings.push(Finding {
                        lint: "unknown-lock-class".into(),
                        file: e.file.clone(),
                        line: e.line,
                        message: format!("lock class {c} is not in the declared canonical order"),
                    });
                }
            }
            continue;
        };
        if rf > rt {
            findings.push(Finding {
                lint: "lock-order-violation".into(),
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "{} (rank {rt}) acquired while holding {} (rank {rf}); the canonical \
                     order requires {} before {}{}",
                    e.to,
                    e.from,
                    e.to,
                    e.from,
                    if e.via_call {
                        " (edge reached through a call)"
                    } else {
                        ""
                    }
                ),
            });
        } else if rf == rt && !declared.self_nesting.contains(&e.from) {
            findings.push(Finding {
                lint: "lock-order-violation".into(),
                file: e.file.clone(),
                line: e.line,
                message: format!(
                    "{} acquired while already held and not declared self-nesting",
                    e.from
                ),
            });
        }
    }
}

/// The acquisition graph must be acyclic regardless of ranks (catches a
/// mis-declared order that happens to admit a cycle).
fn cycle_lint(model: &Model, findings: &mut Vec<Finding>) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in &model.edges {
        adj.entry(e.from.as_str()).or_default().push(e.to.as_str());
    }
    // Iterative DFS with colors; report the first cycle found.
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 1 = on stack, 2 = done
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        color.insert(start, 1);
        while let Some((node, idx)) = stack.last().copied() {
            let next = adj.get(node).and_then(|v| v.get(idx)).copied();
            match next {
                Some(succ) => {
                    stack.last_mut().expect("stack is non-empty").1 += 1;
                    match color.get(succ).copied().unwrap_or(0) {
                        0 => {
                            color.insert(succ, 1);
                            stack.push((succ, 0));
                            path.push(succ);
                        }
                        1 => {
                            let pos = path.iter().position(|n| *n == succ).unwrap_or(0);
                            let cycle: Vec<&str> = path[pos..].to_vec();
                            let site = model
                                .edges
                                .iter()
                                .find(|e| e.from == node && e.to == succ)
                                .map(|e| (e.file.clone(), e.line))
                                .unwrap_or_default();
                            findings.push(Finding {
                                lint: "lock-order-cycle".into(),
                                file: site.0,
                                line: site.1,
                                message: format!(
                                    "lock acquisition cycle: {} -> {}",
                                    cycle.join(" -> "),
                                    succ
                                ),
                            });
                            return; // one cycle report is enough
                        }
                        _ => {}
                    }
                }
                None => {
                    color.insert(node, 2);
                    stack.pop();
                    path.pop();
                }
            }
        }
    }
}

/// WAL-protocol lints:
///
/// * `raw-log-meta` — `.log_meta(` anywhere but the `durability::log`
///   wrapper bypasses record encoding;
/// * `wal-outside-lock` — every `durability::log` must run inside the guard
///   scope of a mutating-state lock, either directly or on every caller
///   path;
/// * `log-before-sync` — records that reference freshly written data pages
///   must be dominated by a `sync_file` of those pages.
fn wal_lint(model: &Model, findings: &mut Vec<Finding>) {
    let mut memo: BTreeMap<usize, Option<bool>> = BTreeMap::new();
    for site in &model.log_sites {
        let file = model.files[site.file].clone();
        if site.raw_log_meta {
            if !file.ends_with("durability.rs") && !file.contains("storage") {
                findings.push(Finding {
                    lint: "raw-log-meta".into(),
                    file,
                    line: site.line,
                    message: "direct .log_meta() call bypasses durability::log; use the \
                              wrapper so records are encoded and gated on wal_enabled"
                        .into(),
                });
            }
            // The wrapper's own append inherits its callers' guard scopes,
            // which are exactly the non-raw sites checked below.
            continue;
        }
        let direct = site
            .held
            .iter()
            .any(|h| MUTATING_CLASSES.contains(&h.as_str()));
        if !direct && !callers_hold_mutating(model, site.func, &mut memo) {
            findings.push(Finding {
                lint: "wal-outside-lock".into(),
                file: file.clone(),
                line: site.line,
                message: format!(
                    "durability::log outside the guard scope of any mutating-state lock \
                     ({}): WAL order would not equal visibility order",
                    MUTATING_CLASSES.join("/")
                ),
            });
        }
        if let Some(record) = &site.record {
            if !SYNC_EXEMPT_RECORDS.contains(&record.as_str()) && !site.prior_sync {
                findings.push(Finding {
                    lint: "log-before-sync".into(),
                    file,
                    line: site.line,
                    message: format!(
                        "MetaRecord::{record} references data pages but no sync_file call \
                         dominates the append in this function; a crash could recover a \
                         record whose pages were never written"
                    ),
                });
            }
        }
    }
}

/// `swallowed-io-error` — a `let _ = ...;` or terminal `.ok();` statement
/// that discards the result of an io-fallible workspace function (or an
/// argless thread `join`) without inspecting it.
fn swallow_lint(model: &Model, findings: &mut Vec<Finding>) {
    for s in &model.swallow_sites {
        let mut what: Vec<String> = s.fallible_callees.clone();
        if s.join && !what.iter().any(|w| w == "join") {
            what.push("join".into());
        }
        if what.is_empty() {
            continue;
        }
        findings.push(Finding {
            lint: "swallowed-io-error".into(),
            file: model.files[s.file].clone(),
            line: s.line,
            message: format!(
                "`{}` discards the result of {}: an I/O error (or worker panic) vanishes \
                 silently; handle it or annotate with `// analyzer: allow(reason)`",
                s.how,
                what.join("/")
            ),
        });
    }
}

/// `mutate-before-log` — the dual of `wal-outside-lock`: a guarded
/// durable-state mutation (`delete_file`/`truncate_file`) must be dominated
/// by the WAL append that explains it, in the same function. Unguarded
/// sites with no callers are recovery paths (engine open), which replay the
/// WAL rather than append to it.
fn mutate_lint(model: &Model, findings: &mut Vec<Finding>) {
    let mut memo: BTreeMap<usize, Option<bool>> = BTreeMap::new();
    for site in &model.mutate_sites {
        let file = model.files[site.file].clone();
        // The storage manager *implements* the operations; the protocol
        // binds engine call sites.
        if file.contains("storage/src") {
            continue;
        }
        let direct = site
            .held
            .iter()
            .any(|h| MUTATING_CLASSES.contains(&h.as_str()));
        if !direct && !callers_hold_mutating(model, site.func, &mut memo) {
            continue;
        }
        let logged = model
            .log_sites
            .iter()
            .any(|l| l.func == site.func && l.line <= site.line);
        if !logged {
            findings.push(Finding {
                lint: "mutate-before-log".into(),
                file,
                line: site.line,
                message: format!(
                    "durable-state mutation `{}` is not dominated by a WAL append in this \
                     function: a crash after the mutation leaves a store state no WAL \
                     record explains",
                    site.name
                ),
            });
        }
    }
}

/// `error-path-purity` — a `ServeError` must be constructed without holding
/// engine locks (only the serve tier's own [`ERROR_PATH_ALLOWED`] classes)
/// and without calling into code that acquires mutating engine locks: the
/// error reply path must not mutate engine state or hold a lock across the
/// send.
fn error_path_lint(model: &Model, findings: &mut Vec<Finding>) {
    for s in &model.error_sites {
        let file = model.files[s.file].clone();
        for h in s
            .held
            .iter()
            .filter(|h| !ERROR_PATH_ALLOWED.contains(&h.as_str()))
        {
            findings.push(Finding {
                lint: "error-path-purity".into(),
                file: file.clone(),
                line: s.line,
                message: format!(
                    "ServeError constructed while holding engine lock {h}: the error reply \
                     must not hold a lock across the send"
                ),
            });
        }
        let mutating: Vec<&String> = s
            .arg_acq
            .iter()
            .filter(|c| MUTATING_CLASSES.contains(&c.as_str()))
            .collect();
        if !mutating.is_empty() {
            findings.push(Finding {
                lint: "error-path-purity".into(),
                file,
                line: s.line,
                message: format!(
                    "ServeError construction calls into code that acquires mutating engine \
                     locks ({}): the error path must not mutate engine state",
                    mutating
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join("/")
                ),
            });
        }
    }
}

/// `.unwrap()` / `.expect(` / `panic!`-family in non-test code must carry an
/// `// analyzer: allow(reason)` annotation.
fn panic_lint(model: &Model, findings: &mut Vec<Finding>) {
    for site in &model.panic_sites {
        findings.push(Finding {
            lint: "panic-surface".into(),
            file: model.files[site.file].clone(),
            line: site.line,
            message: format!(
                "`{}` in non-test code: return an error or annotate with \
                 `// analyzer: allow(reason)` if the invariant is locally provable",
                site.what
            ),
        });
    }
}
