//! Paged files: the unit of on-disk storage.
//!
//! A paged file is a growable array of fixed-size pages. Two backends are
//! provided: [`MemFile`] keeps pages in memory (used by tests and by the
//! deterministic cost-model benchmarks, where simulated time comes from the
//! access trace, not the medium) and [`DiskFile`] stores pages in a real file
//! through `std::fs` (used to validate that nothing depends on the in-memory
//! shortcut).
//!
//! # Concurrency
//!
//! All operations take `&self` so that a [`crate::StorageManager`] can be
//! shared across query threads. Individual page reads and writes are atomic
//! at page granularity (a reader never observes a half-written page);
//! multi-page runs are kept consistent by the index-level locks of the
//! callers (see the crate docs of `odyssey-core`).

use crate::error::{StorageError, StorageResult};
use crate::fault::{self, FaultState, SiteClass};
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::sync::{Exclusive, LockClass, Shared};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Identifier of a file managed by the [`crate::StorageManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u32);

impl FileId {
    /// Raw index of the file.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A growable array of fixed-size pages, shareable across threads.
pub trait PagedFile: Send + Sync {
    /// Number of pages currently in the file.
    fn num_pages(&self) -> u64;

    /// Reads the page at `page`.
    fn read_page(&self, page: PageId) -> StorageResult<Page>;

    /// Overwrites the page at `page` (must already exist).
    fn write_page(&self, page: PageId, data: &Page) -> StorageResult<()>;

    /// Appends a page at the end of the file and returns its id.
    fn append_page(&self, data: &Page) -> StorageResult<PageId>;

    /// Ensures the file has at least `pages` pages, filling with empty pages
    /// as needed (used when pre-allocating partition extents). The default
    /// implementation appends one page at a time; [`MemFile`] and
    /// [`DiskFile`] override it with bulk extension.
    fn grow_to(&self, pages: u64) -> StorageResult<()> {
        while self.num_pages() < pages {
            self.append_page(&Page::empty())?;
        }
        Ok(())
    }

    /// Shrinks the file to at most `pages` pages, dropping everything beyond.
    /// A no-op when the file is already short enough. Crash recovery uses
    /// this to cut orphaned pages (written after the last committed metadata
    /// record) off the tail of every data file.
    fn truncate(&self, pages: u64) -> StorageResult<()>;

    /// Flushes written pages to the device (`fdatasync` for [`DiskFile`]).
    /// The durability protocol syncs a data file before appending the WAL
    /// record that references its pages, and the WAL after every append, so
    /// the write ordering recovery relies on holds against power loss, not
    /// just process crashes. A no-op for in-memory files.
    fn sync(&self) -> StorageResult<()> {
        Ok(())
    }
}

/// Pages per positioned write in [`DiskFile::grow_to`]'s bulk extension
/// (1 MiB chunks).
const GROW_CHUNK_PAGES: u64 = 256;

/// In-memory paged file.
#[derive(Default)]
pub struct MemFile {
    pages: Shared<Vec<Page>>,
}

impl MemFile {
    /// Creates an empty in-memory file.
    pub fn new() -> Self {
        MemFile {
            pages: Shared::new(LockClass::FilePages, Vec::new()),
        }
    }
}

fn out_of_range(page: PageId, len: u64) -> StorageError {
    StorageError::PageOutOfRange {
        file: u32::MAX,
        page: page.0,
        len,
    }
}

impl PagedFile for MemFile {
    fn num_pages(&self) -> u64 {
        self.pages.read().len() as u64
    }

    fn read_page(&self, page: PageId) -> StorageResult<Page> {
        let pages = self.pages.read();
        pages
            .get(page.0 as usize)
            .cloned()
            .ok_or_else(|| out_of_range(page, pages.len() as u64))
    }

    fn write_page(&self, page: PageId, data: &Page) -> StorageResult<()> {
        let mut pages = self.pages.write();
        let len = pages.len() as u64;
        let slot = pages
            .get_mut(page.0 as usize)
            .ok_or_else(|| out_of_range(page, len))?;
        *slot = data.clone();
        Ok(())
    }

    fn append_page(&self, data: &Page) -> StorageResult<PageId> {
        let mut pages = self.pages.write();
        pages.push(data.clone());
        Ok(PageId(pages.len() as u64 - 1))
    }

    fn grow_to(&self, target: u64) -> StorageResult<()> {
        let mut pages = self.pages.write();
        if (pages.len() as u64) < target {
            pages.resize(target as usize, Page::empty());
        }
        Ok(())
    }

    fn truncate(&self, target: u64) -> StorageResult<()> {
        let mut pages = self.pages.write();
        if (pages.len() as u64) > target {
            pages.truncate(target as usize);
        }
        Ok(())
    }
}

/// Paged file backed by a real file on disk.
///
/// Reads and writes use positioned I/O (`pread`/`pwrite`), so concurrent
/// readers never race on a shared cursor; the page count is guarded by a
/// mutex so appends are atomic.
pub struct DiskFile {
    file: File,
    path: PathBuf,
    num_pages: Exclusive<u64>,
}

impl DiskFile {
    /// Creates (or truncates) a paged file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let _cover = fault::enter("DiskFile::create");
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(DiskFile {
            file,
            path,
            num_pages: Exclusive::new(LockClass::FilePages, 0),
        })
    }

    /// Opens an existing paged file at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let _cover = fault::enter("DiskFile::open");
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file {} length {len} is not a multiple of the page size",
                path.display()
            )));
        }
        Ok(DiskFile {
            file,
            path,
            num_pages: Exclusive::new(LockClass::FilePages, len / PAGE_SIZE as u64),
        })
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl PagedFile for DiskFile {
    fn num_pages(&self) -> u64 {
        *self.num_pages.lock()
    }

    fn read_page(&self, page: PageId) -> StorageResult<Page> {
        let len = *self.num_pages.lock();
        if page.0 >= len {
            return Err(out_of_range(page, len));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file
            .read_exact_at(&mut buf, page.0 * PAGE_SIZE as u64)?;
        Ok(Page::from_bytes(buf))
    }

    fn write_page(&self, page: PageId, data: &Page) -> StorageResult<()> {
        let len = *self.num_pages.lock();
        if page.0 >= len {
            return Err(out_of_range(page, len));
        }
        self.file
            .write_all_at(data.as_bytes(), page.0 * PAGE_SIZE as u64)?;
        Ok(())
    }

    fn append_page(&self, data: &Page) -> StorageResult<PageId> {
        let mut len = self.num_pages.lock();
        self.file
            .write_all_at(data.as_bytes(), *len * PAGE_SIZE as u64)?;
        let id = PageId(*len);
        *len += 1;
        Ok(id)
    }

    /// Bulk extension: instead of one 4 KB write (and one length-mutex round
    /// trip) per page, the new empty pages are written in 1 MiB chunks with
    /// a single positioned write each — one large sequential transfer rather
    /// than thousands of tiny ones.
    fn grow_to(&self, target: u64) -> StorageResult<()> {
        let mut len = self.num_pages.lock();
        if *len >= target {
            return Ok(());
        }
        let empty = Page::empty();
        let mut chunk: Vec<u8> = Vec::new();
        while *len < target {
            let pages = (target - *len).min(GROW_CHUNK_PAGES) as usize;
            let want = pages * PAGE_SIZE;
            if chunk.len() < want {
                while chunk.len() < want {
                    chunk.extend_from_slice(empty.as_bytes());
                }
            }
            self.file
                .write_all_at(&chunk[..want], *len * PAGE_SIZE as u64)?;
            *len += pages as u64;
        }
        Ok(())
    }

    fn truncate(&self, target: u64) -> StorageResult<()> {
        let mut len = self.num_pages.lock();
        if *len > target {
            self.file.set_len(target * PAGE_SIZE as u64)?;
            *len = target;
        }
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// A [`PagedFile`] wrapper that injects a write failure after a configured
/// number of page writes — the crash lever of the durability tests.
///
/// Reads always pass through. Every page the wrapper writes (via
/// [`PagedFile::write_page`], [`PagedFile::append_page`] or
/// [`PagedFile::grow_to`]) consumes one unit of the budget; once the budget
/// is exhausted, writes fail with an I/O error *without touching the inner
/// file*, exactly like a device that died mid-workload. Reopening the
/// directory that the inner [`DiskFile`] lives in then recovers from a real
/// crash image: everything written before the fault is on disk, nothing
/// after.
pub struct FaultInjectingFile {
    inner: Box<dyn PagedFile>,
    writes_left: Exclusive<u64>,
}

impl FaultInjectingFile {
    /// Wraps `inner`, allowing `write_budget` page writes before faulting.
    pub fn new(inner: Box<dyn PagedFile>, write_budget: u64) -> Self {
        FaultInjectingFile {
            inner,
            writes_left: Exclusive::new(LockClass::FilePages, write_budget),
        }
    }

    /// Page writes remaining before the injected fault.
    pub fn writes_remaining(&self) -> u64 {
        *self.writes_left.lock()
    }

    fn charge(&self, pages: u64) -> StorageResult<()> {
        let mut left = self.writes_left.lock();
        if *left < pages {
            *left = 0;
            return Err(StorageError::Io(std::io::Error::other(
                "injected write fault (simulated crash)",
            )));
        }
        *left -= pages;
        Ok(())
    }
}

impl PagedFile for FaultInjectingFile {
    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_page(&self, page: PageId) -> StorageResult<Page> {
        self.inner.read_page(page)
    }

    fn write_page(&self, page: PageId, data: &Page) -> StorageResult<()> {
        self.charge(1)?;
        self.inner.write_page(page, data)
    }

    fn append_page(&self, data: &Page) -> StorageResult<PageId> {
        self.charge(1)?;
        self.inner.append_page(data)
    }

    fn grow_to(&self, pages: u64) -> StorageResult<()> {
        let current = self.inner.num_pages();
        if pages > current {
            self.charge(pages - current)?;
        }
        self.inner.grow_to(pages)
    }

    fn truncate(&self, pages: u64) -> StorageResult<()> {
        self.inner.truncate(pages)
    }

    fn sync(&self) -> StorageResult<()> {
        self.inner.sync()
    }
}

/// A [`PagedFile`] wrapper charging every operation against the manager's
/// [`FaultState`] under a per-family [`SiteClass`] (`wal.*` for the WAL
/// file, `data.*` for durable data files) and recording the call into the
/// fault-surface coverage registry.
///
/// This is the site-addressable successor of [`FaultInjectingFile`]'s
/// global write budget: a [`crate::FaultPlan`] can fail the Nth read,
/// write or sync of a specific file family instead of the Nth page write
/// anywhere. The durable [`crate::StorageManager`] wraps its WAL file and
/// every on-disk data file in this type; with the state disarmed the
/// wrapper costs two relaxed atomic loads per operation.
pub struct FaultHookFile {
    inner: Box<dyn PagedFile>,
    fault: Arc<FaultState>,
    read_site: SiteClass,
    write_site: SiteClass,
    sync_site: SiteClass,
}

impl FaultHookFile {
    /// Wraps the WAL file: operations charge `wal.read` / `wal.write` /
    /// `wal.sync`.
    pub fn wal(inner: Box<dyn PagedFile>, fault: Arc<FaultState>) -> Self {
        FaultHookFile {
            inner,
            fault,
            read_site: SiteClass::WalRead,
            write_site: SiteClass::WalWrite,
            sync_site: SiteClass::WalSync,
        }
    }

    /// Wraps a durable data file: operations charge `data.read` /
    /// `data.write` / `data.sync`.
    pub fn data(inner: Box<dyn PagedFile>, fault: Arc<FaultState>) -> Self {
        FaultHookFile {
            inner,
            fault,
            read_site: SiteClass::DataRead,
            write_site: SiteClass::DataWrite,
            sync_site: SiteClass::DataSync,
        }
    }
}

impl PagedFile for FaultHookFile {
    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn read_page(&self, page: PageId) -> StorageResult<Page> {
        let _cover = fault::enter("FaultHookFile::read_page");
        self.fault.charge(self.read_site)?;
        self.inner.read_page(page)
    }

    fn write_page(&self, page: PageId, data: &Page) -> StorageResult<()> {
        let _cover = fault::enter("FaultHookFile::write_page");
        self.fault.charge(self.write_site)?;
        self.inner.write_page(page, data)
    }

    fn append_page(&self, data: &Page) -> StorageResult<PageId> {
        let _cover = fault::enter("FaultHookFile::append_page");
        self.fault.charge(self.write_site)?;
        self.inner.append_page(data)
    }

    fn grow_to(&self, pages: u64) -> StorageResult<()> {
        let _cover = fault::enter("FaultHookFile::grow_to");
        self.fault.charge(self.write_site)?;
        self.inner.grow_to(pages)
    }

    fn truncate(&self, pages: u64) -> StorageResult<()> {
        let _cover = fault::enter("FaultHookFile::truncate");
        self.fault.charge(self.write_site)?;
        self.inner.truncate(pages)
    }

    fn sync(&self) -> StorageResult<()> {
        let _cover = fault::enter("FaultHookFile::sync");
        self.fault.charge(self.sync_site)?;
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_geom::{Aabb, DatasetId, ObjectId, SpatialObject, Vec3};

    fn obj(id: u64) -> SpatialObject {
        SpatialObject::new(
            ObjectId(id),
            DatasetId(0),
            Aabb::from_min_max(Vec3::ZERO, Vec3::ONE),
        )
    }

    fn exercise_file(f: &dyn PagedFile) {
        assert_eq!(f.num_pages(), 0);
        let p0 = Page::from_objects(&[obj(1), obj(2)]).unwrap();
        let p1 = Page::from_objects(&[obj(3)]).unwrap();
        assert_eq!(f.append_page(&p0).unwrap(), PageId(0));
        assert_eq!(f.append_page(&p1).unwrap(), PageId(1));
        assert_eq!(f.num_pages(), 2);
        assert_eq!(f.read_page(PageId(0)).unwrap().objects().unwrap().len(), 2);
        assert_eq!(f.read_page(PageId(1)).unwrap().objects().unwrap().len(), 1);
        // Overwrite.
        let p2 = Page::from_objects(&[obj(9), obj(10), obj(11)]).unwrap();
        f.write_page(PageId(0), &p2).unwrap();
        assert_eq!(f.read_page(PageId(0)).unwrap().objects().unwrap().len(), 3);
        // Out of range accesses error.
        assert!(f.read_page(PageId(5)).is_err());
        assert!(f.write_page(PageId(5), &p2).is_err());
        // Growing appends zeroed pages.
        f.grow_to(5).unwrap();
        assert_eq!(f.num_pages(), 5);
        assert_eq!(f.read_page(PageId(4)).unwrap().record_count().unwrap(), 0);
        // grow_to with a smaller target is a no-op.
        f.grow_to(2).unwrap();
        assert_eq!(f.num_pages(), 5);
        // Grown pages are valid, checksummed empty pages.
        assert!(f.read_page(PageId(3)).unwrap().verify_checksum());
        // Truncation drops the tail; truncating to a larger size is a no-op.
        f.truncate(3).unwrap();
        assert_eq!(f.num_pages(), 3);
        assert!(f.read_page(PageId(3)).is_err());
        f.truncate(10).unwrap();
        assert_eq!(f.num_pages(), 3);
        f.grow_to(5).unwrap();
        assert_eq!(f.num_pages(), 5);
    }

    #[test]
    fn mem_file_behaviour() {
        let f = MemFile::new();
        exercise_file(&f);
    }

    #[test]
    fn disk_file_behaviour() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("test.pages");
        let f = DiskFile::create(&path).unwrap();
        exercise_file(&f);
        drop(f);
        // Reopen and verify persistence.
        let f = DiskFile::open(&path).unwrap();
        assert_eq!(f.num_pages(), 5);
        assert_eq!(f.read_page(PageId(0)).unwrap().objects().unwrap().len(), 3);
        assert_eq!(f.path(), path);
    }

    #[test]
    fn disk_file_open_missing_fails() {
        let dir = tempfile::tempdir().unwrap();
        assert!(DiskFile::open(dir.path().join("nope.pages")).is_err());
    }

    #[test]
    fn disk_file_open_corrupt_length_fails() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("bad.pages");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        assert!(matches!(
            DiskFile::open(&path),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn disk_grow_to_bulk_extension_is_equivalent() {
        let dir = tempfile::tempdir().unwrap();
        let f = DiskFile::create(dir.path().join("grow.pages")).unwrap();
        f.append_page(&Page::from_objects(&[obj(1)]).unwrap())
            .unwrap();
        // Grow past one chunk boundary to exercise the chunked path.
        let target = GROW_CHUNK_PAGES + 10;
        f.grow_to(target).unwrap();
        assert_eq!(f.num_pages(), target);
        assert_eq!(
            std::fs::metadata(f.path()).unwrap().len(),
            target * PAGE_SIZE as u64
        );
        assert_eq!(f.read_page(PageId(0)).unwrap().objects().unwrap().len(), 1);
        let tail = f.read_page(PageId(target - 1)).unwrap();
        assert_eq!(tail.record_count().unwrap(), 0);
        assert!(tail.verify_checksum());
        // Truncate back down and verify the physical size follows.
        f.truncate(2).unwrap();
        assert_eq!(
            std::fs::metadata(f.path()).unwrap().len(),
            2 * PAGE_SIZE as u64
        );
    }

    #[test]
    fn fault_injecting_file_fails_after_budget() {
        let f = FaultInjectingFile::new(Box::new(MemFile::new()), 3);
        let page = Page::from_objects(&[obj(1)]).unwrap();
        f.append_page(&page).unwrap();
        f.append_page(&page).unwrap();
        assert_eq!(f.writes_remaining(), 1);
        f.write_page(PageId(0), &page).unwrap();
        // Budget exhausted: writes fail, the inner file is untouched.
        assert!(f.append_page(&page).is_err());
        assert!(f.write_page(PageId(0), &page).is_err());
        assert!(f.grow_to(5).is_err());
        assert_eq!(f.num_pages(), 2);
        // Reads and truncation still work.
        assert_eq!(f.read_page(PageId(1)).unwrap().objects().unwrap().len(), 1);
        f.truncate(1).unwrap();
        assert_eq!(f.num_pages(), 1);
    }

    #[test]
    fn fault_hook_file_charges_per_family_sites() {
        use crate::fault::FaultPlan;
        let state = FaultState::from_plan(Some(FaultPlan::nth(SiteClass::DataWrite, 2)));
        let f = FaultHookFile::data(Box::new(MemFile::new()), Arc::clone(&state));
        let page = Page::from_objects(&[obj(1)]).unwrap();
        f.append_page(&page).unwrap();
        // Second write at data.write fires and latches.
        assert!(f.append_page(&page).is_err());
        assert!(f.write_page(PageId(0), &page).is_err());
        assert!(state.fired());
        // Other site families are unaffected.
        assert!(f.read_page(PageId(0)).is_ok());
        assert!(f.sync().is_ok());
        // A WAL-family wrapper over the same (latched) state also passes:
        // wal.write is a different class than the armed data.write.
        let w = FaultHookFile::wal(Box::new(MemFile::new()), state);
        assert!(w.append_page(&page).is_ok());
    }

    #[test]
    fn concurrent_appends_assign_distinct_pages() {
        let f = MemFile::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let f = &f;
                s.spawn(move || {
                    for _ in 0..100 {
                        f.append_page(&Page::empty()).unwrap();
                    }
                });
            }
        });
        assert_eq!(f.num_pages(), 400);
    }

    #[test]
    fn concurrent_reads_see_complete_pages() {
        let f = MemFile::new();
        for i in 0..20u64 {
            f.append_page(&Page::from_objects(&[obj(i), obj(i + 100)]).unwrap())
                .unwrap();
        }
        std::thread::scope(|s| {
            for _ in 0..4 {
                let f = &f;
                s.spawn(move || {
                    for i in 0..20u64 {
                        let page = f.read_page(PageId(i)).unwrap();
                        assert_eq!(page.objects().unwrap().len(), 2);
                    }
                });
            }
        });
    }
}
