//! Paged files: the unit of on-disk storage.
//!
//! A paged file is a growable array of fixed-size pages. Two backends are
//! provided: [`MemFile`] keeps pages in memory (used by tests and by the
//! deterministic cost-model benchmarks, where simulated time comes from the
//! access trace, not the medium) and [`DiskFile`] stores pages in a real file
//! through `std::fs` (used to validate that nothing depends on the in-memory
//! shortcut).

use crate::error::{StorageError, StorageResult};
use crate::page::{Page, PageId, PAGE_SIZE};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Identifier of a file managed by the [`crate::StorageManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u32);

impl FileId {
    /// Raw index of the file.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A growable array of fixed-size pages.
pub trait PagedFile: Send {
    /// Number of pages currently in the file.
    fn num_pages(&self) -> u64;

    /// Reads the page at `page`.
    fn read_page(&mut self, page: PageId) -> StorageResult<Page>;

    /// Overwrites the page at `page` (must already exist).
    fn write_page(&mut self, page: PageId, data: &Page) -> StorageResult<()>;

    /// Appends a page at the end of the file and returns its id.
    fn append_page(&mut self, data: &Page) -> StorageResult<PageId>;

    /// Ensures the file has at least `pages` pages, appending zeroed pages as
    /// needed (used when pre-allocating partition extents).
    fn grow_to(&mut self, pages: u64) -> StorageResult<()> {
        while self.num_pages() < pages {
            self.append_page(&Page::empty())?;
        }
        Ok(())
    }
}

/// In-memory paged file.
#[derive(Default)]
pub struct MemFile {
    pages: Vec<Page>,
}

impl MemFile {
    /// Creates an empty in-memory file.
    pub fn new() -> Self {
        MemFile { pages: Vec::new() }
    }

    fn check(&self, page: PageId) -> StorageResult<usize> {
        let idx = page.0 as usize;
        if idx >= self.pages.len() {
            return Err(StorageError::PageOutOfRange {
                file: u32::MAX,
                page: page.0,
                len: self.pages.len() as u64,
            });
        }
        Ok(idx)
    }
}

impl PagedFile for MemFile {
    fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    fn read_page(&mut self, page: PageId) -> StorageResult<Page> {
        let idx = self.check(page)?;
        Ok(self.pages[idx].clone())
    }

    fn write_page(&mut self, page: PageId, data: &Page) -> StorageResult<()> {
        let idx = self.check(page)?;
        self.pages[idx] = data.clone();
        Ok(())
    }

    fn append_page(&mut self, data: &Page) -> StorageResult<PageId> {
        self.pages.push(data.clone());
        Ok(PageId(self.pages.len() as u64 - 1))
    }
}

/// Paged file backed by a real file on disk.
pub struct DiskFile {
    file: File,
    path: PathBuf,
    num_pages: u64,
}

impl DiskFile {
    /// Creates (or truncates) a paged file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(DiskFile { file, path, num_pages: 0 })
    }

    /// Opens an existing paged file at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> StorageResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file {} length {len} is not a multiple of the page size",
                path.display()
            )));
        }
        Ok(DiskFile { file, path, num_pages: len / PAGE_SIZE as u64 })
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn check(&self, page: PageId) -> StorageResult<()> {
        if page.0 >= self.num_pages {
            return Err(StorageError::PageOutOfRange {
                file: u32::MAX,
                page: page.0,
                len: self.num_pages,
            });
        }
        Ok(())
    }
}

impl PagedFile for DiskFile {
    fn num_pages(&self) -> u64 {
        self.num_pages
    }

    fn read_page(&mut self, page: PageId) -> StorageResult<Page> {
        self.check(page)?;
        self.file.seek(SeekFrom::Start(page.0 * PAGE_SIZE as u64))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.read_exact(&mut buf)?;
        Ok(Page::from_bytes(buf))
    }

    fn write_page(&mut self, page: PageId, data: &Page) -> StorageResult<()> {
        self.check(page)?;
        self.file.seek(SeekFrom::Start(page.0 * PAGE_SIZE as u64))?;
        self.file.write_all(data.as_bytes())?;
        Ok(())
    }

    fn append_page(&mut self, data: &Page) -> StorageResult<PageId> {
        let id = PageId(self.num_pages);
        self.file.seek(SeekFrom::Start(self.num_pages * PAGE_SIZE as u64))?;
        self.file.write_all(data.as_bytes())?;
        self.num_pages += 1;
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_geom::{Aabb, DatasetId, ObjectId, SpatialObject, Vec3};

    fn obj(id: u64) -> SpatialObject {
        SpatialObject::new(
            ObjectId(id),
            DatasetId(0),
            Aabb::from_min_max(Vec3::ZERO, Vec3::ONE),
        )
    }

    fn exercise_file(f: &mut dyn PagedFile) {
        assert_eq!(f.num_pages(), 0);
        let p0 = Page::from_objects(&[obj(1), obj(2)]).unwrap();
        let p1 = Page::from_objects(&[obj(3)]).unwrap();
        assert_eq!(f.append_page(&p0).unwrap(), PageId(0));
        assert_eq!(f.append_page(&p1).unwrap(), PageId(1));
        assert_eq!(f.num_pages(), 2);
        assert_eq!(f.read_page(PageId(0)).unwrap().objects().unwrap().len(), 2);
        assert_eq!(f.read_page(PageId(1)).unwrap().objects().unwrap().len(), 1);
        // Overwrite.
        let p2 = Page::from_objects(&[obj(9), obj(10), obj(11)]).unwrap();
        f.write_page(PageId(0), &p2).unwrap();
        assert_eq!(f.read_page(PageId(0)).unwrap().objects().unwrap().len(), 3);
        // Out of range accesses error.
        assert!(f.read_page(PageId(5)).is_err());
        assert!(f.write_page(PageId(5), &p2).is_err());
        // Growing appends zeroed pages.
        f.grow_to(5).unwrap();
        assert_eq!(f.num_pages(), 5);
        assert_eq!(f.read_page(PageId(4)).unwrap().record_count().unwrap(), 0);
        // grow_to with a smaller target is a no-op.
        f.grow_to(2).unwrap();
        assert_eq!(f.num_pages(), 5);
    }

    #[test]
    fn mem_file_behaviour() {
        let mut f = MemFile::new();
        exercise_file(&mut f);
    }

    #[test]
    fn disk_file_behaviour() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("test.pages");
        let mut f = DiskFile::create(&path).unwrap();
        exercise_file(&mut f);
        drop(f);
        // Reopen and verify persistence.
        let mut f = DiskFile::open(&path).unwrap();
        assert_eq!(f.num_pages(), 5);
        assert_eq!(f.read_page(PageId(0)).unwrap().objects().unwrap().len(), 3);
        assert_eq!(f.path(), path);
    }

    #[test]
    fn disk_file_open_missing_fails() {
        let dir = tempfile::tempdir().unwrap();
        assert!(DiskFile::open(dir.path().join("nope.pages")).is_err());
    }

    #[test]
    fn disk_file_open_corrupt_length_fails() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("bad.pages");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        assert!(matches!(DiskFile::open(&path), Err(StorageError::Corrupt(_))));
    }
}
