//! A tiny little-endian binary codec for the durable metadata formats.
//!
//! The manifest, the WAL records and the engine snapshot need a bit-exact,
//! dependency-free serialization (the build environment has no crate
//! registry). This module provides the same style of fixed-width
//! little-endian encoding the 64-byte object records use: `f64` round-trips
//! through its raw bits, so a save/restore cycle reproduces every coordinate
//! exactly, and decoding is bounds-checked so corrupt input surfaces as
//! [`StorageError::Corrupt`] instead of a panic.

use crate::error::{StorageError, StorageResult};

/// Byte-buffer encoder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its raw bits (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends an optional `u64` (presence byte + value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
            None => self.u8(0),
        }
    }

    /// Appends a length prefix (`u32`) for a following sequence.
    pub fn len(&mut self, n: usize) {
        self.u32(n as u32);
    }

    /// Appends raw bytes (framing is the caller's concern).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.raw(s.as_bytes());
    }
}

/// Bounds-checked decoder over a byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(msg: &str) -> StorageError {
    StorageError::Corrupt(format!("decode: {msg}"))
}

impl<'a> Dec<'a> {
    /// Wraps `buf` for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// `true` when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Fails unless the input was consumed exactly.
    pub fn finish(&self) -> StorageResult<()> {
        if self.is_done() {
            Ok(())
        } else {
            Err(corrupt("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("truncated input"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> StorageResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self) -> StorageResult<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"), // analyzer: allow(take(2) yields exactly 2 bytes)
        ))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> StorageResult<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"), // analyzer: allow(take(4) yields exactly 4 bytes)
        ))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> StorageResult<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"), // analyzer: allow(take(8) yields exactly 8 bytes)
        ))
    }

    /// Reads an `f64` from its raw bits.
    pub fn f64(&mut self) -> StorageResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a boolean byte (0 or 1).
    pub fn bool(&mut self) -> StorageResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(&format!("invalid boolean byte {b}"))),
        }
    }

    /// Reads an optional `u64`.
    pub fn opt_u64(&mut self) -> StorageResult<Option<u64>> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    /// Reads a sequence length prefix, sanity-capped so corrupt input cannot
    /// trigger enormous allocations. (Not a container length — the lint's
    /// `is_empty` pairing does not apply to a decoding step.)
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> StorageResult<usize> {
        let n = self.u32()? as usize;
        // A length that could not possibly fit the remaining input is bogus
        // (every element encodes to at least one byte).
        if n > self.buf.len().saturating_sub(self.pos) {
            return Err(corrupt("sequence length exceeds remaining input"));
        }
        Ok(n)
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> StorageResult<String> {
        let n = self.len()?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| corrupt("invalid UTF-8 string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut e = Enc::new();
        e.u8(7);
        e.u16(65535);
        e.u32(123_456);
        e.u64(u64::MAX - 3);
        e.f64(-0.1);
        e.f64(f64::MIN_POSITIVE);
        e.bool(true);
        e.bool(false);
        e.opt_u64(Some(42));
        e.opt_u64(None);
        e.len(3);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 65535);
        assert_eq!(d.u32().unwrap(), 123_456);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.1f64).to_bits());
        assert_eq!(d.f64().unwrap(), f64::MIN_POSITIVE);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.opt_u64().unwrap(), Some(42));
        assert_eq!(d.opt_u64().unwrap(), None);
        assert!(d.len().is_err(), "length larger than the remaining input");
        let mut d = Dec::new(&bytes);
        assert!(d.finish().is_err());
        let _ = d.take(bytes.len()).unwrap();
        assert!(d.finish().is_ok());
    }

    #[test]
    fn truncation_and_garbage_are_errors() {
        let mut d = Dec::new(&[1, 2]);
        assert!(d.u32().is_err());
        let mut d = Dec::new(&[9]);
        assert!(d.bool().is_err());
        let mut d = Dec::new(&[255, 255, 255, 255]);
        assert!(d.len().is_err());
    }

    #[test]
    fn nan_bits_roundtrip_exactly() {
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let mut e = Enc::new();
        e.f64(weird);
        let bytes = e.into_bytes();
        assert_eq!(
            Dec::new(&bytes).f64().unwrap().to_bits(),
            0x7FF8_0000_DEAD_BEEF
        );
    }
}
