//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven.
//!
//! One shared implementation backs every on-disk integrity check of the
//! durable store: the per-page checksum in the page header, the per-record
//! checksum of the metadata write-ahead log, and the whole-file checksum of
//! the manifest. Dependency-free by necessity (the build environment has no
//! crate registry) and deliberately boring: the reference byte-at-a-time
//! table algorithm, fast enough for 4 KB pages on any hardware this runs on.

/// The 256-entry lookup table for the reflected polynomial `0xEDB88320`.
const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE, as used by gzip/zlib/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_update(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// Feeds more bytes into a running (pre-inverted) CRC state. Start from
/// `0xFFFF_FFFF`, xor with `0xFFFF_FFFF` when done; [`crc32`] does both for
/// the single-slice case, this form lets callers checksum discontiguous
/// regions (e.g. a page minus its checksum slot) without copying.
pub fn crc32_update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ CRC_TABLE[((state ^ b as u32) & 0xFF) as usize];
    }
    state
}

/// Finishes a running CRC state started at `0xFFFF_FFFF`.
#[inline]
pub fn crc32_finish(state: u32) -> u32 {
    state ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"incremental checksums must compose";
        let one_shot = crc32(data);
        let mut state = 0xFFFF_FFFF;
        for chunk in data.chunks(7) {
            state = crc32_update(state, chunk);
        }
        assert_eq!(crc32_finish(state), one_shot);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 4096];
        let clean = crc32(&data);
        for bit in [0usize, 1, 9, 4095 * 8 + 7] {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&data), clean, "bit {bit} flip went undetected");
            data[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32(&data), clean);
    }
}
