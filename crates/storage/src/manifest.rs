//! The versioned on-disk manifest of a durable store.
//!
//! The manifest is the root of recovery: a single small file holding the
//! superblock (magic, format version, checkpoint epoch), the file table
//! (every paged file's id, name and committed page count) and an opaque
//! engine payload (the checkpointed engine snapshot, encoded by
//! `odyssey-core`). It is rewritten in full at every checkpoint, atomically:
//! the new image is written to a temporary file, fsynced, and renamed over
//! the old manifest — a crash at any point leaves either the old or the new
//! manifest intact, never a mix. A whole-file CRC-32 guards against torn or
//! bit-rotted images; the rename is the commit point of a checkpoint.

use crate::codec::{Dec, Enc};
use crate::crc::crc32;
use crate::error::{StorageError, StorageResult};
use crate::fault::{self, FaultState, SiteClass};
use std::path::Path;

/// File name of the manifest inside a durable store's directory.
pub const MANIFEST_FILE_NAME: &str = "MANIFEST.som";

/// Magic bytes opening the manifest.
const MANIFEST_MAGIC: [u8; 4] = *b"SOMF";

/// Current manifest format version (2 added the file-slot count, so ids of
/// files deleted between checkpoints are never reused after a reopen).
pub const MANIFEST_VERSION: u32 = 2;

/// One entry of the manifest's file table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestFileEntry {
    /// The file's id (its index in the storage manager's file table).
    pub id: u32,
    /// The name the file was created with (also encoded in its file name).
    pub name: String,
    /// Number of pages committed at checkpoint time. Recovery treats pages
    /// beyond this count as orphans unless a WAL record extends the file.
    pub pages: u64,
}

/// The decoded manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Checkpoint epoch; the WAL whose header carries the same epoch holds
    /// the mutations that happened after this manifest was written.
    pub epoch: u64,
    /// Total file-table slots assigned at checkpoint time, deleted files'
    /// tombstones included. Recovery sizes the table from this so a file id
    /// is never reused even when its file was created *and* deleted between
    /// two checkpoints.
    pub file_slots: u64,
    /// The live files at checkpoint time, ordered by id (deleted files are
    /// simply absent — their ids are gaps below `file_slots`).
    pub files: Vec<ManifestFileEntry>,
    /// Opaque engine snapshot (encoded/decoded by the engine layer).
    pub payload: Vec<u8>,
}

impl Manifest {
    /// Serializes the manifest, CRC-32 trailer included.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.raw(&MANIFEST_MAGIC);
        e.u32(MANIFEST_VERSION);
        e.u64(self.epoch);
        e.u64(self.file_slots);
        e.len(self.files.len());
        for f in &self.files {
            e.u32(f.id);
            e.u64(f.pages);
            e.str(&f.name);
        }
        e.len(self.payload.len());
        e.raw(&self.payload);
        let mut out = e.into_bytes();
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes and validates a manifest image.
    pub fn decode(bytes: &[u8]) -> StorageResult<Manifest> {
        let _cover = fault::enter("Manifest::decode");
        let corrupt = |msg: &str| StorageError::Corrupt(format!("manifest: {msg}"));
        if bytes.len() < 4 {
            return Err(corrupt("image shorter than its checksum"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte crc")); // analyzer: allow(split_at leaves a 4-byte tail)
        if stored != crc32(body) {
            return Err(corrupt("checksum mismatch"));
        }
        let mut d = Dec::new(body);
        if d.raw(4)? != MANIFEST_MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = d.u32()?;
        if version != MANIFEST_VERSION {
            return Err(StorageError::Corrupt(format!(
                "manifest: unsupported version {version} (expected {MANIFEST_VERSION})"
            )));
        }
        let epoch = d.u64()?;
        let file_slots = d.u64()?;
        let file_count = d.len()?;
        let mut files = Vec::with_capacity(file_count);
        for _ in 0..file_count {
            files.push(ManifestFileEntry {
                id: d.u32()?,
                pages: d.u64()?,
                name: d.str()?,
            });
        }
        let payload_len = d.len()?;
        let payload = d.raw(payload_len)?.to_vec();
        d.finish()?;
        Ok(Manifest {
            epoch,
            file_slots,
            files,
            payload,
        })
    }

    /// Atomically (re)writes the manifest in `dir`: write the new image to a
    /// temporary file, fsync it, rename it over [`MANIFEST_FILE_NAME`], and
    /// fsync the directory so the rename itself survives power loss (the
    /// rename is the checkpoint's commit point — losing it after the WAL
    /// reset would lose the mutations folded into the new image). Each step
    /// charges its own fault-site class (`manifest.write` / `manifest.sync` /
    /// `manifest.rename` / `dir.sync`), so a [`crate::FaultPlan`] can place a
    /// simulated crash on either side of the commit point.
    pub fn write_atomic(&self, dir: &Path, faults: &FaultState) -> StorageResult<()> {
        let _cover = fault::enter("Manifest::write_atomic");
        let tmp = dir.join(format!("{MANIFEST_FILE_NAME}.tmp"));
        let target = dir.join(MANIFEST_FILE_NAME);
        fault::fs_write_sync(
            faults,
            SiteClass::ManifestWrite,
            SiteClass::ManifestSync,
            &tmp,
            &self.encode(),
        )?;
        fault::fs_rename(faults, SiteClass::ManifestRename, &tmp, &target)?;
        fault::fs_sync_dir(faults, SiteClass::DirSync, dir)
    }

    /// Reads the manifest from `dir`; `Ok(None)` when none exists (the
    /// directory is not — or not yet — a durable store).
    pub fn read(dir: &Path, faults: &FaultState) -> StorageResult<Option<Manifest>> {
        let _cover = fault::enter("Manifest::read");
        let path = dir.join(MANIFEST_FILE_NAME);
        match fault::fs_read(faults, SiteClass::ManifestRead, &path) {
            Ok(bytes) => Manifest::decode(&bytes).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            epoch: 7,
            file_slots: 3,
            files: vec![
                ManifestFileEntry {
                    id: 0,
                    name: "raw_ds0".into(),
                    pages: 12,
                },
                ManifestFileEntry {
                    id: 1,
                    name: "odyssey_partitions_ds0".into(),
                    pages: 30,
                },
            ],
            payload: vec![1, 2, 3, 250, 0, 9],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample();
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
        let empty = Manifest {
            epoch: 0,
            file_slots: 0,
            files: Vec::new(),
            payload: Vec::new(),
        };
        assert_eq!(Manifest::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            Manifest::decode(&bytes),
            Err(StorageError::Corrupt(_))
        ));
        assert!(Manifest::decode(&[]).is_err());
        assert!(Manifest::decode(&sample().encode()[..10]).is_err());
    }

    #[test]
    fn atomic_write_and_read() {
        let dir = tempfile::tempdir().unwrap();
        let faults = FaultState::disarmed();
        assert!(Manifest::read(dir.path(), &faults).unwrap().is_none());
        let m = sample();
        m.write_atomic(dir.path(), &faults).unwrap();
        assert_eq!(
            Manifest::read(dir.path(), &faults).unwrap(),
            Some(m.clone())
        );
        // Overwrite with a newer epoch; the temp file must not linger.
        let newer = Manifest { epoch: 8, ..m };
        newer.write_atomic(dir.path(), &faults).unwrap();
        assert_eq!(
            Manifest::read(dir.path(), &faults).unwrap().unwrap().epoch,
            8
        );
        assert!(!dir
            .path()
            .join(format!("{MANIFEST_FILE_NAME}.tmp"))
            .exists());
    }

    #[test]
    fn rename_fault_leaves_old_manifest_intact() {
        let dir = tempfile::tempdir().unwrap();
        let faults = FaultState::disarmed();
        let m = sample();
        m.write_atomic(dir.path(), &faults).unwrap();
        // Arm the commit point: the rewrite must fail *without* replacing
        // the committed image.
        faults.arm(crate::fault::FaultPlan::first(SiteClass::ManifestRename));
        let newer = Manifest {
            epoch: 8,
            ..m.clone()
        };
        assert!(newer.write_atomic(dir.path(), &faults).is_err());
        faults.disarm();
        assert_eq!(Manifest::read(dir.path(), &faults).unwrap(), Some(m));
    }
}
