//! The metadata write-ahead log.
//!
//! Adaptive metadata mutations (partition splits, merge-file operations,
//! ingest appends, query statistics) are tiny compared to the data pages they
//! describe, but they are what recovery must reconstruct exactly. The
//! [`MetaWal`] stores them as a stream of checksummed records packed into
//! 4 KB pages of a [`PagedFile`]:
//!
//! * page 0 is a header page carrying the log *epoch* — the checkpoint
//!   sequence number the log belongs to. A log whose epoch does not match
//!   the manifest's is a leftover from before the last checkpoint and is
//!   ignored wholesale (this closes the crash window between the manifest
//!   rename and the log reset);
//! * pages 1.. hold the record stream. Each record is framed as
//!   `magic ∥ length ∥ crc32(payload) ∥ payload` and the stream is packed
//!   page by page; the current partial tail page is rewritten on every
//!   append, so a record is durable the moment [`MetaWal::append`] returns;
//! * replay decodes records until the first frame that fails validation
//!   (zeroed magic, impossible length, checksum mismatch). Everything before
//!   that point is the *consistent prefix* recovery applies; the torn tail a
//!   crash may leave mid-write is discarded.
//!
//! The record payloads are opaque bytes: the engine layer defines their
//! schema (see `odyssey-core`'s durability module), the storage layer
//! guarantees atomicity and ordering.

use crate::crc::crc32;
use crate::error::{StorageError, StorageResult};
use crate::fault;
use crate::file::PagedFile;
use crate::page::{Page, PageId, PAGE_SIZE};
use crate::sync::{Exclusive, LockClass};

/// File name of the metadata WAL inside a durable store's directory.
pub const WAL_FILE_NAME: &str = "wal.sowl";

/// Magic bytes of the WAL header page.
const WAL_MAGIC: [u8; 4] = *b"SOWL";

/// On-disk format version of the WAL.
const WAL_VERSION: u32 = 1;

/// Magic word framing each record in the stream.
const RECORD_MAGIC: u32 = 0x57A1_5EC5;

/// Frame overhead per record: magic + length + checksum.
const FRAME_HEADER: usize = 12;

/// Hard cap on a single record's payload (a malformed length field must not
/// make replay allocate gigabytes).
const MAX_RECORD_LEN: u32 = 64 * 1024 * 1024;

/// What [`MetaWal::open`] found in an existing log.
pub struct WalRecovery {
    /// The epoch recorded in the log's header page.
    pub epoch: u64,
    /// The payloads of every valid record, in append order.
    pub records: Vec<Vec<u8>>,
    /// `true` if the stream ended in a torn or corrupt frame (a crash
    /// mid-append); the records before it are still valid.
    pub torn_tail: bool,
}

struct WalState {
    /// Bytes of the record stream written so far (excluding the header page).
    len: u64,
    /// Contents of the current partial tail page.
    tail: Box<[u8]>,
    /// Set when an append failed partway: the on-disk stream may end in a
    /// torn frame, so later appends — which replay would discard along with
    /// the torn frame — must not pretend to be durable.
    poisoned: bool,
}

/// Append-only, checksummed metadata log over a [`PagedFile`].
pub struct MetaWal {
    file: Box<dyn PagedFile>,
    epoch: u64,
    wal_state: Exclusive<WalState>,
}

fn header_page(epoch: u64) -> Page {
    let mut page = Page::from_bytes(vec![0u8; PAGE_SIZE]);
    let bytes = page.as_bytes_mut();
    bytes[..4].copy_from_slice(&WAL_MAGIC);
    bytes[4..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
    bytes[8..16].copy_from_slice(&epoch.to_le_bytes());
    let crc = crc32(&bytes[..16]);
    bytes[16..20].copy_from_slice(&crc.to_le_bytes());
    page
}

fn parse_header(page: &Page) -> Option<u64> {
    let bytes = page.as_bytes();
    if bytes[..4] != WAL_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("version slice")); // analyzer: allow(header length checked above)
    if version != WAL_VERSION {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[16..20].try_into().expect("crc slice")); // analyzer: allow(header length checked above)
    if crc != crc32(&bytes[..16]) {
        return None;
    }
    Some(u64::from_le_bytes(
        bytes[8..16].try_into().expect("epoch slice"), // analyzer: allow(header length checked above)
    ))
}

impl MetaWal {
    /// Creates (or resets) a log on `file` for the given epoch: the file is
    /// truncated and a fresh header page is written.
    pub fn create(file: Box<dyn PagedFile>, epoch: u64) -> StorageResult<Self> {
        let _cover = fault::enter("MetaWal::create");
        let wal = MetaWal {
            file,
            epoch,
            wal_state: Exclusive::new(
                LockClass::WalState,
                WalState {
                    len: 0,
                    tail: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                    poisoned: false,
                },
            ),
        };
        wal.reset_file(epoch)?;
        Ok(wal)
    }

    /// Opens an existing log, replaying its valid record prefix. A file
    /// without a readable header (torn reset, empty file) comes back as an
    /// empty log at epoch `fallback_epoch`.
    pub fn open(
        file: Box<dyn PagedFile>,
        fallback_epoch: u64,
    ) -> StorageResult<(Self, WalRecovery)> {
        let _cover = fault::enter("MetaWal::open");
        let header_epoch = if file.num_pages() > 0 {
            parse_header(&file.read_page(PageId(0))?)
        } else {
            None
        };
        let Some(epoch) = header_epoch else {
            let wal = MetaWal::create(file, fallback_epoch)?;
            return Ok((
                wal,
                WalRecovery {
                    epoch: fallback_epoch,
                    records: Vec::new(),
                    torn_tail: false,
                },
            ));
        };

        // Pull in the full record stream.
        let data_pages = file.num_pages() - 1;
        let mut stream = Vec::with_capacity((data_pages as usize) * PAGE_SIZE);
        for p in 0..data_pages {
            stream.extend_from_slice(file.read_page(PageId(p + 1))?.as_bytes());
        }

        // Decode records until the first invalid frame.
        let mut records = Vec::new();
        let mut offset = 0usize;
        let mut torn_tail = false;
        loop {
            if offset + FRAME_HEADER > stream.len() {
                // Leftover bytes smaller than a frame header: torn only if
                // any of them is non-zero.
                torn_tail = stream[offset..].iter().any(|&b| b != 0);
                break;
            }
            let magic = u32::from_le_bytes(stream[offset..offset + 4].try_into().expect("magic")); // analyzer: allow(frame bounds checked by the loop condition)
            if magic == 0 {
                break; // clean end of stream
            }
            if magic != RECORD_MAGIC {
                torn_tail = true;
                break;
            }
            let len =
                u32::from_le_bytes(stream[offset + 4..offset + 8].try_into().expect("length")); // analyzer: allow(frame bounds checked by the loop condition)
            let crc = u32::from_le_bytes(stream[offset + 8..offset + 12].try_into().expect("crc")); // analyzer: allow(frame bounds checked by the loop condition)
            let end = offset + FRAME_HEADER + len as usize;
            if len > MAX_RECORD_LEN || end > stream.len() {
                torn_tail = true;
                break;
            }
            let payload = &stream[offset + FRAME_HEADER..end];
            if crc32(payload) != crc {
                torn_tail = true;
                break;
            }
            records.push(payload.to_vec());
            offset = end;
        }

        // Position the appender right after the last valid record.
        let len = offset as u64;
        let mut tail = vec![0u8; PAGE_SIZE].into_boxed_slice();
        let tail_bytes = (len % PAGE_SIZE as u64) as usize;
        if tail_bytes > 0 {
            let page_start = (len as usize) - tail_bytes;
            tail[..tail_bytes].copy_from_slice(&stream[page_start..page_start + tail_bytes]);
        }
        // Drop any pages past the append point so later appends and the
        // replayed state agree on the file's shape.
        let keep_pages = 1 + len.div_ceil(PAGE_SIZE as u64);
        file.truncate(keep_pages)?;

        let wal = MetaWal {
            file,
            epoch,
            wal_state: Exclusive::new(
                LockClass::WalState,
                WalState {
                    len,
                    tail,
                    poisoned: false,
                },
            ),
        };
        Ok((
            wal,
            WalRecovery {
                epoch,
                records,
                torn_tail,
            },
        ))
    }

    /// The epoch the log currently belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bytes of record stream appended since the last reset.
    pub fn len_bytes(&self) -> u64 {
        self.wal_state.lock().len
    }

    /// Number of pages the log occupies on disk (header included).
    pub fn pages(&self) -> u64 {
        self.file.num_pages()
    }

    /// Appends one record; when this returns, the record (and everything
    /// before it) is on the device.
    ///
    /// A failed append **poisons** the log: the stream may now end in a torn
    /// frame, and replay discards everything from the first torn frame on —
    /// so a later append claiming success would be a lie. Every append after
    /// a failure returns an error until the next [`MetaWal::reset`].
    pub fn append(&self, payload: &[u8]) -> StorageResult<()> {
        let _cover = fault::enter("MetaWal::append");
        if payload.len() as u64 > MAX_RECORD_LEN as u64 {
            return Err(StorageError::Corrupt(format!(
                "WAL record of {} bytes exceeds the {} byte cap",
                payload.len(),
                MAX_RECORD_LEN
            )));
        }
        let mut state = self.wal_state.lock();
        if state.poisoned {
            return Err(StorageError::Corrupt(
                "WAL poisoned by an earlier failed append; recover by reopening".into(),
            ));
        }
        let result = self.append_locked(&mut state, payload);
        if result.is_err() {
            state.poisoned = true;
        }
        result
    }

    fn append_locked(&self, state: &mut WalState, payload: &[u8]) -> StorageResult<()> {
        let _cover = fault::enter("MetaWal::append_locked");
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);

        let mut written = 0usize;
        while written < frame.len() {
            let tail_bytes = (state.len % PAGE_SIZE as u64) as usize;
            let take = (PAGE_SIZE - tail_bytes).min(frame.len() - written);
            state.tail[tail_bytes..tail_bytes + take]
                .copy_from_slice(&frame[written..written + take]);
            if tail_bytes + take == PAGE_SIZE {
                // The tail page filled up: persist it and start a fresh one.
                self.persist_tail(state)?;
                state.tail.fill(0);
            }
            state.len += take as u64;
            written += take;
        }
        if !state.len.is_multiple_of(PAGE_SIZE as u64) {
            // Persist the partial tail so the record is durable now.
            self.persist_tail(state)?;
        }
        // Flush to the device: when append returns, the record survives
        // power loss, not just a process crash.
        self.file.sync()
    }

    /// Writes the current tail page at its slot (page-granular durability).
    fn persist_tail(&self, state: &WalState) -> StorageResult<()> {
        let _cover = fault::enter("MetaWal::persist_tail");
        let page_index = 1 + state.len / PAGE_SIZE as u64;
        let page = Page::from_bytes(state.tail.to_vec());
        if page_index < self.file.num_pages() {
            self.file.write_page(PageId(page_index), &page)
        } else {
            debug_assert_eq!(page_index, self.file.num_pages());
            self.file.append_page(&page).map(|_| ())
        }
    }

    /// Resets the log for a new epoch (called right after a checkpoint's
    /// manifest has been committed): all records are discarded and the
    /// header is rewritten.
    pub fn reset(&mut self, epoch: u64) -> StorageResult<()> {
        let _cover = fault::enter("MetaWal::reset");
        self.reset_file(epoch)?;
        self.epoch = epoch;
        let mut state = self.wal_state.lock();
        state.len = 0;
        state.tail.fill(0);
        state.poisoned = false;
        Ok(())
    }

    fn reset_file(&self, epoch: u64) -> StorageResult<()> {
        let _cover = fault::enter("MetaWal::reset_file");
        // Invalidate the old header *before* truncating, and sync before
        // writing the new one: without the intermediate sync the device
        // could persist the new-epoch header while the old record stream
        // survives, and recovery would replay records the manifest already
        // contains. With it, a crash anywhere in the reset leaves either the
        // old log (manifest epoch has moved on → ignored) or an unreadable
        // one (→ treated as empty) — never a new header over stale records.
        if self.file.num_pages() > 0 {
            self.file
                .write_page(PageId(0), &Page::from_bytes(vec![0u8; PAGE_SIZE]))?;
        }
        self.file.truncate(1)?;
        self.file.sync()?;
        if self.file.num_pages() == 0 {
            self.file.append_page(&header_page(epoch))?;
        } else {
            self.file.write_page(PageId(0), &header_page(epoch))?;
        }
        self.file.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::{DiskFile, FaultInjectingFile, MemFile};

    fn mem_wal(epoch: u64) -> MetaWal {
        MetaWal::create(Box::new(MemFile::new()), epoch).unwrap()
    }

    #[test]
    fn append_and_replay_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join(WAL_FILE_NAME);
        let wal = MetaWal::create(Box::new(DiskFile::create(&path).unwrap()), 3).unwrap();
        let records: Vec<Vec<u8>> = (0..40u32)
            .map(|i| {
                // Mix small and page-spanning records.
                let len = if i % 7 == 0 { 9000 } else { 30 + i as usize };
                vec![(i % 251) as u8; len]
            })
            .collect();
        for r in &records {
            wal.append(r).unwrap();
        }
        assert!(wal.len_bytes() > 0);
        drop(wal);

        let (wal, rec) = MetaWal::open(Box::new(DiskFile::open(&path).unwrap()), 0).unwrap();
        assert_eq!(rec.epoch, 3);
        assert!(!rec.torn_tail);
        assert_eq!(rec.records, records);
        // Appending after recovery continues the stream.
        wal.append(b"after-reopen").unwrap();
        drop(wal);
        let (_, rec) = MetaWal::open(Box::new(DiskFile::open(&path).unwrap()), 0).unwrap();
        assert_eq!(rec.records.len(), records.len() + 1);
        assert_eq!(rec.records.last().unwrap(), b"after-reopen");
    }

    #[test]
    fn truncated_log_replays_a_consistent_prefix() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join(WAL_FILE_NAME);
        let wal = MetaWal::create(Box::new(DiskFile::create(&path).unwrap()), 1).unwrap();
        for i in 0..100u32 {
            wal.append(&i.to_le_bytes().repeat(40)).unwrap();
        }
        let full_pages = wal.pages();
        drop(wal);

        let mut last_count = usize::MAX;
        for keep in (1..full_pages).rev() {
            let f = DiskFile::open(&path).unwrap();
            f.truncate(keep).unwrap();
            drop(f);
            let (_, rec) = MetaWal::open(Box::new(DiskFile::open(&path).unwrap()), 0).unwrap();
            assert!(rec.records.len() <= last_count, "prefix must shrink");
            last_count = rec.records.len();
            for (i, r) in rec.records.iter().enumerate() {
                assert_eq!(
                    r,
                    &(i as u32).to_le_bytes().repeat(40),
                    "record {i} corrupt"
                );
            }
        }
    }

    #[test]
    fn corrupt_tail_is_detected_and_discarded() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join(WAL_FILE_NAME);
        let wal = MetaWal::create(Box::new(DiskFile::create(&path).unwrap()), 1).unwrap();
        wal.append(b"good-record-one").unwrap();
        wal.append(b"good-record-two").unwrap();
        drop(wal);
        // Flip a byte inside the second record's payload: the stream starts
        // at page 1; record one occupies 12 + 15 = 27 bytes, so record two's
        // payload covers stream bytes 39..54.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[PAGE_SIZE + 45] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        let (_, rec) = MetaWal::open(Box::new(DiskFile::open(&path).unwrap()), 0).unwrap();
        assert_eq!(rec.records, vec![b"good-record-one".to_vec()]);
        assert!(rec.torn_tail);
    }

    #[test]
    fn reset_discards_records_and_advances_epoch() {
        let mut wal = mem_wal(5);
        wal.append(b"pre-checkpoint").unwrap();
        wal.reset(6).unwrap();
        assert_eq!(wal.epoch(), 6);
        assert_eq!(wal.len_bytes(), 0);
        wal.append(b"post-checkpoint").unwrap();
        assert!(wal.len_bytes() > 0);
    }

    #[test]
    fn unreadable_header_falls_back_to_fresh_log() {
        let file = MemFile::new();
        file.append_page(&Page::from_bytes(vec![0xAB; PAGE_SIZE]))
            .unwrap();
        let (wal, rec) = MetaWal::open(Box::new(file), 9).unwrap();
        assert_eq!(rec.epoch, 9);
        assert!(rec.records.is_empty());
        assert_eq!(wal.epoch(), 9);
    }

    #[test]
    fn fault_injected_append_fails_cleanly() {
        // Header costs one write; then each small append rewrites one tail
        // page. Budget 3 = header + two appends.
        let file = FaultInjectingFile::new(Box::new(MemFile::new()), 3);
        let mut wal = MetaWal::create(Box::new(file), 0).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        assert!(wal.append(b"three").is_err());
        // The failed append poisons the log: the stream may end in a torn
        // frame, so later appends must not claim durability — even ones the
        // device would now accept.
        assert!(wal.append(b"four").is_err());
        // A reset (checkpoint) clears the poison. The MemFile fault budget
        // is exhausted, so the reset itself fails here — which is fine, the
        // point is that it is the only recovery path.
        assert!(wal.reset(1).is_err());
    }
}
