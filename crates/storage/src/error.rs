//! Error type shared by the storage layer.

use std::fmt;
use std::io;

/// Result alias used throughout the storage layer.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors produced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An I/O error from the on-disk backend.
    Io(io::Error),
    /// A page index beyond the end of the file was requested.
    PageOutOfRange {
        /// File the access targeted.
        file: u32,
        /// Requested page index.
        page: u64,
        /// Number of pages in the file.
        len: u64,
    },
    /// A page held more object records than fit the fixed layout.
    PageOverflow {
        /// Number of records that were attempted to be stored.
        requested: usize,
        /// Maximum records per page.
        capacity: usize,
    },
    /// The referenced file does not exist (e.g. already dropped).
    UnknownFile(u32),
    /// A page's on-disk bytes failed validation while decoding.
    Corrupt(String),
    /// A page read from the device failed its header CRC-32 check: the bytes
    /// on the medium are not the bytes that were written.
    CorruptPage {
        /// File the page belongs to.
        file: u32,
        /// Index of the corrupt page.
        page: u64,
    },
    /// An ingest batch was rejected before any of it was applied (e.g. an
    /// object tagged with a different dataset than the batch's target).
    InvalidIngest(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::PageOutOfRange { file, page, len } => {
                write!(f, "page {page} out of range for file {file} of {len} pages")
            }
            StorageError::PageOverflow {
                requested,
                capacity,
            } => {
                write!(
                    f,
                    "page overflow: {requested} records requested, capacity {capacity}"
                )
            }
            StorageError::UnknownFile(id) => write!(f, "unknown file id {id}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt page: {msg}"),
            StorageError::CorruptPage { file, page } => {
                write!(f, "checksum mismatch on page {page} of file {file}")
            }
            StorageError::InvalidIngest(msg) => write!(f, "invalid ingest: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::PageOutOfRange {
            file: 1,
            page: 9,
            len: 3,
        };
        assert!(format!("{e}").contains("page 9 out of range"));
        let e = StorageError::PageOverflow {
            requested: 100,
            capacity: 63,
        };
        assert!(format!("{e}").contains("overflow"));
        let e = StorageError::UnknownFile(7);
        assert!(format!("{e}").contains("7"));
        let e = StorageError::Corrupt("bad header".into());
        assert!(format!("{e}").contains("bad header"));
        let e = StorageError::CorruptPage { file: 2, page: 17 };
        assert!(format!("{e}").contains("page 17 of file 2"));
        let e = StorageError::InvalidIngest("dataset mismatch".into());
        assert!(format!("{e}").contains("dataset mismatch"));
        let e: StorageError = io::Error::other("boom").into();
        assert!(format!("{e}").contains("boom"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e: StorageError = io::Error::other("boom").into();
        assert!(e.source().is_some());
        let e2 = StorageError::UnknownFile(0);
        assert!(e2.source().is_none());
    }
}
