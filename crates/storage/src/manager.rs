//! The storage manager: the façade every index implementation talks to.
//!
//! A [`StorageManager`] owns a set of paged files, a buffer pool, the I/O
//! counters and the cost model. Indexes create files, append or rewrite
//! object pages and read page ranges; the manager classifies each device
//! access as sequential or random (the property the paper's evaluation hinges
//! on) and keeps the running [`IoStats`].
//!
//! # Concurrency
//!
//! Every operation takes `&self`: a single manager is shared by reference
//! across all query threads. Internally,
//!
//! * the file table is an `RwLock<Vec<Arc<…>>>` — reads of *different* files
//!   (and, for the in-memory backend, of different pages of the same file)
//!   proceed fully in parallel; creating a file takes the write lock briefly;
//! * the buffer pool is sharded (see [`BufferPool`]);
//! * the I/O counters are atomics ([`crate::stats::AtomicIoStats`]);
//! * the sequential/random access classifier keeps the last-touched page in
//!   one atomic word. Under concurrency the classification is a best-effort
//!   approximation (two interleaved sequential scans can classify each
//!   other's accesses as random — exactly as interleaved streams would behave
//!   on a real spinning disk). Single-threaded runs classify identically to
//!   the pre-concurrency implementation, which the deterministic cost-model
//!   tests rely on.
//!
//! Page-level reads and writes are atomic; runs of pages belonging to one
//! partition are kept consistent by the per-dataset locks in `odyssey-core`.

use crate::buffer::BufferPool;
use crate::cost::CostModel;
use crate::error::{StorageError, StorageResult};
use crate::fault::{self, FaultPlan, FaultState, SiteClass};
use crate::file::{DiskFile, FaultHookFile, FaultInjectingFile, FileId, MemFile, PagedFile};
use crate::manifest::{Manifest, ManifestFileEntry, MANIFEST_FILE_NAME};
use crate::page::{pack_objects, Page, PageId};
use crate::stats::{AtomicIoStats, IoStats};
use crate::sync::{Exclusive, LockClass, Shared};
use crate::wal::{MetaWal, WAL_FILE_NAME};
use odyssey_geom::SpatialObject;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where pages physically live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageBackend {
    /// Pages are kept in memory; timing comes from the cost model only.
    /// This is the default for experiments: it makes runs deterministic and
    /// independent of the host's disk and page cache.
    Memory,
    /// Pages are stored in real files inside the given directory.
    Disk(PathBuf),
}

/// Durability settings of a [`StorageManager`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// Enables the manifest + metadata-WAL machinery. Requires the
    /// [`StorageBackend::Disk`] backend; construct through
    /// [`StorageManager::create`] (fresh store) or [`StorageManager::open`]
    /// (recover an existing one).
    pub durable: bool,
    /// Testing knob: the WAL's backing file fails (simulating a crash) after
    /// this many page writes, via a [`FaultInjectingFile`] wrapper. `None`
    /// disables fault injection.
    pub wal_write_limit: Option<u64>,
    /// Testing knob: a site-addressable fault plan — fail the Nth operation
    /// at a named [`SiteClass`] (`wal.sync`, `manifest.rename`, `dir.sync`,
    /// …), then keep failing, like a device that died. `None` disarms. The
    /// plan can also be (re)armed mid-run through
    /// [`StorageManager::faults`].
    pub fault: Option<FaultPlan>,
}

/// Configuration of a [`StorageManager`].
#[derive(Debug, Clone)]
pub struct StorageOptions {
    /// Physical backend.
    pub backend: StorageBackend,
    /// Buffer-pool capacity in pages (the memory budget of the paper:
    /// 1 GB ⇒ 262 144 pages of 4 KB). Zero disables caching.
    pub buffer_pages: usize,
    /// Cost model used to convert I/O counters into simulated seconds.
    pub cost_model: CostModel,
    /// Durability (manifest + WAL) settings.
    pub durability: DurabilityOptions,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            backend: StorageBackend::Memory,
            // Default scaled-down memory budget: 16 MiB of 4 KiB pages. The
            // experiment harness overrides this per run.
            buffer_pages: 4096,
            cost_model: CostModel::default(),
            durability: DurabilityOptions::default(),
        }
    }
}

impl StorageOptions {
    /// In-memory backend with the given buffer budget (pages).
    pub fn in_memory(buffer_pages: usize) -> Self {
        StorageOptions {
            backend: StorageBackend::Memory,
            buffer_pages,
            ..Default::default()
        }
    }

    /// On-disk backend rooted at `dir` with the given buffer budget (pages).
    pub fn on_disk<P: Into<PathBuf>>(dir: P, buffer_pages: usize) -> Self {
        StorageOptions {
            backend: StorageBackend::Disk(dir.into()),
            buffer_pages,
            ..Default::default()
        }
    }

    /// On-disk backend rooted at `dir` with the manifest + WAL machinery
    /// enabled. Pass to [`StorageManager::create`] (format a fresh store) or
    /// [`StorageManager::open`] (recover an existing one).
    pub fn durable<P: Into<PathBuf>>(dir: P, buffer_pages: usize) -> Self {
        StorageOptions {
            backend: StorageBackend::Disk(dir.into()),
            buffer_pages,
            durability: DurabilityOptions {
                durable: true,
                wal_write_limit: None,
                fault: None,
            },
            ..Default::default()
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Sets the WAL fault-injection budget (testing; see
    /// [`DurabilityOptions::wal_write_limit`]).
    pub fn with_wal_write_limit(mut self, limit: u64) -> Self {
        self.durability.wal_write_limit = Some(limit);
        self
    }

    /// Arms a site-addressable fault plan (testing; see
    /// [`DurabilityOptions::fault`]).
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.durability.fault = Some(plan);
        self
    }
}

/// What [`StorageManager::open`] recovered from a durable store's directory:
/// the checkpointed engine payload plus the WAL suffix the engine layer must
/// replay over it.
#[derive(Debug)]
pub struct RecoveredState {
    /// The engine snapshot stored in the manifest (opaque to storage).
    pub payload: Vec<u8>,
    /// Committed page count per file at checkpoint time, indexed by
    /// [`FileId`]. Files created after the checkpoint (present on disk but
    /// absent from the manifest) report 0 committed pages; only WAL records
    /// can extend them.
    pub file_pages: Vec<u64>,
    /// Files the manifest committed as live but that are missing on disk.
    /// The only legitimate cause is a deletion that happened after the
    /// checkpoint (the deletion's WAL record is durable *before* the unlink,
    /// so it is guaranteed to be in [`RecoveredState::wal_records`]); the
    /// engine layer verifies each one is deleted by the replayed records and
    /// treats anything else as corruption.
    pub missing_files: Vec<FileId>,
    /// The valid record prefix of the metadata WAL, in append order.
    pub wal_records: Vec<Vec<u8>>,
    /// `true` if the WAL ended in a torn record (crash mid-append); the
    /// records in [`RecoveredState::wal_records`] are still a consistent
    /// prefix.
    pub wal_truncated: bool,
}

/// Space accounting of one live paged file: its current size and how many of
/// those pages no metadata references anymore (orphaned by an append-only
/// rewrite, a refinement that laid its children elsewhere, …). The index
/// layer reports dead pages through [`StorageManager::note_dead_pages`]; the
/// compactor reads the ratio to decide when a copy-forward rewrite pays off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileSpaceStats {
    /// Pages the file currently occupies.
    pub pages: u64,
    /// Pages no longer referenced by any live metadata.
    pub dead_pages: u64,
}

impl FileSpaceStats {
    /// Pages still referenced (`pages - dead_pages`, saturating).
    #[inline]
    pub fn live_pages(&self) -> u64 {
        self.pages.saturating_sub(self.dead_pages)
    }

    /// Fraction of the file that is dead space (0.0 for an empty file).
    #[inline]
    pub fn dead_ratio(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.dead_pages as f64 / self.pages as f64
        }
    }
}

/// One registered file: its display name, the backend handle, and the
/// dead-page counter of the space accounting.
struct FileEntry {
    name: String,
    file: Box<dyn PagedFile>,
    dead_pages: AtomicU64,
}

/// On-disk path of a paged file: the `NNNN_` prefix *is* the file id, which
/// is how `open`'s directory scan recovers the table. The single source of
/// the naming format — `create_file`, `delete_file` and the scan must agree,
/// or a drifted unlink would silently leak the file (deletion swallows
/// `NotFound` for crash redo) and the next open would resurrect it.
fn paged_file_path(dir: &Path, id: FileId, name: &str) -> PathBuf {
    dir.join(format!("{:04}_{name}.pages", id.0))
}

/// Packed (file, page) cursor used by the sequential/random classifier.
///
/// Layout: bits 40.. hold `file id + 1` (so the zero word means "no previous
/// access"), bits 0..40 hold the page index truncated to 40 bits — files of
/// up to a trillion pages classify exactly; beyond that, a wrap-around can at
/// worst misclassify one access.
#[inline]
fn pack_cursor(file: FileId, page: u64) -> u64 {
    ((file.0 as u64 + 1) << 40) | (page & ((1 << 40) - 1))
}

/// Owns files, buffer pool, statistics and the cost model.
pub struct StorageManager {
    options: StorageOptions,
    /// File table indexed by [`FileId`]. A `None` slot is a tombstone left by
    /// [`StorageManager::delete_file`]: ids are **never reused**, so a stale
    /// cached frame or metadata handle can never alias a newer file.
    files: Shared<Vec<Option<Arc<FileEntry>>>>,
    buffer: BufferPool,
    stats: AtomicIoStats,
    last_read: AtomicU64,
    last_write: AtomicU64,
    /// Metadata WAL of a durable store (`None` for plain managers). The
    /// mutex serializes appends and checkpoint resets.
    wal: Option<Exclusive<MetaWal>>,
    /// Site-addressable fault-injection state. Disarmed (two relaxed atomic
    /// loads per charged operation) unless a [`FaultPlan`] is configured or
    /// armed mid-run; shared with every [`FaultHookFile`] wrapper this
    /// manager creates.
    faults: Arc<FaultState>,
}

impl std::fmt::Debug for StorageManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageManager")
            .field("files", &self.file_count())
            .field("stats", &self.stats())
            .field("buffer", &self.buffer)
            .finish()
    }
}

impl StorageManager {
    /// Creates a manager with the given options.
    ///
    /// # Panics
    /// Panics when the options request durability: a durable store is
    /// explicitly *created* ([`StorageManager::create`]) or *opened*
    /// ([`StorageManager::open`]) so that formatting an existing store can
    /// never happen by accident.
    pub fn new(options: StorageOptions) -> Self {
        assert!(
            !options.durability.durable,
            "durable stores are created with StorageManager::create or \
             opened with StorageManager::open"
        );
        let faults = FaultState::from_plan(options.durability.fault);
        Self::with_wal(options, None, faults)
    }

    fn with_wal(options: StorageOptions, wal: Option<MetaWal>, faults: Arc<FaultState>) -> Self {
        let buffer = BufferPool::new(options.buffer_pages);
        StorageManager {
            options,
            files: Shared::new(LockClass::StorageFiles, Vec::new()),
            buffer,
            stats: AtomicIoStats::default(),
            last_read: AtomicU64::new(0),
            last_write: AtomicU64::new(0),
            wal: wal.map(|w| Exclusive::new(LockClass::Wal, w)),
            faults,
        }
    }

    /// The fault-injection state: tests arm a [`FaultPlan`] mid-run
    /// (`manager.faults().arm(plan)`), and check whether it fired.
    pub fn faults(&self) -> &Arc<FaultState> {
        &self.faults
    }

    /// Convenience constructor: in-memory backend with the default options.
    pub fn in_memory() -> Self {
        StorageManager::new(StorageOptions::default())
    }

    /// The directory of a durable store (the options must have the disk
    /// backend and durability enabled).
    fn durable_dir(options: &StorageOptions) -> StorageResult<&Path> {
        let _cover = fault::enter("StorageManager::durable_dir");
        if !options.durability.durable {
            return Err(StorageError::Corrupt(
                "storage options do not enable durability".into(),
            ));
        }
        match &options.backend {
            StorageBackend::Disk(dir) => Ok(dir),
            StorageBackend::Memory => Err(StorageError::Corrupt(
                "a durable store requires the disk backend".into(),
            )),
        }
    }

    /// Opens (or creates) the WAL's backing file, applying the legacy
    /// write-budget wrapper when configured and then the site-addressable
    /// [`FaultHookFile`] (always — disarmed it only costs atomic loads, and
    /// it is what routes `wal.*` site charges and coverage recording).
    fn wal_file(
        options: &StorageOptions,
        dir: &Path,
        fresh: bool,
        faults: &Arc<FaultState>,
    ) -> StorageResult<Box<dyn PagedFile>> {
        let _cover = fault::enter("StorageManager::wal_file");
        let path = dir.join(WAL_FILE_NAME);
        let file: Box<dyn PagedFile> = if fresh || !path.exists() {
            Box::new(DiskFile::create(&path)?)
        } else {
            Box::new(DiskFile::open(&path)?)
        };
        let file = match options.durability.wal_write_limit {
            Some(limit) => Box::new(FaultInjectingFile::new(file, limit)),
            None => file,
        };
        Ok(Box::new(FaultHookFile::wal(file, Arc::clone(faults))))
    }

    /// Formats a **fresh** durable store in the options' directory: existing
    /// paged files, manifest and WAL in that directory are removed, and an
    /// empty WAL at epoch 0 is created. The store only becomes openable once
    /// the first checkpoint writes a manifest (the engine's durable
    /// constructor does this).
    pub fn create(options: StorageOptions) -> StorageResult<Self> {
        let _cover = fault::enter("StorageManager::create");
        let faults = FaultState::from_plan(options.durability.fault);
        let dir = Self::durable_dir(&options)?.to_path_buf();
        std::fs::create_dir_all(&dir)?;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.ends_with(".pages")
                || name == MANIFEST_FILE_NAME
                || name == format!("{MANIFEST_FILE_NAME}.tmp")
                || name == WAL_FILE_NAME
            {
                std::fs::remove_file(entry.path())?;
            }
        }
        let wal = MetaWal::create(Self::wal_file(&options, &dir, true, &faults)?, 0)?;
        Ok(Self::with_wal(options, Some(wal), faults))
    }

    /// Opens an existing durable store: reads and validates the manifest,
    /// reopens every paged file listed in the directory, and replays the
    /// metadata WAL's valid prefix. The storage layer hands the recovered
    /// payload and records to the engine layer (`SpaceOdyssey::open`), which
    /// applies them and truncates orphaned file tails.
    pub fn open(options: StorageOptions) -> StorageResult<(Self, RecoveredState)> {
        let _cover = fault::enter("StorageManager::open");
        let faults = FaultState::from_plan(options.durability.fault);
        let dir = Self::durable_dir(&options)?.to_path_buf();
        let manifest = Manifest::read(&dir, &faults)?.ok_or_else(|| {
            StorageError::Corrupt(format!(
                "{} is not a durable store (no {MANIFEST_FILE_NAME})",
                dir.display()
            ))
        })?;

        // Rebuild the file table from the directory: every data file encodes
        // `id_name.pages` in its file name, so files created after the last
        // checkpoint are found too.
        let mut found: Vec<(u32, String, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let file_name = entry.file_name();
            let file_name = file_name.to_string_lossy().into_owned();
            let Some(stem) = file_name.strip_suffix(".pages") else {
                continue;
            };
            let Some((id_part, name)) = stem.split_once('_') else {
                return Err(StorageError::Corrupt(format!(
                    "unrecognized paged file {file_name} in store directory"
                )));
            };
            let id: u32 = id_part
                .parse()
                .map_err(|_| StorageError::Corrupt(format!("bad file id prefix in {file_name}")))?;
            found.push((id, name.to_string(), entry.path()));
        }
        found.sort_by_key(|(id, _, _)| *id);
        // The table spans every id ever assigned: ids found on disk, ids the
        // manifest committed, and the manifest's recorded slot count (which
        // covers files created *and* deleted between two checkpoints, so
        // their ids are never handed out again). A gap is a tombstone left
        // by `delete_file`, not corruption.
        let slots = found
            .iter()
            .map(|(id, _, _)| *id as usize + 1)
            .chain(manifest.files.iter().map(|f| f.id as usize + 1))
            .chain(std::iter::once(manifest.file_slots as usize))
            .max()
            .unwrap_or(0);
        // A manifest-committed file missing on disk was deleted after the
        // checkpoint; the deletion's WAL record preceded the unlink, so the
        // engine layer verifies it during replay. With no same-epoch WAL to
        // replay there is no record that could justify the hole — corrupt.
        let mut missing_files: Vec<FileId> = Vec::new();
        for entry in &manifest.files {
            if !found
                .iter()
                .any(|(id, name, _)| *id == entry.id && *name == entry.name)
            {
                missing_files.push(FileId(entry.id));
            }
        }

        let mut entries: Vec<Option<Arc<FileEntry>>> = (0..slots).map(|_| None).collect();
        for (id, name, path) in &found {
            let file = Box::new(DiskFile::open(path)?);
            entries[*id as usize] = Some(Arc::new(FileEntry {
                name: name.clone(),
                file: Box::new(FaultHookFile::data(file, Arc::clone(&faults))),
                dead_pages: AtomicU64::new(0),
            }));
        }

        let (wal, recovery) = MetaWal::open(
            Self::wal_file(&options, &dir, false, &faults)?,
            manifest.epoch,
        )?;
        // A WAL from a different epoch predates (or post-dates a torn reset
        // of) the manifest: its records are already folded into the
        // checkpoint image and must not be replayed again.
        let (wal, wal_records, wal_truncated) = if recovery.epoch == manifest.epoch {
            (wal, recovery.records, recovery.torn_tail)
        } else {
            let mut wal = wal;
            wal.reset(manifest.epoch)?;
            (wal, Vec::new(), false)
        };
        if !missing_files.is_empty() && wal_records.is_empty() {
            return Err(StorageError::Corrupt(format!(
                "file {} listed in the manifest is missing on disk and no WAL \
                 record can account for its deletion",
                missing_files[0].0
            )));
        }

        let mut file_pages = vec![0u64; entries.len()];
        for entry in &manifest.files {
            if let Some(slot) = file_pages.get_mut(entry.id as usize) {
                *slot = entry.pages;
            }
        }

        let manager = Self::with_wal(options, Some(wal), faults);
        *manager.files.write() = entries;
        Ok((
            manager,
            RecoveredState {
                payload: manifest.payload,
                file_pages,
                missing_files,
                wal_records,
                wal_truncated,
            },
        ))
    }

    /// Whether this manager logs metadata mutations (durable store).
    pub fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// Appends one opaque metadata record to the WAL; the record is durable
    /// when this returns. A no-op on non-durable managers, so callers can
    /// log unconditionally.
    pub fn log_meta(&self, payload: &[u8]) -> StorageResult<()> {
        let _cover = fault::enter("StorageManager::log_meta");
        match &self.wal {
            Some(wal) => wal.lock().append(payload),
            None => Ok(()),
        }
    }

    /// Number of pages the metadata WAL currently occupies (0 when not
    /// durable) — the quantity the checkpoint-interval bench sweeps.
    pub fn wal_pages(&self) -> u64 {
        self.wal.as_ref().map(|wal| wal.lock().pages()).unwrap_or(0)
    }

    /// Writes a checkpoint: the manifest (file table + the engine `payload`)
    /// is committed atomically and the WAL is reset for the next epoch.
    /// Callers must be quiescent (no concurrent mutations) — the engine's
    /// `checkpoint` documents the same requirement.
    pub fn checkpoint(&self, payload: &[u8]) -> StorageResult<()> {
        let _cover = fault::enter("StorageManager::checkpoint");
        let Some(wal) = &self.wal else {
            return Err(StorageError::Corrupt(
                "checkpoint on a non-durable storage manager".into(),
            ));
        };
        let dir = Self::durable_dir(&self.options)?.to_path_buf();
        let mut wal = wal.lock();
        let epoch = wal.epoch() + 1;
        let files = self.files.read();
        // Sync every data file before committing a manifest that references
        // its pages — this covers writes that never produce a WAL record
        // (seed raw files written before the first checkpoint, in
        // particular), completing the data-before-commit ordering.
        for entry in files.iter().flatten() {
            entry.file.sync()?;
        }
        let manifest = Manifest {
            epoch,
            file_slots: files.len() as u64,
            files: files
                .iter()
                .enumerate()
                .filter_map(|(id, slot)| slot.as_ref().map(|e| (id, e)))
                .map(|(id, e)| ManifestFileEntry {
                    id: id as u32,
                    name: e.name.clone(),
                    pages: e.file.num_pages(),
                })
                .collect(),
            payload: payload.to_vec(),
        };
        drop(files);
        manifest.write_atomic(&dir, &self.faults)?;
        wal.reset(epoch)
    }

    /// Flushes a file's written pages to the device. Part of the durability
    /// write ordering — a data file is synced *before* the WAL record that
    /// references its pages is appended — and therefore a no-op on
    /// non-durable managers, which make no crash promises.
    pub fn sync_file(&self, file: FileId) -> StorageResult<()> {
        let _cover = fault::enter("StorageManager::sync_file");
        if self.wal.is_none() {
            return Ok(());
        }
        self.entry(file)?.file.sync()
    }

    /// Shrinks a file to at most `pages` pages, dropping cached copies of
    /// the removed tail. Recovery uses this to cut orphaned appends.
    pub fn truncate_file(&self, file: FileId, pages: u64) -> StorageResult<()> {
        let _cover = fault::enter("StorageManager::truncate_file");
        let entry = self.entry(file)?;
        let before = entry.file.num_pages();
        entry.file.truncate(pages)?;
        for page in pages..before {
            self.buffer.invalidate((file, PageId(page)));
        }
        Ok(())
    }

    /// The configured options.
    pub fn options(&self) -> &StorageOptions {
        &self.options
    }

    /// The configured cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.options.cost_model
    }

    /// Current I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Buffer-pool introspection (resident pages, hits, evictions).
    pub fn buffer(&self) -> &BufferPool {
        &self.buffer
    }

    /// Simulated seconds for everything since the given snapshot.
    pub fn seconds_since(&self, snapshot: &IoStats) -> f64 {
        self.options
            .cost_model
            .seconds(&self.stats().since(snapshot).0)
    }

    /// Simulated seconds for all activity so far.
    pub fn total_seconds(&self) -> f64 {
        self.options.cost_model.seconds(&self.stats())
    }

    /// Records CPU work (object intersection tests) performed by an index on
    /// data it already had in memory, so that pure-CPU filtering is charged.
    pub fn note_objects_scanned(&self, n: u64) {
        AtomicIoStats::add(&self.stats.objects_scanned, n);
    }

    /// Records `n` objects accepted through the online-ingestion path. The
    /// page writes the ingest performs are charged separately (and
    /// automatically) as writes; this counter tracks arrival volume so
    /// ingest-heavy workloads can be reported per phase.
    pub fn note_objects_ingested(&self, n: u64) {
        AtomicIoStats::add(&self.stats.objects_ingested, n);
    }

    /// Records a query answered entirely from the engine's result cache.
    pub fn note_cache_hit(&self) {
        AtomicIoStats::add(&self.stats.cache_hits, 1);
    }

    /// Records a query that found no usable result-cache entry.
    pub fn note_cache_miss(&self) {
        AtomicIoStats::add(&self.stats.cache_misses, 1);
    }

    /// Records a query that reused the fresh components of a cache entry and
    /// re-executed only the stale remainder.
    pub fn note_cache_partial_reuse(&self) {
        AtomicIoStats::add(&self.stats.cache_partial_reuses, 1);
    }

    /// Records `n` object records an early-exiting execution provably skipped
    /// (kNN mindist pruning, Count metadata short-circuits).
    pub fn note_rows_skipped(&self, n: u64) {
        AtomicIoStats::add(&self.stats.rows_skipped_by_early_exit, n);
    }

    /// Records maintenance jobs accepted into the scheduler queue and raises
    /// the queue-depth high-water mark to the depth after the enqueue.
    pub fn note_maintenance_enqueued(&self, n: u64, queue_depth: u64) {
        AtomicIoStats::add(&self.stats.maintenance_jobs_enqueued, n);
        AtomicIoStats::raise(&self.stats.maintenance_queue_peak, queue_depth);
    }

    /// Records maintenance jobs run to completion.
    pub fn note_maintenance_completed(&self, n: u64) {
        AtomicIoStats::add(&self.stats.maintenance_jobs_completed, n);
    }

    /// Records maintenance jobs re-enqueued by recovery from checkpointed
    /// progress.
    pub fn note_maintenance_resumed(&self, n: u64) {
        AtomicIoStats::add(&self.stats.maintenance_jobs_resumed, n);
    }

    /// Records pages written by maintenance job steps.
    pub fn note_maintenance_pages(&self, n: u64) {
        AtomicIoStats::add(&self.stats.maintenance_pages_written, n);
    }

    /// Drops all cached pages, mirroring the paper's "OS caches and disk
    /// buffers are cleared before each query" methodology when desired.
    pub fn clear_cache(&self) {
        self.buffer.clear();
    }

    /// Creates a new, empty paged file and returns its id. `name` is used for
    /// the on-disk backend's file name and for debugging.
    pub fn create_file(&self, name: &str) -> StorageResult<FileId> {
        let _cover = fault::enter("StorageManager::create_file");
        let mut files = self.files.write();
        let id = FileId(files.len() as u32);
        let file: Box<dyn PagedFile> = match &self.options.backend {
            StorageBackend::Memory => Box::new(MemFile::new()),
            StorageBackend::Disk(dir) => {
                std::fs::create_dir_all(dir)?;
                let file = DiskFile::create(paged_file_path(dir, id, name))?;
                if self.wal.is_some() {
                    // A durable store's file table is recovered from the
                    // directory listing, so the new directory entry must
                    // survive power loss before any WAL record names the id.
                    fault::fs_sync_dir(&self.faults, SiteClass::DirSync, dir)?;
                    Box::new(FaultHookFile::data(
                        Box::new(file),
                        Arc::clone(&self.faults),
                    ))
                } else {
                    Box::new(file)
                }
            }
        };
        files.push(Some(Arc::new(FileEntry {
            name: name.to_string(),
            file,
            dead_pages: AtomicU64::new(0),
        })));
        AtomicIoStats::add(&self.stats.files_created, 1);
        Ok(id)
    }

    /// Deletes a file: its table slot becomes a permanent tombstone (the id
    /// is never handed out again), every buffer frame of the file is
    /// invalidated, and — on the disk backend — the backing file is removed
    /// and the directory fsynced so the deletion survives power loss.
    /// Returns the number of pages the file occupied (the reclaimed space).
    ///
    /// Idempotent: deleting an already-deleted file returns `Ok(0)`, which is
    /// what makes crash-recovery redo (replay a deletion record whose unlink
    /// already happened) safe. On durable managers, callers must log the WAL
    /// record that implies the deletion *before* calling — the record is
    /// what recovery uses to tell a legitimate post-checkpoint deletion from
    /// a corrupt store.
    pub fn delete_file(&self, file: FileId) -> StorageResult<u64> {
        let _cover = fault::enter("StorageManager::delete_file");
        let entry = {
            let mut files = self.files.write();
            let slot = files
                .get_mut(file.index())
                .ok_or(StorageError::UnknownFile(file.0))?;
            match slot.take() {
                Some(entry) => entry,
                None => return Ok(0), // already deleted
            }
        };
        // Invalidate *after* the tombstone is in place: a concurrent reader
        // that re-inserts a frame mid-invalidation would have had to resolve
        // the id through the table first, which now refuses it.
        self.buffer.invalidate_file(file);
        let pages = entry.file.num_pages();
        if let StorageBackend::Disk(dir) = &self.options.backend {
            let path = paged_file_path(dir, file, &entry.name);
            fault::fs_remove_file(&self.faults, SiteClass::DataUnlink, &path)?;
            if self.wal.is_some() {
                // The durable file table is recovered from the directory
                // listing; the removal must be durable before the next
                // checkpoint claims the file no longer exists.
                fault::fs_sync_dir(&self.faults, SiteClass::DirSync, dir)?;
            }
        }
        AtomicIoStats::add(&self.stats.files_deleted, 1);
        Ok(pages)
    }

    /// Whether the file id maps to a live (not deleted, in-range) file.
    pub fn file_exists(&self, file: FileId) -> bool {
        self.files
            .read()
            .get(file.index())
            .is_some_and(Option::is_some)
    }

    /// Records that `n` pages of `file` lost their last metadata reference
    /// (an append-only overflow rewrite, a refinement that laid children
    /// elsewhere, …). Feeds [`StorageManager::space_stats`], which the
    /// compactor polls. A no-op for deleted files.
    pub fn note_dead_pages(&self, file: FileId, n: u64) {
        if n == 0 {
            return;
        }
        if let Ok(entry) = self.entry(file) {
            entry.dead_pages.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Overwrites the dead-page counter of `file` (recovery recomputes dead
    /// space as committed size minus metadata-referenced pages, since the
    /// live counters die with the process).
    pub fn set_dead_pages(&self, file: FileId, n: u64) {
        if let Ok(entry) = self.entry(file) {
            entry.dead_pages.store(n, Ordering::Relaxed);
        }
    }

    /// Space accounting of one live file (size + dead pages).
    pub fn space_stats(&self, file: FileId) -> StorageResult<FileSpaceStats> {
        let _cover = fault::enter("StorageManager::space_stats");
        let entry = self.entry(file)?;
        Ok(FileSpaceStats {
            pages: entry.file.num_pages(),
            dead_pages: entry.dead_pages.load(Ordering::Relaxed),
        })
    }

    /// Total pages across all live files — the store's physical footprint
    /// (the numerator of the space-amplification metric).
    pub fn total_file_pages(&self) -> u64 {
        self.files
            .read()
            .iter()
            .flatten()
            .map(|e| e.file.num_pages())
            .sum()
    }

    /// Total dead pages across all live files.
    pub fn total_dead_pages(&self) -> u64 {
        self.files
            .read()
            .iter()
            .flatten()
            .map(|e| e.dead_pages.load(Ordering::Relaxed))
            .sum()
    }

    fn entry(&self, file: FileId) -> StorageResult<Arc<FileEntry>> {
        let _cover = fault::enter("StorageManager::entry");
        self.files
            .read()
            .get(file.index())
            .and_then(|slot| slot.clone())
            .ok_or(StorageError::UnknownFile(file.0))
    }

    /// Name the file was created with.
    pub fn file_name(&self, file: FileId) -> StorageResult<String> {
        Ok(self.entry(file)?.name.clone())
    }

    /// Names of all live (not deleted) files, in creation order.
    pub fn file_names(&self) -> Vec<String> {
        self.files
            .read()
            .iter()
            .flatten()
            .map(|e| e.name.clone())
            .collect()
    }

    /// Number of file-table slots assigned so far (deleted files keep their
    /// slot as a tombstone, so this is "ids ever handed out", not the live
    /// count).
    pub fn file_count(&self) -> usize {
        self.files.read().len()
    }

    /// Number of pages in a file.
    pub fn num_pages(&self, file: FileId) -> StorageResult<u64> {
        Ok(self.entry(file)?.file.num_pages())
    }

    /// Classifies one access against the packed `(file, page)` cursor and
    /// advances the cursor.
    #[inline]
    fn classify(cursor: &AtomicU64, file: FileId, page: u64) -> bool {
        let prev = cursor.swap(pack_cursor(file, page), Ordering::Relaxed);
        page > 0 && prev == pack_cursor(file, page - 1)
    }

    /// Reads one page, going through the buffer pool and classifying the
    /// device access as sequential or random. Every page that comes off the
    /// device is verified against its header CRC-32; a mismatch surfaces as
    /// [`StorageError::CorruptPage`] (buffer hits were verified when they
    /// were first read or written).
    pub fn read_page(&self, file: FileId, page: PageId) -> StorageResult<Page> {
        if let Some(p) = self.buffer.get((file, page)) {
            AtomicIoStats::add(&self.stats.buffer_hits, 1);
            return Ok(p);
        }
        let entry = self.entry(file)?;
        let data = entry.file.read_page(page)?;
        if !data.verify_checksum() {
            return Err(StorageError::CorruptPage {
                file: file.0,
                page: page.0,
            });
        }
        if Self::classify(&self.last_read, file, page.0) {
            AtomicIoStats::add(&self.stats.sequential_reads, 1);
        } else {
            AtomicIoStats::add(&self.stats.random_reads, 1);
        }
        self.buffer.insert((file, page), data.clone());
        Ok(data)
    }

    /// Stamps the page's checksum, without copying when it is already valid
    /// (pages built through [`Page::from_objects`] / [`Page::empty`] arrive
    /// pre-stamped; only hand-mutated pages pay the clone).
    fn stamped(data: &Page) -> std::borrow::Cow<'_, Page> {
        if data.verify_checksum() {
            std::borrow::Cow::Borrowed(data)
        } else {
            let mut page = data.clone();
            page.stamp_checksum();
            std::borrow::Cow::Owned(page)
        }
    }

    /// Overwrites one page (write-through to the buffer pool), stamping the
    /// page's header CRC-32 first.
    pub fn write_page(&self, file: FileId, page: PageId, data: &Page) -> StorageResult<()> {
        let stamped = Self::stamped(data);
        let entry = self.entry(file)?;
        entry.file.write_page(page, &stamped)?;
        if Self::classify(&self.last_write, file, page.0) {
            AtomicIoStats::add(&self.stats.sequential_writes, 1);
        } else {
            AtomicIoStats::add(&self.stats.random_writes, 1);
        }
        self.buffer.update_if_resident((file, page), &stamped);
        Ok(())
    }

    /// Appends one page at the end of a file, stamping its header CRC-32.
    pub fn append_page(&self, file: FileId, data: &Page) -> StorageResult<PageId> {
        let stamped = Self::stamped(data);
        let entry = self.entry(file)?;
        let id = entry.file.append_page(&stamped)?;
        // Appends at the end of a file are sequential whenever the previous
        // write targeted the preceding page of the same file.
        if Self::classify(&self.last_write, file, id.0) {
            AtomicIoStats::add(&self.stats.sequential_writes, 1);
        } else {
            AtomicIoStats::add(&self.stats.random_writes, 1);
        }
        Ok(id)
    }

    /// Grows a file with empty pages up to `pages` pages through the
    /// backend's bulk extension (a single `set_len`-style chunked write for
    /// [`DiskFile`], one `resize` for [`crate::MemFile`]), charging the same
    /// per-page write classification the old append-one-page-at-a-time path
    /// produced so the deterministic cost model is unchanged.
    pub fn grow_to(&self, file: FileId, pages: u64) -> StorageResult<()> {
        let entry = self.entry(file)?;
        let current = entry.file.num_pages();
        if pages <= current {
            return Ok(());
        }
        entry.file.grow_to(pages)?;
        for p in current..pages {
            if Self::classify(&self.last_write, file, p) {
                AtomicIoStats::add(&self.stats.sequential_writes, 1);
            } else {
                AtomicIoStats::add(&self.stats.random_writes, 1);
            }
        }
        Ok(())
    }

    /// Reads every object stored in the page range `[range.start, range.end)`
    /// of `file`, in page order.
    pub fn read_objects(
        &self,
        file: FileId,
        range: Range<u64>,
    ) -> StorageResult<Vec<SpatialObject>> {
        let mut out = Vec::new();
        self.read_objects_into(file, range, &mut out)?;
        Ok(out)
    }

    /// Like [`StorageManager::read_objects`] but appends into `out`.
    pub fn read_objects_into(
        &self,
        file: FileId,
        range: Range<u64>,
        out: &mut Vec<SpatialObject>,
    ) -> StorageResult<usize> {
        let mut total = 0usize;
        for p in range {
            let page = self.read_page(file, PageId(p))?;
            let n = page.objects_into(out)?;
            total += n;
            AtomicIoStats::add(&self.stats.objects_scanned, n as u64);
        }
        Ok(total)
    }

    /// Appends the objects as densely packed pages at the end of `file`,
    /// returning the page range they occupy.
    ///
    /// The pages of one call are appended back to back; callers that append
    /// to the same file from several threads must serialize those calls (the
    /// engine's per-dataset and merger locks do) or the runs will interleave.
    pub fn append_objects(
        &self,
        file: FileId,
        objects: &[SpatialObject],
    ) -> StorageResult<Range<u64>> {
        let start = self.num_pages(file)?;
        for page in pack_objects(objects) {
            self.append_page(file, &page)?;
        }
        AtomicIoStats::add(&self.stats.objects_written, objects.len() as u64);
        Ok(start..self.num_pages(file)?)
    }

    /// Rewrites the objects into pages starting at `start_page`, growing the
    /// file if needed, and returns the page range used. Used by Space
    /// Odyssey's in-place partition refinement, which reuses the partition's
    /// old pages and appends any overflow at the end of the file.
    pub fn write_objects_at(
        &self,
        file: FileId,
        start_page: u64,
        objects: &[SpatialObject],
    ) -> StorageResult<Range<u64>> {
        let pages = pack_objects(objects);
        let end = start_page + pages.len() as u64;
        self.grow_to(file, end)?;
        for (i, page) in pages.iter().enumerate() {
            self.write_page(file, PageId(start_page + i as u64), page)?;
        }
        AtomicIoStats::add(&self.stats.objects_written, objects.len() as u64);
        Ok(start_page..end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;
    use odyssey_geom::{Aabb, DatasetId, ObjectId, Vec3};

    fn objs(n: u64) -> Vec<SpatialObject> {
        (0..n)
            .map(|i| {
                SpatialObject::new(
                    ObjectId(i),
                    DatasetId(0),
                    Aabb::from_min_max(Vec3::splat(i as f64), Vec3::splat(i as f64 + 1.0)),
                )
            })
            .collect()
    }

    #[test]
    fn create_files_and_names() {
        let m = StorageManager::in_memory();
        let a = m.create_file("alpha").unwrap();
        let b = m.create_file("beta").unwrap();
        assert_eq!(m.file_count(), 2);
        assert_eq!(m.file_name(a).unwrap(), "alpha");
        assert_eq!(m.file_name(b).unwrap(), "beta");
        assert_eq!(
            m.file_names(),
            vec!["alpha".to_string(), "beta".to_string()]
        );
        assert_eq!(m.stats().files_created, 2);
        assert!(m.file_name(FileId(9)).is_err());
        assert!(m.num_pages(FileId(9)).is_err());
    }

    #[test]
    fn append_and_read_objects_roundtrip() {
        let m = StorageManager::in_memory();
        let f = m.create_file("data").unwrap();
        let data = objs(200);
        let range = m.append_objects(f, &data).unwrap();
        assert_eq!(range, 0..4); // 200 objects / 63 per page = 4 pages
        let back = m.read_objects(f, range).unwrap();
        assert_eq!(back, data);
        assert_eq!(m.stats().objects_written, 200);
        assert!(m.stats().objects_scanned >= 200);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let m = StorageManager::new(StorageOptions::in_memory(0)); // no cache
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(63 * 10)).unwrap();
        let before = m.stats();
        // Read pages 0..10 in order: first access random, rest sequential.
        for p in 0..10u64 {
            m.read_page(f, PageId(p)).unwrap();
        }
        let d = m.stats().since(&before).0;
        assert_eq!(d.random_reads, 1);
        assert_eq!(d.sequential_reads, 9);

        let before = m.stats();
        // Read every other page: all random.
        for p in (0..10u64).step_by(2) {
            m.read_page(f, PageId(p)).unwrap();
        }
        let d = m.stats().since(&before).0;
        assert_eq!(d.random_reads, 5);
        assert_eq!(d.sequential_reads, 0);
    }

    #[test]
    fn appends_are_sequential_writes() {
        let m = StorageManager::new(StorageOptions::in_memory(0));
        let f = m.create_file("data").unwrap();
        let before = m.stats();
        m.append_objects(f, &objs(63 * 5)).unwrap();
        let d = m.stats().since(&before).0;
        assert_eq!(d.random_writes, 1, "only the first append seeks");
        assert_eq!(d.sequential_writes, 4);
    }

    #[test]
    fn buffer_hits_avoid_device_reads() {
        let m = StorageManager::new(StorageOptions::in_memory(64));
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(63)).unwrap();
        m.read_page(f, PageId(0)).unwrap();
        let before = m.stats();
        m.read_page(f, PageId(0)).unwrap();
        let d = m.stats().since(&before).0;
        assert_eq!(d.pages_read(), 0);
        assert_eq!(d.buffer_hits, 1);
    }

    #[test]
    fn clear_cache_forces_rereads() {
        let m = StorageManager::new(StorageOptions::in_memory(64));
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(63)).unwrap();
        m.read_page(f, PageId(0)).unwrap();
        m.clear_cache();
        let before = m.stats();
        m.read_page(f, PageId(0)).unwrap();
        let d = m.stats().since(&before).0;
        assert_eq!(d.pages_read(), 1);
        assert_eq!(d.buffer_hits, 0);
    }

    #[test]
    fn write_objects_at_reuses_and_grows() {
        let m = StorageManager::in_memory();
        let f = m.create_file("data").unwrap();
        // Initially two pages worth of objects.
        m.append_objects(f, &objs(100)).unwrap();
        assert_eq!(m.num_pages(f).unwrap(), 2);
        // Rewrite starting at page 0 with more data than fits in two pages.
        let range = m.write_objects_at(f, 0, &objs(300)).unwrap();
        assert_eq!(range, 0..5);
        assert_eq!(m.num_pages(f).unwrap(), 5);
        let back = m.read_objects(f, 0..5).unwrap();
        assert_eq!(back.len(), 300);
    }

    #[test]
    fn write_page_out_of_range_errors() {
        let m = StorageManager::in_memory();
        let f = m.create_file("data").unwrap();
        assert!(m.write_page(f, PageId(3), &Page::empty()).is_err());
    }

    #[test]
    fn simulated_seconds_accumulate() {
        let m = StorageManager::new(StorageOptions::in_memory(0));
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(63 * 20)).unwrap();
        let snap = m.stats();
        assert!(m.total_seconds() > 0.0);
        for p in 0..20u64 {
            m.read_page(f, PageId(p)).unwrap();
        }
        let t = m.seconds_since(&snap);
        assert!(t > 0.0);
        assert!(m.total_seconds() > t);
    }

    #[test]
    fn disk_backend_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let m = StorageManager::new(StorageOptions::on_disk(dir.path(), 16));
        let f = m.create_file("data").unwrap();
        let data = objs(150);
        let range = m.append_objects(f, &data).unwrap();
        let back = m.read_objects(f, range).unwrap();
        assert_eq!(back, data);
        // Actual file exists on disk with the expected size.
        let entries: Vec<_> = std::fs::read_dir(dir.path()).unwrap().collect();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn grow_to_is_idempotent() {
        let m = StorageManager::in_memory();
        let f = m.create_file("data").unwrap();
        m.grow_to(f, 4).unwrap();
        m.grow_to(f, 2).unwrap();
        assert_eq!(m.num_pages(f).unwrap(), 4);
    }

    #[test]
    fn note_objects_scanned_feeds_cost() {
        let m = StorageManager::in_memory();
        let before = m.total_seconds();
        m.note_objects_scanned(1_000_000);
        assert!(m.total_seconds() > before);
    }

    #[test]
    fn shared_reference_use_across_threads() {
        let m = StorageManager::new(StorageOptions::in_memory(2048));
        // One file per "dataset"; readers of distinct files run in parallel.
        let files: Vec<FileId> = (0..4)
            .map(|i| {
                let f = m.create_file(&format!("ds{i}")).unwrap();
                m.append_objects(f, &objs(63 * 8)).unwrap();
                f
            })
            .collect();
        std::thread::scope(|s| {
            for &f in &files {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..10 {
                        let objects = m.read_objects(f, 0..8).unwrap();
                        assert_eq!(objects.len(), 63 * 8);
                    }
                });
            }
        });
        // Every page read is accounted for: 4 files × 10 rounds × 8 pages.
        let total = m.stats();
        assert_eq!(total.pages_read() + total.buffer_hits, 4 * 10 * 8);
    }

    #[test]
    fn device_bit_flips_surface_as_corrupt_page() {
        let dir = tempfile::tempdir().unwrap();
        let m = StorageManager::new(StorageOptions::on_disk(dir.path(), 16));
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(100)).unwrap();
        // Sanity: clean reads verify.
        m.clear_cache();
        assert_eq!(m.read_objects(f, 0..2).unwrap().len(), 100);
        // Flip one payload bit of page 1 directly on the medium.
        let path = dir.path().join("0000_data.pages");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[PAGE_SIZE + 100] ^= 0x04;
        std::fs::write(&path, bytes).unwrap();
        m.clear_cache();
        assert_eq!(m.read_objects(f, 0..1).unwrap().len(), 63);
        assert!(matches!(
            m.read_page(f, PageId(1)),
            Err(StorageError::CorruptPage { file: 0, page: 1 })
        ));
        // A cached page is trusted; re-reading page 0 still works.
        assert!(m.read_page(f, PageId(0)).is_ok());
    }

    #[test]
    fn bulk_grow_matches_per_append_classification() {
        // The bulk grow_to must charge exactly what the old one-append-per-
        // page implementation charged, so the deterministic cost model is
        // unchanged.
        let m = StorageManager::new(StorageOptions::in_memory(0));
        let f = m.create_file("data").unwrap();
        let before = m.stats();
        m.grow_to(f, 12).unwrap();
        let d = m.stats().since(&before).0;
        assert_eq!(d.random_writes, 1, "only the initial placement seeks");
        assert_eq!(d.sequential_writes, 11);
        // Grown pages read back as valid, checksummed empty pages.
        assert_eq!(
            m.read_page(f, PageId(11)).unwrap().record_count().unwrap(),
            0
        );
    }

    #[test]
    fn truncate_file_drops_tail_and_cache() {
        let m = StorageManager::new(StorageOptions::in_memory(64));
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(63 * 4)).unwrap();
        for p in 0..4u64 {
            m.read_page(f, PageId(p)).unwrap();
        }
        m.truncate_file(f, 2).unwrap();
        assert_eq!(m.num_pages(f).unwrap(), 2);
        assert!(m.read_page(f, PageId(2)).is_err());
        // The cached copies of the dropped pages are gone too.
        let before = m.stats();
        m.read_page(f, PageId(1)).unwrap();
        assert_eq!(m.stats().since(&before).0.buffer_hits, 1);
    }

    #[test]
    fn durable_create_checkpoint_open_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let m = StorageManager::create(StorageOptions::durable(dir.path(), 16)).unwrap();
        assert!(m.wal_enabled());
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(100)).unwrap();
        m.log_meta(b"record-one").unwrap();
        m.checkpoint(b"engine-payload").unwrap();
        m.log_meta(b"record-two").unwrap();
        // A second file created after the checkpoint is discovered on open.
        let g = m.create_file("late").unwrap();
        m.append_objects(g, &objs(10)).unwrap();
        drop(m);

        let (m2, rec) = StorageManager::open(StorageOptions::durable(dir.path(), 16)).unwrap();
        assert_eq!(rec.payload, b"engine-payload");
        assert_eq!(rec.wal_records, vec![b"record-two".to_vec()]);
        assert!(!rec.wal_truncated);
        assert_eq!(
            rec.file_pages,
            vec![2, 0],
            "late file has no committed pages"
        );
        assert_eq!(m2.file_count(), 2);
        assert_eq!(m2.file_name(FileId(0)).unwrap(), "data");
        assert_eq!(m2.file_name(FileId(1)).unwrap(), "late");
        assert_eq!(m2.read_objects(FileId(0), 0..2).unwrap(), objs(100));
        // Non-durable managers refuse checkpoints; opening a plain directory
        // refuses too.
        let plain = StorageManager::in_memory();
        assert!(plain.checkpoint(b"x").is_err());
        assert!(plain.log_meta(b"x").is_ok(), "log_meta is a silent no-op");
        let empty = tempfile::tempdir().unwrap();
        assert!(StorageManager::open(StorageOptions::durable(empty.path(), 16)).is_err());
    }

    #[test]
    fn stale_epoch_wal_is_ignored_on_open() {
        let dir = tempfile::tempdir().unwrap();
        let m = StorageManager::create(StorageOptions::durable(dir.path(), 16)).unwrap();
        m.create_file("data").unwrap();
        m.log_meta(b"pre-checkpoint").unwrap();
        m.checkpoint(b"p1").unwrap();
        drop(m);
        // Forge a WAL reset failure: restore a log whose epoch is one behind
        // the manifest by re-creating it at the stale epoch with a record.
        let wal_path = dir.path().join(WAL_FILE_NAME);
        let wal = MetaWal::create(Box::new(DiskFile::create(&wal_path).unwrap()), 0).unwrap();
        wal.append(b"stale-record").unwrap();
        drop(wal);
        let (_, rec) = StorageManager::open(StorageOptions::durable(dir.path(), 16)).unwrap();
        assert!(
            rec.wal_records.is_empty(),
            "records from a stale epoch must not replay"
        );
    }

    #[test]
    fn delete_file_reclaims_space_and_updates_accounting() {
        let dir = tempfile::tempdir().unwrap();
        let m = StorageManager::new(StorageOptions::on_disk(dir.path(), 16));
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(200)).unwrap();
        assert_eq!(m.space_stats(f).unwrap().pages, 4);
        m.note_dead_pages(f, 3);
        let s = m.space_stats(f).unwrap();
        assert_eq!(s.dead_pages, 3);
        assert_eq!(s.live_pages(), 1);
        assert!((s.dead_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(m.total_file_pages(), 4);
        assert_eq!(m.total_dead_pages(), 3);
        // Deletion removes the physical file and the accounting.
        assert_eq!(m.delete_file(f).unwrap(), 4);
        assert_eq!(m.total_file_pages(), 0);
        assert_eq!(m.total_dead_pages(), 0);
        assert!(m.space_stats(f).is_err());
        assert!(!dir.path().join("0000_data.pages").exists());
        // Dead-page notes on deleted files are silently dropped.
        m.note_dead_pages(f, 5);
        m.set_dead_pages(f, 5);
        assert_eq!(m.total_dead_pages(), 0);
        // file_names skips tombstones; file_count keeps the slot.
        assert!(m.file_names().is_empty());
        assert_eq!(m.file_count(), 1);
    }

    #[test]
    fn missing_manifest_file_without_wal_records_is_corrupt() {
        let dir = tempfile::tempdir().unwrap();
        let m = StorageManager::create(StorageOptions::durable(dir.path(), 16)).unwrap();
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(10)).unwrap();
        m.checkpoint(b"p").unwrap();
        drop(m);
        // Simulate an impossible hole: the file vanishes although no WAL
        // record of the manifest's epoch could have deleted it.
        std::fs::remove_file(dir.path().join("0000_data.pages")).unwrap();
        assert!(matches!(
            StorageManager::open(StorageOptions::durable(dir.path(), 16)),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn missing_manifest_file_with_wal_records_is_reported_for_replay() {
        let dir = tempfile::tempdir().unwrap();
        let m = StorageManager::create(StorageOptions::durable(dir.path(), 16)).unwrap();
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(10)).unwrap();
        m.checkpoint(b"p").unwrap();
        // A post-checkpoint record that (at the engine layer) would justify
        // the deletion; storage only validates that *some* record exists and
        // leaves the verification to the engine's replay.
        m.log_meta(b"delete-record").unwrap();
        m.delete_file(f).unwrap();
        drop(m);
        let (m2, rec) = StorageManager::open(StorageOptions::durable(dir.path(), 16)).unwrap();
        assert_eq!(rec.missing_files, vec![f]);
        assert_eq!(rec.wal_records, vec![b"delete-record".to_vec()]);
        assert!(!m2.file_exists(f));
        // The tombstone keeps its slot: the next id continues after it.
        assert_eq!(m2.create_file("next").unwrap(), FileId(1));
    }

    #[test]
    #[should_panic(expected = "durable stores are created")]
    fn new_refuses_durable_options() {
        let dir = tempfile::tempdir().unwrap();
        let _ = StorageManager::new(StorageOptions::durable(dir.path(), 16));
    }

    #[test]
    fn concurrent_file_creation_yields_distinct_ids() {
        let m = StorageManager::in_memory();
        let ids = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let (m, ids) = (&m, &ids);
                s.spawn(move || {
                    for i in 0..16 {
                        let id = m.create_file(&format!("f{t}_{i}")).unwrap();
                        ids.lock().unwrap().push(id);
                    }
                });
            }
        });
        let mut ids = ids.into_inner().unwrap();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8 * 16);
        assert_eq!(m.file_count(), 8 * 16);
    }
}
