//! The storage manager: the façade every index implementation talks to.
//!
//! A [`StorageManager`] owns a set of paged files, a buffer pool, the I/O
//! counters and the cost model. Indexes create files, append or rewrite
//! object pages and read page ranges; the manager classifies each device
//! access as sequential or random (the property the paper's evaluation hinges
//! on) and keeps the running [`IoStats`].

use crate::buffer::BufferPool;
use crate::cost::CostModel;
use crate::error::{StorageError, StorageResult};
use crate::file::{DiskFile, FileId, MemFile, PagedFile};
use crate::page::{pack_objects, Page, PageId};
use crate::stats::IoStats;
use odyssey_geom::SpatialObject;
use std::ops::Range;
use std::path::PathBuf;

/// Where pages physically live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageBackend {
    /// Pages are kept in memory; timing comes from the cost model only.
    /// This is the default for experiments: it makes runs deterministic and
    /// independent of the host's disk and page cache.
    Memory,
    /// Pages are stored in real files inside the given directory.
    Disk(PathBuf),
}

/// Configuration of a [`StorageManager`].
#[derive(Debug, Clone)]
pub struct StorageOptions {
    /// Physical backend.
    pub backend: StorageBackend,
    /// Buffer-pool capacity in pages (the memory budget of the paper:
    /// 1 GB ⇒ 262 144 pages of 4 KB). Zero disables caching.
    pub buffer_pages: usize,
    /// Cost model used to convert I/O counters into simulated seconds.
    pub cost_model: CostModel,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            backend: StorageBackend::Memory,
            // Default scaled-down memory budget: 16 MiB of 4 KiB pages. The
            // experiment harness overrides this per run.
            buffer_pages: 4096,
            cost_model: CostModel::default(),
        }
    }
}

impl StorageOptions {
    /// In-memory backend with the given buffer budget (pages).
    pub fn in_memory(buffer_pages: usize) -> Self {
        StorageOptions { backend: StorageBackend::Memory, buffer_pages, ..Default::default() }
    }

    /// On-disk backend rooted at `dir` with the given buffer budget (pages).
    pub fn on_disk<P: Into<PathBuf>>(dir: P, buffer_pages: usize) -> Self {
        StorageOptions {
            backend: StorageBackend::Disk(dir.into()),
            buffer_pages,
            ..Default::default()
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }
}

/// Owns files, buffer pool, statistics and the cost model.
pub struct StorageManager {
    options: StorageOptions,
    files: Vec<Box<dyn PagedFile>>,
    file_names: Vec<String>,
    buffer: BufferPool,
    stats: IoStats,
    last_read: Option<(FileId, u64)>,
    last_write: Option<(FileId, u64)>,
}

impl std::fmt::Debug for StorageManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageManager")
            .field("files", &self.files.len())
            .field("stats", &self.stats)
            .field("buffer", &self.buffer)
            .finish()
    }
}

impl StorageManager {
    /// Creates a manager with the given options.
    pub fn new(options: StorageOptions) -> Self {
        let buffer = BufferPool::new(options.buffer_pages);
        StorageManager {
            options,
            files: Vec::new(),
            file_names: Vec::new(),
            buffer,
            stats: IoStats::default(),
            last_read: None,
            last_write: None,
        }
    }

    /// Convenience constructor: in-memory backend with the default options.
    pub fn in_memory() -> Self {
        StorageManager::new(StorageOptions::default())
    }

    /// The configured options.
    pub fn options(&self) -> &StorageOptions {
        &self.options
    }

    /// The configured cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.options.cost_model
    }

    /// Current I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Buffer-pool introspection (resident pages, hits, evictions).
    pub fn buffer(&self) -> &BufferPool {
        &self.buffer
    }

    /// Simulated seconds for everything since the given snapshot.
    pub fn seconds_since(&self, snapshot: &IoStats) -> f64 {
        self.options.cost_model.seconds(&self.stats.since(snapshot).0)
    }

    /// Simulated seconds for all activity so far.
    pub fn total_seconds(&self) -> f64 {
        self.options.cost_model.seconds(&self.stats)
    }

    /// Records CPU work (object intersection tests) performed by an index on
    /// data it already had in memory, so that pure-CPU filtering is charged.
    pub fn note_objects_scanned(&mut self, n: u64) {
        self.stats.objects_scanned += n;
    }

    /// Drops all cached pages, mirroring the paper's "OS caches and disk
    /// buffers are cleared before each query" methodology when desired.
    pub fn clear_cache(&mut self) {
        self.buffer.clear();
    }

    /// Creates a new, empty paged file and returns its id. `name` is used for
    /// the on-disk backend's file name and for debugging.
    pub fn create_file(&mut self, name: &str) -> StorageResult<FileId> {
        let id = FileId(self.files.len() as u32);
        let file: Box<dyn PagedFile> = match &self.options.backend {
            StorageBackend::Memory => Box::new(MemFile::new()),
            StorageBackend::Disk(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join(format!("{:04}_{name}.pages", id.0));
                Box::new(DiskFile::create(path)?)
            }
        };
        self.files.push(file);
        self.file_names.push(name.to_string());
        self.stats.files_created += 1;
        Ok(id)
    }

    /// Name the file was created with.
    pub fn file_name(&self, file: FileId) -> StorageResult<&str> {
        self.file_names
            .get(file.index())
            .map(|s| s.as_str())
            .ok_or(StorageError::UnknownFile(file.0))
    }

    /// Number of files created so far.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Number of pages in a file.
    pub fn num_pages(&self, file: FileId) -> StorageResult<u64> {
        self.files
            .get(file.index())
            .map(|f| f.num_pages())
            .ok_or(StorageError::UnknownFile(file.0))
    }

    fn file_mut(&mut self, file: FileId) -> StorageResult<&mut Box<dyn PagedFile>> {
        self.files.get_mut(file.index()).ok_or(StorageError::UnknownFile(file.0))
    }

    /// Reads one page, going through the buffer pool and classifying the
    /// device access as sequential or random.
    pub fn read_page(&mut self, file: FileId, page: PageId) -> StorageResult<Page> {
        if let Some(p) = self.buffer.get((file, page)) {
            self.stats.buffer_hits += 1;
            return Ok(p);
        }
        let sequential = self.last_read == Some((file, page.0.wrapping_sub(1)));
        let data = {
            let f = self.file_mut(file)?;
            f.read_page(page)?
        };
        if sequential {
            self.stats.sequential_reads += 1;
        } else {
            self.stats.random_reads += 1;
        }
        self.last_read = Some((file, page.0));
        self.buffer.insert((file, page), data.clone());
        Ok(data)
    }

    /// Overwrites one page (write-through to the buffer pool).
    pub fn write_page(&mut self, file: FileId, page: PageId, data: &Page) -> StorageResult<()> {
        let sequential = self.last_write == Some((file, page.0.wrapping_sub(1)));
        {
            let f = self.file_mut(file)?;
            f.write_page(page, data)?;
        }
        if sequential {
            self.stats.sequential_writes += 1;
        } else {
            self.stats.random_writes += 1;
        }
        self.last_write = Some((file, page.0));
        self.buffer.update_if_resident((file, page), data);
        Ok(())
    }

    /// Appends one page at the end of a file.
    pub fn append_page(&mut self, file: FileId, data: &Page) -> StorageResult<PageId> {
        let id = {
            let f = self.file_mut(file)?;
            f.append_page(data)?
        };
        // Appends at the end of a file are sequential whenever the previous
        // write targeted the preceding page of the same file.
        let sequential = self.last_write == Some((file, id.0.wrapping_sub(1)));
        if sequential {
            self.stats.sequential_writes += 1;
        } else {
            self.stats.random_writes += 1;
        }
        self.last_write = Some((file, id.0));
        Ok(id)
    }

    /// Grows a file with zeroed pages up to `pages` pages (counted as
    /// sequential writes, matching a bulk pre-allocation).
    pub fn grow_to(&mut self, file: FileId, pages: u64) -> StorageResult<()> {
        let current = self.num_pages(file)?;
        if pages <= current {
            return Ok(());
        }
        let empty = Page::empty();
        for _ in current..pages {
            self.append_page(file, &empty)?;
        }
        Ok(())
    }

    /// Reads every object stored in the page range `[range.start, range.end)`
    /// of `file`, in page order.
    pub fn read_objects(
        &mut self,
        file: FileId,
        range: Range<u64>,
    ) -> StorageResult<Vec<SpatialObject>> {
        let mut out = Vec::new();
        self.read_objects_into(file, range, &mut out)?;
        Ok(out)
    }

    /// Like [`StorageManager::read_objects`] but appends into `out`.
    pub fn read_objects_into(
        &mut self,
        file: FileId,
        range: Range<u64>,
        out: &mut Vec<SpatialObject>,
    ) -> StorageResult<usize> {
        let mut total = 0usize;
        for p in range {
            let page = self.read_page(file, PageId(p))?;
            let n = page.objects_into(out)?;
            total += n;
            self.stats.objects_scanned += n as u64;
        }
        Ok(total)
    }

    /// Appends the objects as densely packed pages at the end of `file`,
    /// returning the page range they occupy.
    pub fn append_objects(
        &mut self,
        file: FileId,
        objects: &[SpatialObject],
    ) -> StorageResult<Range<u64>> {
        let start = self.num_pages(file)?;
        for page in pack_objects(objects) {
            self.append_page(file, &page)?;
        }
        self.stats.objects_written += objects.len() as u64;
        Ok(start..self.num_pages(file)?)
    }

    /// Rewrites the objects into pages starting at `start_page`, growing the
    /// file if needed, and returns the page range used. Used by Space
    /// Odyssey's in-place partition refinement, which reuses the partition's
    /// old pages and appends any overflow at the end of the file.
    pub fn write_objects_at(
        &mut self,
        file: FileId,
        start_page: u64,
        objects: &[SpatialObject],
    ) -> StorageResult<Range<u64>> {
        let pages = pack_objects(objects);
        let end = start_page + pages.len() as u64;
        self.grow_to(file, end)?;
        for (i, page) in pages.iter().enumerate() {
            self.write_page(file, PageId(start_page + i as u64), page)?;
        }
        self.stats.objects_written += objects.len() as u64;
        Ok(start_page..end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_geom::{Aabb, DatasetId, ObjectId, Vec3};

    fn objs(n: u64) -> Vec<SpatialObject> {
        (0..n)
            .map(|i| {
                SpatialObject::new(
                    ObjectId(i),
                    DatasetId(0),
                    Aabb::from_min_max(Vec3::splat(i as f64), Vec3::splat(i as f64 + 1.0)),
                )
            })
            .collect()
    }

    #[test]
    fn create_files_and_names() {
        let mut m = StorageManager::in_memory();
        let a = m.create_file("alpha").unwrap();
        let b = m.create_file("beta").unwrap();
        assert_eq!(m.file_count(), 2);
        assert_eq!(m.file_name(a).unwrap(), "alpha");
        assert_eq!(m.file_name(b).unwrap(), "beta");
        assert_eq!(m.stats().files_created, 2);
        assert!(m.file_name(FileId(9)).is_err());
        assert!(m.num_pages(FileId(9)).is_err());
    }

    #[test]
    fn append_and_read_objects_roundtrip() {
        let mut m = StorageManager::in_memory();
        let f = m.create_file("data").unwrap();
        let data = objs(200);
        let range = m.append_objects(f, &data).unwrap();
        assert_eq!(range, 0..4); // 200 objects / 63 per page = 4 pages
        let back = m.read_objects(f, range).unwrap();
        assert_eq!(back, data);
        assert_eq!(m.stats().objects_written, 200);
        assert!(m.stats().objects_scanned >= 200);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let mut m = StorageManager::new(StorageOptions::in_memory(0)); // no cache
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(63 * 10)).unwrap();
        let before = m.stats();
        // Read pages 0..10 in order: first access random, rest sequential.
        for p in 0..10u64 {
            m.read_page(f, PageId(p)).unwrap();
        }
        let d = m.stats().since(&before).0;
        assert_eq!(d.random_reads, 1);
        assert_eq!(d.sequential_reads, 9);

        let before = m.stats();
        // Read every other page: all random.
        for p in (0..10u64).step_by(2) {
            m.read_page(f, PageId(p)).unwrap();
        }
        let d = m.stats().since(&before).0;
        assert_eq!(d.random_reads, 5);
        assert_eq!(d.sequential_reads, 0);
    }

    #[test]
    fn appends_are_sequential_writes() {
        let mut m = StorageManager::new(StorageOptions::in_memory(0));
        let f = m.create_file("data").unwrap();
        let before = m.stats();
        m.append_objects(f, &objs(63 * 5)).unwrap();
        let d = m.stats().since(&before).0;
        assert_eq!(d.random_writes, 1, "only the first append seeks");
        assert_eq!(d.sequential_writes, 4);
    }

    #[test]
    fn buffer_hits_avoid_device_reads() {
        let mut m = StorageManager::new(StorageOptions::in_memory(64));
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(63)).unwrap();
        m.read_page(f, PageId(0)).unwrap();
        let before = m.stats();
        m.read_page(f, PageId(0)).unwrap();
        let d = m.stats().since(&before).0;
        assert_eq!(d.pages_read(), 0);
        assert_eq!(d.buffer_hits, 1);
    }

    #[test]
    fn clear_cache_forces_rereads() {
        let mut m = StorageManager::new(StorageOptions::in_memory(64));
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(63)).unwrap();
        m.read_page(f, PageId(0)).unwrap();
        m.clear_cache();
        let before = m.stats();
        m.read_page(f, PageId(0)).unwrap();
        let d = m.stats().since(&before).0;
        assert_eq!(d.pages_read(), 1);
        assert_eq!(d.buffer_hits, 0);
    }

    #[test]
    fn write_objects_at_reuses_and_grows() {
        let mut m = StorageManager::in_memory();
        let f = m.create_file("data").unwrap();
        // Initially two pages worth of objects.
        m.append_objects(f, &objs(100)).unwrap();
        assert_eq!(m.num_pages(f).unwrap(), 2);
        // Rewrite starting at page 0 with more data than fits in two pages.
        let range = m.write_objects_at(f, 0, &objs(300)).unwrap();
        assert_eq!(range, 0..5);
        assert_eq!(m.num_pages(f).unwrap(), 5);
        let back = m.read_objects(f, 0..5).unwrap();
        assert_eq!(back.len(), 300);
    }

    #[test]
    fn write_page_out_of_range_errors() {
        let mut m = StorageManager::in_memory();
        let f = m.create_file("data").unwrap();
        assert!(m.write_page(f, PageId(3), &Page::empty()).is_err());
    }

    #[test]
    fn simulated_seconds_accumulate() {
        let mut m = StorageManager::new(StorageOptions::in_memory(0));
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(63 * 20)).unwrap();
        let snap = m.stats();
        assert!(m.total_seconds() > 0.0);
        for p in 0..20u64 {
            m.read_page(f, PageId(p)).unwrap();
        }
        let t = m.seconds_since(&snap);
        assert!(t > 0.0);
        assert!(m.total_seconds() > t);
    }

    #[test]
    fn disk_backend_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let mut m = StorageManager::new(StorageOptions::on_disk(dir.path(), 16));
        let f = m.create_file("data").unwrap();
        let data = objs(150);
        let range = m.append_objects(f, &data).unwrap();
        let back = m.read_objects(f, range).unwrap();
        assert_eq!(back, data);
        // Actual file exists on disk with the expected size.
        let entries: Vec<_> = std::fs::read_dir(dir.path()).unwrap().collect();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn grow_to_is_idempotent() {
        let mut m = StorageManager::in_memory();
        let f = m.create_file("data").unwrap();
        m.grow_to(f, 4).unwrap();
        m.grow_to(f, 2).unwrap();
        assert_eq!(m.num_pages(f).unwrap(), 4);
    }

    #[test]
    fn note_objects_scanned_feeds_cost() {
        let mut m = StorageManager::in_memory();
        let before = m.total_seconds();
        m.note_objects_scanned(1_000_000);
        assert!(m.total_seconds() > before);
    }
}
