//! The storage manager: the façade every index implementation talks to.
//!
//! A [`StorageManager`] owns a set of paged files, a buffer pool, the I/O
//! counters and the cost model. Indexes create files, append or rewrite
//! object pages and read page ranges; the manager classifies each device
//! access as sequential or random (the property the paper's evaluation hinges
//! on) and keeps the running [`IoStats`].
//!
//! # Concurrency
//!
//! Every operation takes `&self`: a single manager is shared by reference
//! across all query threads. Internally,
//!
//! * the file table is an `RwLock<Vec<Arc<…>>>` — reads of *different* files
//!   (and, for the in-memory backend, of different pages of the same file)
//!   proceed fully in parallel; creating a file takes the write lock briefly;
//! * the buffer pool is sharded (see [`BufferPool`]);
//! * the I/O counters are atomics ([`crate::stats::AtomicIoStats`]);
//! * the sequential/random access classifier keeps the last-touched page in
//!   one atomic word. Under concurrency the classification is a best-effort
//!   approximation (two interleaved sequential scans can classify each
//!   other's accesses as random — exactly as interleaved streams would behave
//!   on a real spinning disk). Single-threaded runs classify identically to
//!   the pre-concurrency implementation, which the deterministic cost-model
//!   tests rely on.
//!
//! Page-level reads and writes are atomic; runs of pages belonging to one
//! partition are kept consistent by the per-dataset locks in `odyssey-core`.

use crate::buffer::BufferPool;
use crate::cost::CostModel;
use crate::error::{StorageError, StorageResult};
use crate::file::{DiskFile, FileId, MemFile, PagedFile};
use crate::page::{pack_objects, Page, PageId};
use crate::stats::{AtomicIoStats, IoStats};
use odyssey_geom::SpatialObject;
use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Where pages physically live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageBackend {
    /// Pages are kept in memory; timing comes from the cost model only.
    /// This is the default for experiments: it makes runs deterministic and
    /// independent of the host's disk and page cache.
    Memory,
    /// Pages are stored in real files inside the given directory.
    Disk(PathBuf),
}

/// Configuration of a [`StorageManager`].
#[derive(Debug, Clone)]
pub struct StorageOptions {
    /// Physical backend.
    pub backend: StorageBackend,
    /// Buffer-pool capacity in pages (the memory budget of the paper:
    /// 1 GB ⇒ 262 144 pages of 4 KB). Zero disables caching.
    pub buffer_pages: usize,
    /// Cost model used to convert I/O counters into simulated seconds.
    pub cost_model: CostModel,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            backend: StorageBackend::Memory,
            // Default scaled-down memory budget: 16 MiB of 4 KiB pages. The
            // experiment harness overrides this per run.
            buffer_pages: 4096,
            cost_model: CostModel::default(),
        }
    }
}

impl StorageOptions {
    /// In-memory backend with the given buffer budget (pages).
    pub fn in_memory(buffer_pages: usize) -> Self {
        StorageOptions {
            backend: StorageBackend::Memory,
            buffer_pages,
            ..Default::default()
        }
    }

    /// On-disk backend rooted at `dir` with the given buffer budget (pages).
    pub fn on_disk<P: Into<PathBuf>>(dir: P, buffer_pages: usize) -> Self {
        StorageOptions {
            backend: StorageBackend::Disk(dir.into()),
            buffer_pages,
            ..Default::default()
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }
}

/// One registered file: its display name plus the backend handle.
struct FileEntry {
    name: String,
    file: Box<dyn PagedFile>,
}

/// Packed (file, page) cursor used by the sequential/random classifier.
///
/// Layout: bits 40.. hold `file id + 1` (so the zero word means "no previous
/// access"), bits 0..40 hold the page index truncated to 40 bits — files of
/// up to a trillion pages classify exactly; beyond that, a wrap-around can at
/// worst misclassify one access.
#[inline]
fn pack_cursor(file: FileId, page: u64) -> u64 {
    ((file.0 as u64 + 1) << 40) | (page & ((1 << 40) - 1))
}

/// Owns files, buffer pool, statistics and the cost model.
pub struct StorageManager {
    options: StorageOptions,
    files: RwLock<Vec<Arc<FileEntry>>>,
    buffer: BufferPool,
    stats: AtomicIoStats,
    last_read: AtomicU64,
    last_write: AtomicU64,
}

impl std::fmt::Debug for StorageManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageManager")
            .field("files", &self.file_count())
            .field("stats", &self.stats())
            .field("buffer", &self.buffer)
            .finish()
    }
}

impl StorageManager {
    /// Creates a manager with the given options.
    pub fn new(options: StorageOptions) -> Self {
        let buffer = BufferPool::new(options.buffer_pages);
        StorageManager {
            options,
            files: RwLock::new(Vec::new()),
            buffer,
            stats: AtomicIoStats::default(),
            last_read: AtomicU64::new(0),
            last_write: AtomicU64::new(0),
        }
    }

    /// Convenience constructor: in-memory backend with the default options.
    pub fn in_memory() -> Self {
        StorageManager::new(StorageOptions::default())
    }

    /// The configured options.
    pub fn options(&self) -> &StorageOptions {
        &self.options
    }

    /// The configured cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.options.cost_model
    }

    /// Current I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// Buffer-pool introspection (resident pages, hits, evictions).
    pub fn buffer(&self) -> &BufferPool {
        &self.buffer
    }

    /// Simulated seconds for everything since the given snapshot.
    pub fn seconds_since(&self, snapshot: &IoStats) -> f64 {
        self.options
            .cost_model
            .seconds(&self.stats().since(snapshot).0)
    }

    /// Simulated seconds for all activity so far.
    pub fn total_seconds(&self) -> f64 {
        self.options.cost_model.seconds(&self.stats())
    }

    /// Records CPU work (object intersection tests) performed by an index on
    /// data it already had in memory, so that pure-CPU filtering is charged.
    pub fn note_objects_scanned(&self, n: u64) {
        AtomicIoStats::add(&self.stats.objects_scanned, n);
    }

    /// Records `n` objects accepted through the online-ingestion path. The
    /// page writes the ingest performs are charged separately (and
    /// automatically) as writes; this counter tracks arrival volume so
    /// ingest-heavy workloads can be reported per phase.
    pub fn note_objects_ingested(&self, n: u64) {
        AtomicIoStats::add(&self.stats.objects_ingested, n);
    }

    /// Drops all cached pages, mirroring the paper's "OS caches and disk
    /// buffers are cleared before each query" methodology when desired.
    pub fn clear_cache(&self) {
        self.buffer.clear();
    }

    /// Creates a new, empty paged file and returns its id. `name` is used for
    /// the on-disk backend's file name and for debugging.
    pub fn create_file(&self, name: &str) -> StorageResult<FileId> {
        let mut files = self.files.write().unwrap();
        let id = FileId(files.len() as u32);
        let file: Box<dyn PagedFile> = match &self.options.backend {
            StorageBackend::Memory => Box::new(MemFile::new()),
            StorageBackend::Disk(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join(format!("{:04}_{name}.pages", id.0));
                Box::new(DiskFile::create(path)?)
            }
        };
        files.push(Arc::new(FileEntry {
            name: name.to_string(),
            file,
        }));
        AtomicIoStats::add(&self.stats.files_created, 1);
        Ok(id)
    }

    fn entry(&self, file: FileId) -> StorageResult<Arc<FileEntry>> {
        self.files
            .read()
            .unwrap()
            .get(file.index())
            .cloned()
            .ok_or(StorageError::UnknownFile(file.0))
    }

    /// Name the file was created with.
    pub fn file_name(&self, file: FileId) -> StorageResult<String> {
        Ok(self.entry(file)?.name.clone())
    }

    /// Names of all files, in creation order.
    pub fn file_names(&self) -> Vec<String> {
        self.files
            .read()
            .unwrap()
            .iter()
            .map(|e| e.name.clone())
            .collect()
    }

    /// Number of files created so far.
    pub fn file_count(&self) -> usize {
        self.files.read().unwrap().len()
    }

    /// Number of pages in a file.
    pub fn num_pages(&self, file: FileId) -> StorageResult<u64> {
        Ok(self.entry(file)?.file.num_pages())
    }

    /// Classifies one access against the packed `(file, page)` cursor and
    /// advances the cursor.
    #[inline]
    fn classify(cursor: &AtomicU64, file: FileId, page: u64) -> bool {
        let prev = cursor.swap(pack_cursor(file, page), Ordering::Relaxed);
        page > 0 && prev == pack_cursor(file, page - 1)
    }

    /// Reads one page, going through the buffer pool and classifying the
    /// device access as sequential or random.
    pub fn read_page(&self, file: FileId, page: PageId) -> StorageResult<Page> {
        if let Some(p) = self.buffer.get((file, page)) {
            AtomicIoStats::add(&self.stats.buffer_hits, 1);
            return Ok(p);
        }
        let entry = self.entry(file)?;
        let data = entry.file.read_page(page)?;
        if Self::classify(&self.last_read, file, page.0) {
            AtomicIoStats::add(&self.stats.sequential_reads, 1);
        } else {
            AtomicIoStats::add(&self.stats.random_reads, 1);
        }
        self.buffer.insert((file, page), data.clone());
        Ok(data)
    }

    /// Overwrites one page (write-through to the buffer pool).
    pub fn write_page(&self, file: FileId, page: PageId, data: &Page) -> StorageResult<()> {
        let entry = self.entry(file)?;
        entry.file.write_page(page, data)?;
        if Self::classify(&self.last_write, file, page.0) {
            AtomicIoStats::add(&self.stats.sequential_writes, 1);
        } else {
            AtomicIoStats::add(&self.stats.random_writes, 1);
        }
        self.buffer.update_if_resident((file, page), data);
        Ok(())
    }

    /// Appends one page at the end of a file.
    pub fn append_page(&self, file: FileId, data: &Page) -> StorageResult<PageId> {
        let entry = self.entry(file)?;
        let id = entry.file.append_page(data)?;
        // Appends at the end of a file are sequential whenever the previous
        // write targeted the preceding page of the same file.
        if Self::classify(&self.last_write, file, id.0) {
            AtomicIoStats::add(&self.stats.sequential_writes, 1);
        } else {
            AtomicIoStats::add(&self.stats.random_writes, 1);
        }
        Ok(id)
    }

    /// Grows a file with zeroed pages up to `pages` pages (counted as
    /// sequential writes, matching a bulk pre-allocation).
    pub fn grow_to(&self, file: FileId, pages: u64) -> StorageResult<()> {
        let current = self.num_pages(file)?;
        if pages <= current {
            return Ok(());
        }
        let empty = Page::empty();
        for _ in current..pages {
            self.append_page(file, &empty)?;
        }
        Ok(())
    }

    /// Reads every object stored in the page range `[range.start, range.end)`
    /// of `file`, in page order.
    pub fn read_objects(
        &self,
        file: FileId,
        range: Range<u64>,
    ) -> StorageResult<Vec<SpatialObject>> {
        let mut out = Vec::new();
        self.read_objects_into(file, range, &mut out)?;
        Ok(out)
    }

    /// Like [`StorageManager::read_objects`] but appends into `out`.
    pub fn read_objects_into(
        &self,
        file: FileId,
        range: Range<u64>,
        out: &mut Vec<SpatialObject>,
    ) -> StorageResult<usize> {
        let mut total = 0usize;
        for p in range {
            let page = self.read_page(file, PageId(p))?;
            let n = page.objects_into(out)?;
            total += n;
            AtomicIoStats::add(&self.stats.objects_scanned, n as u64);
        }
        Ok(total)
    }

    /// Appends the objects as densely packed pages at the end of `file`,
    /// returning the page range they occupy.
    ///
    /// The pages of one call are appended back to back; callers that append
    /// to the same file from several threads must serialize those calls (the
    /// engine's per-dataset and merger locks do) or the runs will interleave.
    pub fn append_objects(
        &self,
        file: FileId,
        objects: &[SpatialObject],
    ) -> StorageResult<Range<u64>> {
        let start = self.num_pages(file)?;
        for page in pack_objects(objects) {
            self.append_page(file, &page)?;
        }
        AtomicIoStats::add(&self.stats.objects_written, objects.len() as u64);
        Ok(start..self.num_pages(file)?)
    }

    /// Rewrites the objects into pages starting at `start_page`, growing the
    /// file if needed, and returns the page range used. Used by Space
    /// Odyssey's in-place partition refinement, which reuses the partition's
    /// old pages and appends any overflow at the end of the file.
    pub fn write_objects_at(
        &self,
        file: FileId,
        start_page: u64,
        objects: &[SpatialObject],
    ) -> StorageResult<Range<u64>> {
        let pages = pack_objects(objects);
        let end = start_page + pages.len() as u64;
        self.grow_to(file, end)?;
        for (i, page) in pages.iter().enumerate() {
            self.write_page(file, PageId(start_page + i as u64), page)?;
        }
        AtomicIoStats::add(&self.stats.objects_written, objects.len() as u64);
        Ok(start_page..end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_geom::{Aabb, DatasetId, ObjectId, Vec3};

    fn objs(n: u64) -> Vec<SpatialObject> {
        (0..n)
            .map(|i| {
                SpatialObject::new(
                    ObjectId(i),
                    DatasetId(0),
                    Aabb::from_min_max(Vec3::splat(i as f64), Vec3::splat(i as f64 + 1.0)),
                )
            })
            .collect()
    }

    #[test]
    fn create_files_and_names() {
        let m = StorageManager::in_memory();
        let a = m.create_file("alpha").unwrap();
        let b = m.create_file("beta").unwrap();
        assert_eq!(m.file_count(), 2);
        assert_eq!(m.file_name(a).unwrap(), "alpha");
        assert_eq!(m.file_name(b).unwrap(), "beta");
        assert_eq!(
            m.file_names(),
            vec!["alpha".to_string(), "beta".to_string()]
        );
        assert_eq!(m.stats().files_created, 2);
        assert!(m.file_name(FileId(9)).is_err());
        assert!(m.num_pages(FileId(9)).is_err());
    }

    #[test]
    fn append_and_read_objects_roundtrip() {
        let m = StorageManager::in_memory();
        let f = m.create_file("data").unwrap();
        let data = objs(200);
        let range = m.append_objects(f, &data).unwrap();
        assert_eq!(range, 0..4); // 200 objects / 63 per page = 4 pages
        let back = m.read_objects(f, range).unwrap();
        assert_eq!(back, data);
        assert_eq!(m.stats().objects_written, 200);
        assert!(m.stats().objects_scanned >= 200);
    }

    #[test]
    fn sequential_vs_random_classification() {
        let m = StorageManager::new(StorageOptions::in_memory(0)); // no cache
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(63 * 10)).unwrap();
        let before = m.stats();
        // Read pages 0..10 in order: first access random, rest sequential.
        for p in 0..10u64 {
            m.read_page(f, PageId(p)).unwrap();
        }
        let d = m.stats().since(&before).0;
        assert_eq!(d.random_reads, 1);
        assert_eq!(d.sequential_reads, 9);

        let before = m.stats();
        // Read every other page: all random.
        for p in (0..10u64).step_by(2) {
            m.read_page(f, PageId(p)).unwrap();
        }
        let d = m.stats().since(&before).0;
        assert_eq!(d.random_reads, 5);
        assert_eq!(d.sequential_reads, 0);
    }

    #[test]
    fn appends_are_sequential_writes() {
        let m = StorageManager::new(StorageOptions::in_memory(0));
        let f = m.create_file("data").unwrap();
        let before = m.stats();
        m.append_objects(f, &objs(63 * 5)).unwrap();
        let d = m.stats().since(&before).0;
        assert_eq!(d.random_writes, 1, "only the first append seeks");
        assert_eq!(d.sequential_writes, 4);
    }

    #[test]
    fn buffer_hits_avoid_device_reads() {
        let m = StorageManager::new(StorageOptions::in_memory(64));
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(63)).unwrap();
        m.read_page(f, PageId(0)).unwrap();
        let before = m.stats();
        m.read_page(f, PageId(0)).unwrap();
        let d = m.stats().since(&before).0;
        assert_eq!(d.pages_read(), 0);
        assert_eq!(d.buffer_hits, 1);
    }

    #[test]
    fn clear_cache_forces_rereads() {
        let m = StorageManager::new(StorageOptions::in_memory(64));
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(63)).unwrap();
        m.read_page(f, PageId(0)).unwrap();
        m.clear_cache();
        let before = m.stats();
        m.read_page(f, PageId(0)).unwrap();
        let d = m.stats().since(&before).0;
        assert_eq!(d.pages_read(), 1);
        assert_eq!(d.buffer_hits, 0);
    }

    #[test]
    fn write_objects_at_reuses_and_grows() {
        let m = StorageManager::in_memory();
        let f = m.create_file("data").unwrap();
        // Initially two pages worth of objects.
        m.append_objects(f, &objs(100)).unwrap();
        assert_eq!(m.num_pages(f).unwrap(), 2);
        // Rewrite starting at page 0 with more data than fits in two pages.
        let range = m.write_objects_at(f, 0, &objs(300)).unwrap();
        assert_eq!(range, 0..5);
        assert_eq!(m.num_pages(f).unwrap(), 5);
        let back = m.read_objects(f, 0..5).unwrap();
        assert_eq!(back.len(), 300);
    }

    #[test]
    fn write_page_out_of_range_errors() {
        let m = StorageManager::in_memory();
        let f = m.create_file("data").unwrap();
        assert!(m.write_page(f, PageId(3), &Page::empty()).is_err());
    }

    #[test]
    fn simulated_seconds_accumulate() {
        let m = StorageManager::new(StorageOptions::in_memory(0));
        let f = m.create_file("data").unwrap();
        m.append_objects(f, &objs(63 * 20)).unwrap();
        let snap = m.stats();
        assert!(m.total_seconds() > 0.0);
        for p in 0..20u64 {
            m.read_page(f, PageId(p)).unwrap();
        }
        let t = m.seconds_since(&snap);
        assert!(t > 0.0);
        assert!(m.total_seconds() > t);
    }

    #[test]
    fn disk_backend_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let m = StorageManager::new(StorageOptions::on_disk(dir.path(), 16));
        let f = m.create_file("data").unwrap();
        let data = objs(150);
        let range = m.append_objects(f, &data).unwrap();
        let back = m.read_objects(f, range).unwrap();
        assert_eq!(back, data);
        // Actual file exists on disk with the expected size.
        let entries: Vec<_> = std::fs::read_dir(dir.path()).unwrap().collect();
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn grow_to_is_idempotent() {
        let m = StorageManager::in_memory();
        let f = m.create_file("data").unwrap();
        m.grow_to(f, 4).unwrap();
        m.grow_to(f, 2).unwrap();
        assert_eq!(m.num_pages(f).unwrap(), 4);
    }

    #[test]
    fn note_objects_scanned_feeds_cost() {
        let m = StorageManager::in_memory();
        let before = m.total_seconds();
        m.note_objects_scanned(1_000_000);
        assert!(m.total_seconds() > before);
    }

    #[test]
    fn shared_reference_use_across_threads() {
        let m = StorageManager::new(StorageOptions::in_memory(2048));
        // One file per "dataset"; readers of distinct files run in parallel.
        let files: Vec<FileId> = (0..4)
            .map(|i| {
                let f = m.create_file(&format!("ds{i}")).unwrap();
                m.append_objects(f, &objs(63 * 8)).unwrap();
                f
            })
            .collect();
        std::thread::scope(|s| {
            for &f in &files {
                let m = &m;
                s.spawn(move || {
                    for _ in 0..10 {
                        let objects = m.read_objects(f, 0..8).unwrap();
                        assert_eq!(objects.len(), 63 * 8);
                    }
                });
            }
        });
        // Every page read is accounted for: 4 files × 10 rounds × 8 pages.
        let total = m.stats();
        assert_eq!(total.pages_read() + total.buffer_hits, 4 * 10 * 8);
    }

    #[test]
    fn concurrent_file_creation_yields_distinct_ids() {
        let m = StorageManager::in_memory();
        let ids = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let (m, ids) = (&m, &ids);
                s.spawn(move || {
                    for i in 0..16 {
                        let id = m.create_file(&format!("f{t}_{i}")).unwrap();
                        ids.lock().unwrap().push(id);
                    }
                });
            }
        });
        let mut ids = ids.into_inner().unwrap();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8 * 16);
        assert_eq!(m.file_count(), 8 * 16);
    }
}
