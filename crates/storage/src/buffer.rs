//! Bounded, concurrently shared buffer pool.
//!
//! The paper restricts every approach to the same main-memory footprint
//! (1 GB) so that dataset sizes exceed memory and disk behaviour dominates.
//! The [`BufferPool`] plays that role here: page reads go through it, hits
//! cost (almost) nothing in the cost model, and its capacity is the memory
//! budget knob of [`crate::StorageOptions`].
//!
//! # Concurrency
//!
//! The pool is safe to use through `&self` from many threads. Large pools
//! (≥ [`SHARD_MIN_CAPACITY`] pages) are split into [`SHARD_COUNT`] independent
//! shards, each its own mutex-protected LRU, so concurrent readers of
//! different pages rarely contend; eviction is then LRU *per shard* rather
//! than globally. Small pools keep a single shard and therefore exact global
//! LRU order (which the deterministic cost-model tests rely on).

use crate::file::FileId;
use crate::page::{Page, PageId};
use crate::sync::{Exclusive, LockClass};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// Key of a cached page.
pub type FramePageKey = (FileId, PageId);

/// Number of shards used by large pools.
pub const SHARD_COUNT: usize = 16;

/// Pools with at least this many pages of capacity are sharded.
pub const SHARD_MIN_CAPACITY: usize = 1024;

/// One LRU shard: the seed implementation's map + recency index.
#[derive(Default)]
struct Shard {
    tick: u64,
    frames: HashMap<FramePageKey, (Page, u64)>,
    lru: BTreeMap<u64, FramePageKey>,
}

impl Shard {
    fn get(&mut self, key: FramePageKey) -> Option<Page> {
        self.tick += 1;
        let tick = self.tick;
        if let Some((page, old_tick)) = self.frames.get_mut(&key) {
            self.lru.remove(old_tick);
            *old_tick = tick;
            let page = page.clone();
            self.lru.insert(tick, key);
            Some(page)
        } else {
            None
        }
    }

    /// Returns `true` if an eviction was necessary.
    fn insert(&mut self, key: FramePageKey, page: Page, capacity: usize) -> bool {
        self.tick += 1;
        let tick = self.tick;
        if let Some((slot, old_tick)) = self.frames.get_mut(&key) {
            *slot = page;
            self.lru.remove(old_tick);
            *old_tick = tick;
            self.lru.insert(tick, key);
            return false;
        }
        let mut evicted = false;
        if self.frames.len() >= capacity {
            if let Some((&oldest_tick, &oldest_key)) = self.lru.iter().next() {
                self.lru.remove(&oldest_tick);
                self.frames.remove(&oldest_key);
                evicted = true;
            }
        }
        self.frames.insert(key, (page, tick));
        self.lru.insert(tick, key);
        evicted
    }

    fn invalidate(&mut self, key: FramePageKey) {
        if let Some((_, tick)) = self.frames.remove(&key) {
            self.lru.remove(&tick);
        }
    }
}

/// A fixed-capacity page cache with least-recently-used eviction, shared
/// across query threads.
pub struct BufferPool {
    capacity: usize,
    capacity_per_shard: usize,
    shards: Vec<Exclusive<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("resident", &self.resident())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool that caches up to `capacity` pages. A capacity of zero
    /// disables caching entirely (every access goes to the device).
    pub fn new(capacity: usize) -> Self {
        let shard_count = if capacity >= SHARD_MIN_CAPACITY {
            SHARD_COUNT
        } else {
            1
        };
        BufferPool {
            capacity,
            capacity_per_shard: capacity.div_ceil(shard_count),
            shards: (0..shard_count)
                .map(|_| Exclusive::new(LockClass::BufferShard, Shard::default()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of resident pages.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of independently locked LRU shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of pages currently cached.
    pub fn resident(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.lock().frames.len())
            .sum()
    }

    /// Number of lookups that found the page cached.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that missed.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of pages evicted to respect the capacity.
    #[inline]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    // analyzer: lock(shard = BufferShard)
    fn shard(&self, key: &FramePageKey) -> &Exclusive<Shard> {
        // FileId in the high bits, page in the low bits; a multiplicative
        // hash spreads consecutive pages across shards.
        let mixed = ((key.0 .0 as u64) << 40 ^ key.1 .0).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(mixed >> 48) as usize % self.shards.len()]
    }

    /// Looks up a page, refreshing its recency on a hit.
    pub fn get(&self, key: FramePageKey) -> Option<Page> {
        let result = self.shard(&key).lock().get(key);
        match &result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Inserts (or refreshes) a page, evicting the least recently used page
    /// of the key's shard if the shard is full. No-op when the capacity is
    /// zero.
    pub fn insert(&self, key: FramePageKey, page: Page) {
        if self.capacity == 0 {
            return;
        }
        let evicted = self
            .shard(&key)
            .lock()
            .insert(key, page, self.capacity_per_shard);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Updates a page if (and only if) it is resident; used by write-through
    /// so cached copies never go stale.
    pub fn update_if_resident(&self, key: FramePageKey, page: &Page) {
        let mut shard = self.shard(&key).lock();
        if let Some((slot, _)) = shard.frames.get_mut(&key) {
            *slot = page.clone();
        }
    }

    /// Removes a cached page (e.g. when its file is dropped).
    pub fn invalidate(&self, key: FramePageKey) {
        self.shard(&key).lock().invalidate(key);
    }

    /// Removes every cached page of the given file.
    pub fn invalidate_file(&self, file: FileId) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            let keys: Vec<FramePageKey> = shard
                .frames
                .keys()
                .filter(|(f, _)| *f == file)
                .copied()
                .collect();
            for k in keys {
                shard.invalidate(k);
            }
        }
    }

    /// Drops every cached page (the paper clears caches between phases).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.frames.clear();
            shard.lru.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(f: u32, p: u64) -> FramePageKey {
        (FileId(f), PageId(p))
    }

    #[test]
    fn empty_pool_misses() {
        let pool = BufferPool::new(4);
        assert!(pool.get(key(0, 0)).is_none());
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 0);
    }

    #[test]
    fn insert_then_hit() {
        let pool = BufferPool::new(4);
        pool.insert(key(0, 1), Page::empty());
        assert!(pool.get(key(0, 1)).is_some());
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.resident(), 1);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let pool = BufferPool::new(0);
        pool.insert(key(0, 1), Page::empty());
        assert_eq!(pool.resident(), 0);
        assert!(pool.get(key(0, 1)).is_none());
    }

    #[test]
    fn lru_eviction_order() {
        let pool = BufferPool::new(2);
        pool.insert(key(0, 0), Page::empty());
        pool.insert(key(0, 1), Page::empty());
        // Touch page 0 so page 1 becomes the LRU victim.
        assert!(pool.get(key(0, 0)).is_some());
        pool.insert(key(0, 2), Page::empty());
        assert_eq!(pool.resident(), 2);
        assert_eq!(pool.evictions(), 1);
        assert!(pool.get(key(0, 0)).is_some(), "recently used page survives");
        assert!(pool.get(key(0, 1)).is_none(), "LRU page evicted");
        assert!(pool.get(key(0, 2)).is_some());
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let pool = BufferPool::new(2);
        pool.insert(key(0, 0), Page::empty());
        pool.insert(key(0, 0), Page::empty());
        assert_eq!(pool.resident(), 1);
        pool.insert(key(0, 1), Page::empty());
        pool.insert(key(0, 2), Page::empty());
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn update_if_resident_only_touches_existing() {
        use odyssey_geom::{Aabb, DatasetId, ObjectId, SpatialObject, Vec3};
        let pool = BufferPool::new(2);
        let obj = SpatialObject::new(
            ObjectId(7),
            DatasetId(0),
            Aabb::from_min_max(Vec3::ZERO, Vec3::ONE),
        );
        let page = Page::from_objects(&[obj]).unwrap();
        pool.update_if_resident(key(0, 0), &page);
        assert_eq!(pool.resident(), 0);
        pool.insert(key(0, 0), Page::empty());
        pool.update_if_resident(key(0, 0), &page);
        let got = pool.get(key(0, 0)).unwrap();
        assert_eq!(got.objects().unwrap().len(), 1);
    }

    #[test]
    fn invalidation() {
        let pool = BufferPool::new(8);
        pool.insert(key(0, 0), Page::empty());
        pool.insert(key(0, 1), Page::empty());
        pool.insert(key(1, 0), Page::empty());
        pool.invalidate(key(0, 0));
        assert!(pool.get(key(0, 0)).is_none());
        pool.invalidate_file(FileId(0));
        assert!(pool.get(key(0, 1)).is_none());
        assert!(pool.get(key(1, 0)).is_some());
        pool.clear();
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn heavy_insertion_respects_capacity() {
        let pool = BufferPool::new(16);
        for i in 0..1000u64 {
            pool.insert(key(0, i), Page::empty());
            assert!(pool.resident() <= 16);
        }
        assert_eq!(pool.evictions(), 1000 - 16);
    }

    #[test]
    fn small_pools_are_single_shard_large_pools_are_sharded() {
        assert_eq!(BufferPool::new(16).shard_count(), 1);
        assert_eq!(
            BufferPool::new(SHARD_MIN_CAPACITY).shard_count(),
            SHARD_COUNT
        );
    }

    #[test]
    fn sharded_pool_respects_total_capacity_approximately() {
        let pool = BufferPool::new(SHARD_MIN_CAPACITY);
        for i in 0..100_000u64 {
            pool.insert(key((i % 7) as u32, i), Page::empty());
        }
        // Per-shard capacity is capacity/SHARD_COUNT rounded up, so the pool
        // may exceed the nominal capacity by at most one page per shard.
        assert!(pool.resident() <= SHARD_MIN_CAPACITY + SHARD_COUNT);
        assert!(
            pool.resident() >= SHARD_MIN_CAPACITY / 2,
            "shards should fill up"
        );
    }

    #[test]
    fn concurrent_access_is_safe_and_consistent() {
        let pool = BufferPool::new(SHARD_MIN_CAPACITY);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let pool = &pool;
                s.spawn(move || {
                    for i in 0..500u64 {
                        let k = key(t as u32, i);
                        pool.insert(k, Page::empty());
                        let _ = pool.get(k);
                    }
                });
            }
        });
        assert_eq!(pool.hits() + pool.misses(), 8 * 500);
        assert!(pool.resident() <= SHARD_MIN_CAPACITY + SHARD_COUNT);
    }
}
