//! Bounded buffer pool.
//!
//! The paper restricts every approach to the same main-memory footprint
//! (1 GB) so that dataset sizes exceed memory and disk behaviour dominates.
//! The [`BufferPool`] plays that role here: page reads go through it, hits
//! cost (almost) nothing in the cost model, and its capacity is the memory
//! budget knob of [`crate::StorageOptions`].

use crate::file::FileId;
use crate::page::{Page, PageId};
use std::collections::{BTreeMap, HashMap};

/// Key of a cached page.
pub type FramePageKey = (FileId, PageId);

/// A fixed-capacity page cache with least-recently-used eviction.
pub struct BufferPool {
    capacity: usize,
    tick: u64,
    frames: HashMap<FramePageKey, (Page, u64)>,
    lru: BTreeMap<u64, FramePageKey>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("resident", &self.frames.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .field("evictions", &self.evictions)
            .finish()
    }
}

impl BufferPool {
    /// Creates a pool that caches up to `capacity` pages. A capacity of zero
    /// disables caching entirely (every access goes to the device).
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity,
            tick: 0,
            frames: HashMap::with_capacity(capacity.min(1 << 20)),
            lru: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Maximum number of resident pages.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently cached.
    #[inline]
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Number of lookups that found the page cached.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that missed.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of pages evicted to respect the capacity.
    #[inline]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    fn touch(&mut self, key: FramePageKey) {
        self.tick += 1;
        if let Some((_, old_tick)) = self.frames.get_mut(&key) {
            self.lru.remove(old_tick);
            *old_tick = self.tick;
            self.lru.insert(self.tick, key);
        }
    }

    /// Looks up a page, refreshing its recency on a hit.
    pub fn get(&mut self, key: FramePageKey) -> Option<Page> {
        if self.frames.contains_key(&key) {
            self.touch(key);
            self.hits += 1;
            self.frames.get(&key).map(|(p, _)| p.clone())
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts (or refreshes) a page, evicting the least recently used page
    /// if the pool is full. No-op when the capacity is zero.
    pub fn insert(&mut self, key: FramePageKey, page: Page) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some((slot, old_tick)) = self.frames.get_mut(&key) {
            *slot = page;
            self.lru.remove(old_tick);
            *old_tick = self.tick;
            self.lru.insert(self.tick, key);
            return;
        }
        if self.frames.len() >= self.capacity {
            if let Some((&oldest_tick, &oldest_key)) = self.lru.iter().next() {
                self.lru.remove(&oldest_tick);
                self.frames.remove(&oldest_key);
                self.evictions += 1;
            }
        }
        self.frames.insert(key, (page, self.tick));
        self.lru.insert(self.tick, key);
    }

    /// Updates a page if (and only if) it is resident; used by write-through
    /// so cached copies never go stale.
    pub fn update_if_resident(&mut self, key: FramePageKey, page: &Page) {
        if let Some((slot, _)) = self.frames.get_mut(&key) {
            *slot = page.clone();
        }
    }

    /// Removes a cached page (e.g. when its file is dropped).
    pub fn invalidate(&mut self, key: FramePageKey) {
        if let Some((_, tick)) = self.frames.remove(&key) {
            self.lru.remove(&tick);
        }
    }

    /// Removes every cached page of the given file.
    pub fn invalidate_file(&mut self, file: FileId) {
        let keys: Vec<FramePageKey> =
            self.frames.keys().filter(|(f, _)| *f == file).copied().collect();
        for k in keys {
            self.invalidate(k);
        }
    }

    /// Drops every cached page (the paper clears caches between phases).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.lru.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(f: u32, p: u64) -> FramePageKey {
        (FileId(f), PageId(p))
    }

    #[test]
    fn empty_pool_misses() {
        let mut pool = BufferPool::new(4);
        assert!(pool.get(key(0, 0)).is_none());
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 0);
    }

    #[test]
    fn insert_then_hit() {
        let mut pool = BufferPool::new(4);
        pool.insert(key(0, 1), Page::empty());
        assert!(pool.get(key(0, 1)).is_some());
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.resident(), 1);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut pool = BufferPool::new(0);
        pool.insert(key(0, 1), Page::empty());
        assert_eq!(pool.resident(), 0);
        assert!(pool.get(key(0, 1)).is_none());
    }

    #[test]
    fn lru_eviction_order() {
        let mut pool = BufferPool::new(2);
        pool.insert(key(0, 0), Page::empty());
        pool.insert(key(0, 1), Page::empty());
        // Touch page 0 so page 1 becomes the LRU victim.
        assert!(pool.get(key(0, 0)).is_some());
        pool.insert(key(0, 2), Page::empty());
        assert_eq!(pool.resident(), 2);
        assert_eq!(pool.evictions(), 1);
        assert!(pool.get(key(0, 0)).is_some(), "recently used page survives");
        assert!(pool.get(key(0, 1)).is_none(), "LRU page evicted");
        assert!(pool.get(key(0, 2)).is_some());
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut pool = BufferPool::new(2);
        pool.insert(key(0, 0), Page::empty());
        pool.insert(key(0, 0), Page::empty());
        assert_eq!(pool.resident(), 1);
        pool.insert(key(0, 1), Page::empty());
        pool.insert(key(0, 2), Page::empty());
        assert_eq!(pool.resident(), 2);
    }

    #[test]
    fn update_if_resident_only_touches_existing() {
        use odyssey_geom::{Aabb, DatasetId, ObjectId, SpatialObject, Vec3};
        let mut pool = BufferPool::new(2);
        let obj = SpatialObject::new(ObjectId(7), DatasetId(0), Aabb::from_min_max(Vec3::ZERO, Vec3::ONE));
        let page = Page::from_objects(&[obj]).unwrap();
        pool.update_if_resident(key(0, 0), &page);
        assert_eq!(pool.resident(), 0);
        pool.insert(key(0, 0), Page::empty());
        pool.update_if_resident(key(0, 0), &page);
        let got = pool.get(key(0, 0)).unwrap();
        assert_eq!(got.objects().unwrap().len(), 1);
    }

    #[test]
    fn invalidation() {
        let mut pool = BufferPool::new(8);
        pool.insert(key(0, 0), Page::empty());
        pool.insert(key(0, 1), Page::empty());
        pool.insert(key(1, 0), Page::empty());
        pool.invalidate(key(0, 0));
        assert!(pool.get(key(0, 0)).is_none());
        pool.invalidate_file(FileId(0));
        assert!(pool.get(key(0, 1)).is_none());
        assert!(pool.get(key(1, 0)).is_some());
        pool.clear();
        assert_eq!(pool.resident(), 0);
    }

    #[test]
    fn heavy_insertion_respects_capacity() {
        let mut pool = BufferPool::new(16);
        for i in 0..1000u64 {
            pool.insert(key(0, i), Page::empty());
            assert!(pool.resident() <= 16);
        }
        assert_eq!(pool.evictions(), 1000 - 16);
    }
}
