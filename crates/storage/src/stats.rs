//! I/O and processing counters.
//!
//! The paper's conclusions rest on *how* data is accessed: approaches that
//! scan partitions sequentially win over approaches that chase pages randomly
//! across a large index, and approaches that defer indexing pay no upfront
//! cost. [`IoStats`] counts exactly these events; the [`crate::CostModel`]
//! turns the counters into simulated seconds.

use serde::{Deserialize, Serialize};
use std::ops::Sub;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing counters of storage activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStats {
    /// Pages read immediately after the previously read page of the same file
    /// (no seek required).
    pub sequential_reads: u64,
    /// Pages read at a non-consecutive position (requires a seek).
    pub random_reads: u64,
    /// Pages written immediately after the previously written page of the
    /// same file.
    pub sequential_writes: u64,
    /// Pages written at a non-consecutive position.
    pub random_writes: u64,
    /// Page reads served from the buffer pool (no device access at all).
    pub buffer_hits: u64,
    /// Object records decoded / examined by intersection tests.
    pub objects_scanned: u64,
    /// Object records written (encoded into pages).
    pub objects_written: u64,
    /// Object records accepted through the online-ingestion path (a subset of
    /// `objects_written`: every ingested object is also written, first to its
    /// raw file and possibly again into partition or merge files).
    pub objects_ingested: u64,
    /// Number of files created.
    pub files_created: u64,
    /// Number of files deleted (merge-file eviction, compaction's
    /// copy-forward swap).
    pub files_deleted: u64,
    /// Queries answered entirely from the engine's result cache (no data
    /// pages touched).
    pub cache_hits: u64,
    /// Queries that consulted the result cache and found no usable entry.
    pub cache_misses: u64,
    /// Queries that reused the fresh per-dataset components of a cache entry
    /// and re-executed only the stale remainder.
    pub cache_partial_reuses: u64,
    /// Object records an early-exiting execution provably did *not* have to
    /// examine: partitions pruned by kNN mindist bounds or counted from
    /// metadata without reading their pages.
    pub rows_skipped_by_early_exit: u64,
    /// Maintenance jobs enqueued by the engine's trigger sites (deduplicated
    /// enqueues; a coalesced trigger does not count again).
    pub maintenance_jobs_enqueued: u64,
    /// Maintenance jobs run to completion (a multi-step compaction counts
    /// once, at its commit).
    pub maintenance_jobs_completed: u64,
    /// Maintenance jobs re-enqueued by recovery from checkpointed progress.
    pub maintenance_jobs_resumed: u64,
    /// High-water mark of the maintenance queue depth (monotonic, so the
    /// counter stays subtractable like the others).
    pub maintenance_queue_peak: u64,
    /// Pages written by maintenance job steps (compaction copy-forward,
    /// repair appends, split rewrites).
    pub maintenance_pages_written: u64,
}

impl IoStats {
    /// Total pages read from the device (excluding buffer hits).
    #[inline]
    pub fn pages_read(&self) -> u64 {
        self.sequential_reads + self.random_reads
    }

    /// Total pages written to the device.
    #[inline]
    pub fn pages_written(&self) -> u64 {
        self.sequential_writes + self.random_writes
    }

    /// Total seeks implied by the random accesses.
    #[inline]
    pub fn seeks(&self) -> u64 {
        self.random_reads + self.random_writes
    }

    /// Total bytes transferred to or from the device.
    #[inline]
    pub fn bytes_transferred(&self) -> u64 {
        (self.pages_read() + self.pages_written()) * crate::page::PAGE_SIZE as u64
    }

    /// Difference since an earlier snapshot (`self` must be the later one).
    #[inline]
    pub fn since(&self, earlier: &IoStats) -> StatsDelta {
        StatsDelta(*self - *earlier)
    }

    /// Adds another set of counters into this one.
    pub fn merge(&mut self, other: &IoStats) {
        self.sequential_reads += other.sequential_reads;
        self.random_reads += other.random_reads;
        self.sequential_writes += other.sequential_writes;
        self.random_writes += other.random_writes;
        self.buffer_hits += other.buffer_hits;
        self.objects_scanned += other.objects_scanned;
        self.objects_written += other.objects_written;
        self.objects_ingested += other.objects_ingested;
        self.files_created += other.files_created;
        self.files_deleted += other.files_deleted;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_partial_reuses += other.cache_partial_reuses;
        self.rows_skipped_by_early_exit += other.rows_skipped_by_early_exit;
        self.maintenance_jobs_enqueued += other.maintenance_jobs_enqueued;
        self.maintenance_jobs_completed += other.maintenance_jobs_completed;
        self.maintenance_jobs_resumed += other.maintenance_jobs_resumed;
        self.maintenance_queue_peak = self
            .maintenance_queue_peak
            .max(other.maintenance_queue_peak);
        self.maintenance_pages_written += other.maintenance_pages_written;
    }
}

impl Sub for IoStats {
    type Output = IoStats;

    fn sub(self, rhs: IoStats) -> IoStats {
        IoStats {
            sequential_reads: self.sequential_reads - rhs.sequential_reads,
            random_reads: self.random_reads - rhs.random_reads,
            sequential_writes: self.sequential_writes - rhs.sequential_writes,
            random_writes: self.random_writes - rhs.random_writes,
            buffer_hits: self.buffer_hits - rhs.buffer_hits,
            objects_scanned: self.objects_scanned - rhs.objects_scanned,
            objects_written: self.objects_written - rhs.objects_written,
            objects_ingested: self.objects_ingested - rhs.objects_ingested,
            files_created: self.files_created - rhs.files_created,
            files_deleted: self.files_deleted - rhs.files_deleted,
            cache_hits: self.cache_hits - rhs.cache_hits,
            cache_misses: self.cache_misses - rhs.cache_misses,
            cache_partial_reuses: self.cache_partial_reuses - rhs.cache_partial_reuses,
            rows_skipped_by_early_exit: self.rows_skipped_by_early_exit
                - rhs.rows_skipped_by_early_exit,
            maintenance_jobs_enqueued: self.maintenance_jobs_enqueued
                - rhs.maintenance_jobs_enqueued,
            maintenance_jobs_completed: self.maintenance_jobs_completed
                - rhs.maintenance_jobs_completed,
            maintenance_jobs_resumed: self.maintenance_jobs_resumed - rhs.maintenance_jobs_resumed,
            // The peak is a high-water mark, not a sum; an interval's "peak"
            // is the later absolute peak.
            maintenance_queue_peak: self.maintenance_queue_peak,
            maintenance_pages_written: self.maintenance_pages_written
                - rhs.maintenance_pages_written,
        }
    }
}

/// Concurrently updatable I/O counters.
///
/// The [`crate::StorageManager`] is shared by reference across query threads,
/// so its counters are plain atomics. [`AtomicIoStats::snapshot`] reads each
/// counter individually — under concurrent updates the snapshot is not a
/// single instant across counters, which is fine for the throughput and
/// cost-model aggregations it feeds (each counter is itself exact).
#[derive(Debug, Default)]
pub struct AtomicIoStats {
    /// See [`IoStats::sequential_reads`].
    pub sequential_reads: AtomicU64,
    /// See [`IoStats::random_reads`].
    pub random_reads: AtomicU64,
    /// See [`IoStats::sequential_writes`].
    pub sequential_writes: AtomicU64,
    /// See [`IoStats::random_writes`].
    pub random_writes: AtomicU64,
    /// See [`IoStats::buffer_hits`].
    pub buffer_hits: AtomicU64,
    /// See [`IoStats::objects_scanned`].
    pub objects_scanned: AtomicU64,
    /// See [`IoStats::objects_written`].
    pub objects_written: AtomicU64,
    /// See [`IoStats::objects_ingested`].
    pub objects_ingested: AtomicU64,
    /// See [`IoStats::files_created`].
    pub files_created: AtomicU64,
    /// See [`IoStats::files_deleted`].
    pub files_deleted: AtomicU64,
    /// See [`IoStats::cache_hits`].
    pub cache_hits: AtomicU64,
    /// See [`IoStats::cache_misses`].
    pub cache_misses: AtomicU64,
    /// See [`IoStats::cache_partial_reuses`].
    pub cache_partial_reuses: AtomicU64,
    /// See [`IoStats::rows_skipped_by_early_exit`].
    pub rows_skipped_by_early_exit: AtomicU64,
    /// See [`IoStats::maintenance_jobs_enqueued`].
    pub maintenance_jobs_enqueued: AtomicU64,
    /// See [`IoStats::maintenance_jobs_completed`].
    pub maintenance_jobs_completed: AtomicU64,
    /// See [`IoStats::maintenance_jobs_resumed`].
    pub maintenance_jobs_resumed: AtomicU64,
    /// See [`IoStats::maintenance_queue_peak`].
    pub maintenance_queue_peak: AtomicU64,
    /// See [`IoStats::maintenance_pages_written`].
    pub maintenance_pages_written: AtomicU64,
}

impl AtomicIoStats {
    /// Adds `n` to one counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises a high-water-mark counter to at least `n`.
    #[inline]
    pub fn raise(counter: &AtomicU64, n: u64) {
        counter.fetch_max(n, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            sequential_reads: self.sequential_reads.load(Ordering::Relaxed),
            random_reads: self.random_reads.load(Ordering::Relaxed),
            sequential_writes: self.sequential_writes.load(Ordering::Relaxed),
            random_writes: self.random_writes.load(Ordering::Relaxed),
            buffer_hits: self.buffer_hits.load(Ordering::Relaxed),
            objects_scanned: self.objects_scanned.load(Ordering::Relaxed),
            objects_written: self.objects_written.load(Ordering::Relaxed),
            objects_ingested: self.objects_ingested.load(Ordering::Relaxed),
            files_created: self.files_created.load(Ordering::Relaxed),
            files_deleted: self.files_deleted.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_partial_reuses: self.cache_partial_reuses.load(Ordering::Relaxed),
            rows_skipped_by_early_exit: self.rows_skipped_by_early_exit.load(Ordering::Relaxed),
            maintenance_jobs_enqueued: self.maintenance_jobs_enqueued.load(Ordering::Relaxed),
            maintenance_jobs_completed: self.maintenance_jobs_completed.load(Ordering::Relaxed),
            maintenance_jobs_resumed: self.maintenance_jobs_resumed.load(Ordering::Relaxed),
            maintenance_queue_peak: self.maintenance_queue_peak.load(Ordering::Relaxed),
            maintenance_pages_written: self.maintenance_pages_written.load(Ordering::Relaxed),
        }
    }
}

/// The activity between two [`IoStats`] snapshots (e.g. one query).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsDelta(pub IoStats);

impl StatsDelta {
    /// The underlying counters of the interval.
    #[inline]
    pub fn stats(&self) -> &IoStats {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IoStats {
        IoStats {
            sequential_reads: 10,
            random_reads: 3,
            sequential_writes: 5,
            random_writes: 2,
            buffer_hits: 7,
            objects_scanned: 100,
            objects_written: 50,
            objects_ingested: 20,
            files_created: 1,
            files_deleted: 0,
            cache_hits: 4,
            cache_misses: 6,
            cache_partial_reuses: 2,
            rows_skipped_by_early_exit: 30,
            maintenance_jobs_enqueued: 5,
            maintenance_jobs_completed: 4,
            maintenance_jobs_resumed: 1,
            maintenance_queue_peak: 3,
            maintenance_pages_written: 8,
        }
    }

    #[test]
    fn totals() {
        let s = sample();
        assert_eq!(s.pages_read(), 13);
        assert_eq!(s.pages_written(), 7);
        assert_eq!(s.seeks(), 5);
        assert_eq!(s.bytes_transferred(), 20 * 4096);
    }

    #[test]
    fn subtraction_and_since() {
        let earlier = IoStats {
            sequential_reads: 4,
            ..Default::default()
        };
        let later = sample();
        let delta = later.since(&earlier);
        assert_eq!(delta.stats().sequential_reads, 6);
        assert_eq!(delta.stats().random_reads, 3);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = sample();
        a.merge(&sample());
        assert_eq!(a.pages_read(), 26);
        assert_eq!(a.objects_scanned, 200);
        assert_eq!(a.objects_ingested, 40);
        assert_eq!(a.files_created, 2);
        assert_eq!(a.cache_hits, 8);
        assert_eq!(a.cache_misses, 12);
        assert_eq!(a.cache_partial_reuses, 4);
        assert_eq!(a.rows_skipped_by_early_exit, 60);
        assert_eq!(a.maintenance_jobs_enqueued, 10);
        assert_eq!(a.maintenance_jobs_completed, 8);
        assert_eq!(a.maintenance_jobs_resumed, 2);
        assert_eq!(a.maintenance_queue_peak, 3, "peak merges as max, not sum");
        assert_eq!(a.maintenance_pages_written, 16);
    }

    #[test]
    fn default_is_zero() {
        let z = IoStats::default();
        assert_eq!(z.pages_read(), 0);
        assert_eq!(z.pages_written(), 0);
        assert_eq!(z.bytes_transferred(), 0);
    }
}
