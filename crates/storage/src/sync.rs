//! Lock-order-aware synchronization primitives.
//!
//! Every shared-state lock in the engine belongs to a [`LockClass`], and the
//! classes form a total order (see `odyssey-core`'s crate docs for the
//! canonical table). [`Shared`] wraps an [`RwLock`], [`Exclusive`] wraps a
//! [`Mutex`]; both take their class at construction time, so a lock's place
//! in the order is declared exactly once, next to the data it protects.
//!
//! The wrappers buy three things over the raw primitives:
//!
//! * **No guard `.unwrap()`s.** Poisoning is handled in one place:
//!   a poisoned lock means another thread panicked while holding it, the
//!   protected state is suspect, and continuing would propagate corruption —
//!   so the helper panics with a message naming the lock class. Call sites
//!   get plain guards back and stay `unwrap`-free.
//! * **A static-analysis anchor.** The `odyssey-analyzer` crate classifies
//!   each lock by the `LockClass` named at its `Shared::new` /
//!   `Exclusive::new` construction site and checks every acquisition edge
//!   in the workspace against the canonical order.
//! * **A runtime cross-check.** Under the `lock-order-check` feature each
//!   acquisition pushes its class onto a thread-local stack and panics on a
//!   rank inversion; the observed edge set is recorded globally so a test
//!   can assert it is a subset of the statically extracted graph.
//!
//! Same-class nesting is permitted only for classes where the code nests
//! distinct instances in a well-defined order (per-dataset locks are taken
//! in dataset-id order, work cells are disjoint); [`LockClass::allows_self_nesting`]
//! lists them.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Rank of every lock in the engine's canonical acquisition order.
///
/// A thread may acquire a lock only while holding locks of *strictly lower*
/// rank (or equal rank where [`LockClass::allows_self_nesting`] permits).
/// The numeric discriminants are the ranks; the canonical table lives in the
/// `odyssey-core` crate docs and is the analyzer's source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum LockClass {
    /// Serving-tier request queue (`odyssey-serve`'s dispatcher state).
    /// Outermost by construction: the front-end must release it before
    /// touching any engine or storage lock, so a slow engine call can never
    /// block request admission.
    ServeQueue = 0,
    /// Engine-level merge directory (`SpaceOdyssey::merger`).
    Merger = 1,
    /// Engine-level statistics collector (`SpaceOdyssey::stats`).
    Stats = 2,
    /// Maintenance scheduler queue state (`MaintenanceScheduler::sched`).
    SchedulerQueue = 3,
    /// Per-dataset octree index state (`DatasetIndex::state`).
    DatasetState = 4,
    /// Per-dataset raw-file descriptor (`DatasetIndex::raw`).
    DatasetRaw = 5,
    /// Engine result cache (`ResultCache::inner`).
    ResultCache = 6,
    /// Storage manager's WAL handle slot (`StorageManager::wal`).
    Wal = 7,
    /// Storage manager's file table (`StorageManager::files`).
    StorageFiles = 8,
    /// A `MetaWal`'s internal append state (`MetaWal::wal_state`).
    WalState = 9,
    /// A buffer-pool LRU shard (`BufferPool::shards`).
    BufferShard = 10,
    /// A paged file's internal state (`MemFile::pages`,
    /// `DiskFile::num_pages`, `FaultInjectingFile::writes_left`).
    FilePages = 11,
    /// A leaf work cell: single-writer result slots and report accumulators
    /// used by scoped fan-out helpers. Always the innermost lock.
    WorkCell = 12,
}

impl LockClass {
    /// Numeric rank in the canonical order (lower acquires first).
    #[inline]
    pub fn rank(self) -> u8 {
        self as u8
    }

    /// Short stable name used in panic messages and analyzer reports.
    pub fn name(self) -> &'static str {
        match self {
            LockClass::ServeQueue => "ServeQueue",
            LockClass::Merger => "Merger",
            LockClass::Stats => "Stats",
            LockClass::SchedulerQueue => "SchedulerQueue",
            LockClass::DatasetState => "DatasetState",
            LockClass::DatasetRaw => "DatasetRaw",
            LockClass::ResultCache => "ResultCache",
            LockClass::Wal => "Wal",
            LockClass::StorageFiles => "StorageFiles",
            LockClass::WalState => "WalState",
            LockClass::BufferShard => "BufferShard",
            LockClass::FilePages => "FilePages",
            LockClass::WorkCell => "WorkCell",
        }
    }

    /// All classes, in rank order.
    pub const ALL: [LockClass; 13] = [
        LockClass::ServeQueue,
        LockClass::Merger,
        LockClass::Stats,
        LockClass::SchedulerQueue,
        LockClass::DatasetState,
        LockClass::DatasetRaw,
        LockClass::ResultCache,
        LockClass::Wal,
        LockClass::StorageFiles,
        LockClass::WalState,
        LockClass::BufferShard,
        LockClass::FilePages,
        LockClass::WorkCell,
    ];

    /// Parses the stable [`LockClass::name`] back into the class.
    pub fn parse(name: &str) -> Option<LockClass> {
        LockClass::ALL.iter().copied().find(|c| c.name() == name)
    }

    /// Whether two *distinct instances* of this class may be held at once.
    ///
    /// * `DatasetState` / `DatasetRaw`: per-dataset locks are acquired in
    ///   ascending dataset-id order by everything that takes more than one.
    /// * `WorkCell`: each cell has exactly one writer; cells are disjoint.
    pub fn allows_self_nesting(self) -> bool {
        matches!(
            self,
            LockClass::DatasetState | LockClass::DatasetRaw | LockClass::WorkCell
        )
    }
}

/// Panic message for a poisoned lock: the thread that held it panicked, so
/// the protected state is not trustworthy.
fn poisoned(class: LockClass) -> ! {
    panic!(
        "lock {} is poisoned: a thread panicked while holding it, \
         the protected state may be inconsistent",
        class.name()
    )
}

/// Multi-reader lock with a declared [`LockClass`] (wraps [`RwLock`]).
#[derive(Debug, Default)]
pub struct Shared<T> {
    class_rank: u8,
    inner: RwLock<T>,
}

impl<T> Shared<T> {
    /// Wraps `value` in a reader-writer lock of the given class.
    pub fn new(class: LockClass, value: T) -> Self {
        Shared {
            class_rank: class.rank(),
            inner: RwLock::new(value),
        }
    }

    #[inline]
    fn class(&self) -> LockClass {
        LockClass::ALL[self.class_rank as usize]
    }

    /// Acquires shared read access, propagating poison as a panic.
    #[inline]
    pub fn read(&self) -> SharedReadGuard<'_, T> {
        let _order = tracker::acquire(self.class());
        match self.inner.read() {
            Ok(guard) => SharedReadGuard { guard, _order },
            Err(_) => poisoned(self.class()),
        }
    }

    /// Acquires exclusive write access, propagating poison as a panic.
    #[inline]
    pub fn write(&self) -> SharedWriteGuard<'_, T> {
        let _order = tracker::acquire(self.class());
        match self.inner.write() {
            Ok(guard) => SharedWriteGuard { guard, _order },
            Err(_) => poisoned(self.class()),
        }
    }

    /// Consumes the lock, returning the value (poison propagates as a panic).
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(_) => poisoned(LockClass::ALL[self.class_rank as usize]),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(_) => poisoned(LockClass::ALL[self.class_rank as usize]),
        }
    }
}

/// Read guard returned by [`Shared::read`].
#[derive(Debug)]
pub struct SharedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    _order: tracker::Held,
}

impl<T> std::ops::Deref for SharedReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Write guard returned by [`Shared::write`].
#[derive(Debug)]
pub struct SharedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    _order: tracker::Held,
}

impl<T> std::ops::Deref for SharedWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for SharedWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Mutual-exclusion lock with a declared [`LockClass`] (wraps [`Mutex`]).
#[derive(Debug, Default)]
pub struct Exclusive<T> {
    class_rank: u8,
    inner: Mutex<T>,
}

impl<T> Exclusive<T> {
    /// Wraps `value` in a mutex of the given class.
    pub fn new(class: LockClass, value: T) -> Self {
        Exclusive {
            class_rank: class.rank(),
            inner: Mutex::new(value),
        }
    }

    #[inline]
    fn class(&self) -> LockClass {
        LockClass::ALL[self.class_rank as usize]
    }

    /// Acquires the lock, propagating poison as a panic.
    #[inline]
    pub fn lock(&self) -> ExclusiveGuard<'_, T> {
        let _order = tracker::acquire(self.class());
        match self.inner.lock() {
            Ok(guard) => ExclusiveGuard { guard, _order },
            Err(_) => poisoned(self.class()),
        }
    }

    /// Consumes the lock, returning the value (poison propagates as a panic).
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(_) => poisoned(LockClass::ALL[self.class_rank as usize]),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(_) => poisoned(LockClass::ALL[self.class_rank as usize]),
        }
    }

    /// Blocks on `cond` until it is signalled, releasing the lock while
    /// waiting. The guard's order slot is released for the duration of the
    /// wait — a blocked waiter holds the mutex's *slot* but not the mutex —
    /// and re-registered on wakeup. As with [`Condvar::wait`], spurious
    /// wakeups are possible; callers re-check their predicate.
    pub fn wait<'a>(&self, guard: ExclusiveGuard<'a, T>, cond: &Condvar) -> ExclusiveGuard<'a, T> {
        let ExclusiveGuard { guard: raw, _order } = guard;
        drop(_order);
        let raw = match cond.wait(raw) {
            Ok(raw) => raw,
            Err(_) => poisoned(self.class()),
        };
        ExclusiveGuard {
            guard: raw,
            _order: tracker::acquire(self.class()),
        }
    }

    /// Blocks on `cond` until `pred` returns `false`, releasing the lock
    /// while waiting (the [`Condvar`] analogue of a `while pred { wait }`
    /// loop). The lock's order slot is released for the duration of each
    /// wait — a blocked waiter holds the mutex's *slot* but not the mutex.
    pub fn wait_while<'a, F>(
        &self,
        mut guard: ExclusiveGuard<'a, T>,
        cond: &Condvar,
        mut pred: F,
    ) -> ExclusiveGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        while pred(&mut guard.guard) {
            let ExclusiveGuard { guard: raw, _order } = guard;
            drop(_order);
            let raw = match cond.wait(raw) {
                Ok(raw) => raw,
                Err(_) => poisoned(self.class()),
            };
            guard = ExclusiveGuard {
                guard: raw,
                _order: tracker::acquire(self.class()),
            };
        }
        guard
    }
}

/// Guard returned by [`Exclusive::lock`].
#[derive(Debug)]
pub struct ExclusiveGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    _order: tracker::Held,
}

impl<T> std::ops::Deref for ExclusiveGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for ExclusiveGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(feature = "lock-order-check")]
mod tracker {
    //! Runtime acquisition tracking (the `lock-order-check` feature).
    //!
    //! Each thread keeps a stack of the [`LockClass`]es it currently holds.
    //! Acquiring a class whose rank is *lower* than the innermost held class
    //! (or equal, for classes that forbid self-nesting) panics immediately —
    //! turning a latent deadlock into a deterministic test failure. Every
    //! held→acquired pair is also recorded in a process-global edge set that
    //! [`observed_edges`] exposes for cross-validation against the static
    //! analyzer's graph.

    use super::LockClass;
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::sync::Mutex;

    thread_local! {
        static HELD: RefCell<Vec<LockClass>> = const { RefCell::new(Vec::new()) };
    }

    static EDGES: Mutex<BTreeSet<(u8, u8)>> = Mutex::new(BTreeSet::new());

    /// Token proving an acquisition was registered; dropping it pops the
    /// class from the thread's held stack.
    #[derive(Debug)]
    pub struct Held {
        class: LockClass,
    }

    impl Drop for Held {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                // Guards can drop out of acquisition order (`drop(a)` before
                // `drop(b)`): remove the innermost matching entry.
                if let Some(pos) = held.iter().rposition(|&c| c == self.class) {
                    held.remove(pos);
                }
            });
        }
    }

    pub fn acquire(class: LockClass) -> Held {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&innermost) = held.last() {
                let inverted = class.rank() < innermost.rank()
                    || (class == innermost && !class.allows_self_nesting());
                assert!(
                    !inverted,
                    "lock-order violation: acquiring {} (rank {}) while holding {} (rank {})",
                    class.name(),
                    class.rank(),
                    innermost.name(),
                    innermost.rank()
                );
            }
            let mut edges = EDGES.lock().unwrap();
            for &h in held.iter() {
                if h != class {
                    edges.insert((h.rank(), class.rank()));
                }
            }
            drop(edges);
            held.push(class);
        });
        Held { class }
    }

    /// Every `(held, acquired)` class-rank pair observed so far in this
    /// process, in rank order.
    pub fn observed_edges() -> Vec<(LockClass, LockClass)> {
        EDGES
            .lock()
            .unwrap()
            .iter()
            .map(|&(a, b)| (LockClass::ALL[a as usize], LockClass::ALL[b as usize]))
            .collect()
    }
}

#[cfg(not(feature = "lock-order-check"))]
mod tracker {
    //! No-op tracker: zero-sized tokens, nothing recorded.

    use super::LockClass;

    /// Zero-sized stand-in for the tracking token. Carries a no-op `Drop`
    /// so condvar wait paths can `drop(token)` to release the order slot
    /// under either cfg.
    #[derive(Debug)]
    pub struct Held;

    impl Drop for Held {
        fn drop(&mut self) {}
    }

    #[inline(always)]
    pub fn acquire(_class: LockClass) -> Held {
        Held
    }
}

/// Every `(held, acquired)` lock-class pair observed at runtime so far.
///
/// Only meaningful under the `lock-order-check` feature; otherwise empty.
pub fn observed_edges() -> Vec<(LockClass, LockClass)> {
    #[cfg(feature = "lock-order-check")]
    {
        tracker::observed_edges()
    }
    #[cfg(not(feature = "lock-order-check"))]
    {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_total_and_stable() {
        for pair in LockClass::ALL.windows(2) {
            assert!(pair[0].rank() < pair[1].rank());
        }
        for class in LockClass::ALL {
            assert_eq!(LockClass::parse(class.name()), Some(class));
        }
        assert_eq!(LockClass::parse("NoSuchLock"), None);
    }

    #[test]
    fn shared_round_trip() {
        let lock = Shared::new(LockClass::Stats, 7u32);
        assert_eq!(*lock.read(), 7);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 8);
        assert_eq!(lock.into_inner(), 8);
    }

    #[test]
    fn exclusive_round_trip() {
        let lock = Exclusive::new(LockClass::ResultCache, vec![1, 2]);
        lock.lock().push(3);
        assert_eq!(*lock.lock(), vec![1, 2, 3]);
        assert_eq!(lock.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn in_order_nesting_is_permitted() {
        let outer = Shared::new(LockClass::Merger, ());
        let inner = Exclusive::new(LockClass::Wal, ());
        let a = outer.read();
        let b = inner.lock();
        drop(a); // out-of-order release must be fine
        drop(b);
    }

    #[test]
    fn wait_while_returns_when_pred_clears() {
        use std::sync::Condvar;
        let lock = std::sync::Arc::new(Exclusive::new(LockClass::SchedulerQueue, false));
        let cond = std::sync::Arc::new(Condvar::new());
        let (l2, c2) = (lock.clone(), cond.clone());
        let waiter = std::thread::spawn(move || {
            let guard = l2.lock();
            let guard = l2.wait_while(guard, &c2, |ready| !*ready);
            assert!(*guard);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        *lock.lock() = true;
        cond.notify_all();
        waiter.join().expect("waiter thread");
    }

    #[cfg(feature = "lock-order-check")]
    #[test]
    fn observed_edges_records_nesting() {
        let outer = Shared::new(LockClass::Merger, ());
        let inner = Shared::new(LockClass::Stats, ());
        let _a = outer.write();
        let _b = inner.read();
        let edges = observed_edges();
        assert!(edges.contains(&(LockClass::Merger, LockClass::Stats)));
    }
}
