//! The 4 KB page and its fixed-size object-record codec.
//!
//! The paper sets the disk page size to 4 KB; every index implementation in
//! this repository stores spatial objects in pages of that size. An object
//! record is 64 bytes (id, dataset id, MBR), so a page holds up to 63 records
//! after a 16-byte header.
//!
//! Header layout: bytes 0..4 magic, 4..6 record count, 6..12 reserved,
//! 12..16 a CRC-32 of the rest of the page ([`PAGE_CHECKSUM_OFFSET`]). The
//! checksum is owned by the [`crate::StorageManager`]: it stamps it on every
//! write path and verifies it on every device read, surfacing
//! [`StorageError::CorruptPage`] on a mismatch. Code that builds pages by
//! hand only has to leave the slot alone.

use crate::crc::{crc32_finish, crc32_update};
use crate::error::{StorageError, StorageResult};
use odyssey_geom::{Aabb, DatasetId, ObjectId, SpatialObject, Vec3};
use serde::{Deserialize, Serialize};

/// Size of one disk page in bytes (the paper's configuration).
pub const PAGE_SIZE: usize = 4096;

/// Bytes occupied by the page header (record count + reserved space).
pub const PAGE_HEADER_SIZE: usize = 16;

/// Size of one serialized object record in bytes.
pub const RECORD_SIZE: usize = 64;

/// Maximum number of object records stored in one page.
pub const OBJECTS_PER_PAGE: usize = (PAGE_SIZE - PAGE_HEADER_SIZE) / RECORD_SIZE;

/// Byte offset of the page checksum inside the (reserved area of the) page
/// header: bytes 12..16 hold a CRC-32 of every other byte of the page.
pub const PAGE_CHECKSUM_OFFSET: usize = 12;

/// Magic bytes identifying an object page (helps catch corruption in tests).
const PAGE_MAGIC: [u8; 4] = *b"SOPG";

/// Index of a page within a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u64);

impl PageId {
    /// Raw page index.
    #[inline]
    pub fn index(self) -> u64 {
        self.0
    }
}

/// An in-memory image of one disk page.
///
/// A page is always exactly [`PAGE_SIZE`] bytes. Helper methods encode and
/// decode object records; raw byte access is available for the few callers
/// (e.g. R-tree node pages) that use their own layout.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    bytes: Box<[u8]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("records", &self.record_count().unwrap_or(0))
            .finish()
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::empty()
    }
}

impl Page {
    /// Creates a zeroed page with a valid empty-object-page header.
    pub fn empty() -> Self {
        let mut bytes = vec![0u8; PAGE_SIZE].into_boxed_slice();
        bytes[..4].copy_from_slice(&PAGE_MAGIC);
        let mut page = Page { bytes };
        page.stamp_checksum();
        page
    }

    /// Wraps raw bytes as a page.
    ///
    /// # Panics
    /// Panics if `bytes` is not exactly [`PAGE_SIZE`] long.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        assert_eq!(
            bytes.len(),
            PAGE_SIZE,
            "a page must be exactly {PAGE_SIZE} bytes"
        );
        Page {
            bytes: bytes.into_boxed_slice(),
        }
    }

    /// Builds a page holding the given object records.
    ///
    /// # Errors
    /// Returns [`StorageError::PageOverflow`] if more than
    /// [`OBJECTS_PER_PAGE`] objects are supplied.
    pub fn from_objects(objects: &[SpatialObject]) -> StorageResult<Self> {
        if objects.len() > OBJECTS_PER_PAGE {
            return Err(StorageError::PageOverflow {
                requested: objects.len(),
                capacity: OBJECTS_PER_PAGE,
            });
        }
        let mut page = Page::empty();
        page.set_record_count(objects.len() as u16);
        for (i, obj) in objects.iter().enumerate() {
            encode_record(obj, page.record_slice_mut(i));
        }
        page.stamp_checksum();
        Ok(page)
    }

    /// Raw byte view of the page.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable raw byte view of the page.
    #[inline]
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Number of object records stored in the page.
    ///
    /// # Errors
    /// Returns [`StorageError::Corrupt`] if the header is not an object page
    /// header or the count exceeds the page capacity.
    pub fn record_count(&self) -> StorageResult<usize> {
        if self.bytes[..4] != PAGE_MAGIC {
            return Err(StorageError::Corrupt("missing object-page magic".into()));
        }
        let count = u16::from_le_bytes([self.bytes[4], self.bytes[5]]) as usize;
        if count > OBJECTS_PER_PAGE {
            return Err(StorageError::Corrupt(format!(
                "record count {count} exceeds page capacity {OBJECTS_PER_PAGE}"
            )));
        }
        Ok(count)
    }

    fn set_record_count(&mut self, count: u16) {
        self.bytes[4..6].copy_from_slice(&count.to_le_bytes());
    }

    fn record_slice(&self, i: usize) -> &[u8] {
        let start = PAGE_HEADER_SIZE + i * RECORD_SIZE;
        &self.bytes[start..start + RECORD_SIZE]
    }

    fn record_slice_mut(&mut self, i: usize) -> &mut [u8] {
        let start = PAGE_HEADER_SIZE + i * RECORD_SIZE;
        &mut self.bytes[start..start + RECORD_SIZE]
    }

    /// CRC-32 of the page contents, excluding the checksum slot itself.
    fn content_checksum(&self) -> u32 {
        let state = crc32_update(0xFFFF_FFFF, &self.bytes[..PAGE_CHECKSUM_OFFSET]);
        crc32_finish(crc32_update(state, &self.bytes[PAGE_CHECKSUM_OFFSET + 4..]))
    }

    /// Writes the content checksum into the header's checksum slot. Called by
    /// the storage manager on every write path ([`Page::empty`] pages start
    /// out stamped, so bulk pre-allocation stays valid).
    pub fn stamp_checksum(&mut self) {
        let crc = self.content_checksum();
        self.bytes[PAGE_CHECKSUM_OFFSET..PAGE_CHECKSUM_OFFSET + 4]
            .copy_from_slice(&crc.to_le_bytes());
    }

    /// Verifies the stored checksum against the page contents.
    pub fn verify_checksum(&self) -> bool {
        let stored = u32::from_le_bytes(
            self.bytes[PAGE_CHECKSUM_OFFSET..PAGE_CHECKSUM_OFFSET + 4]
                .try_into()
                .expect("checksum slot is 4 bytes"), // analyzer: allow(fixed 4-byte checksum slot)
        );
        stored == self.content_checksum()
    }

    /// Decodes every object record stored in the page.
    pub fn objects(&self) -> StorageResult<Vec<SpatialObject>> {
        let count = self.record_count()?;
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            out.push(decode_record(self.record_slice(i))?);
        }
        Ok(out)
    }

    /// Decodes the records of the page directly into `out`, avoiding an
    /// intermediate allocation on hot read paths.
    pub fn objects_into(&self, out: &mut Vec<SpatialObject>) -> StorageResult<usize> {
        let count = self.record_count()?;
        out.reserve(count);
        for i in 0..count {
            out.push(decode_record(self.record_slice(i))?);
        }
        Ok(count)
    }
}

fn encode_record(obj: &SpatialObject, buf: &mut [u8]) {
    debug_assert_eq!(buf.len(), RECORD_SIZE);
    buf[0..8].copy_from_slice(&obj.id.0.to_le_bytes());
    buf[8..10].copy_from_slice(&obj.dataset.0.to_le_bytes());
    // bytes 10..16 reserved.
    let mut off = 16;
    for v in [
        obj.mbr.min.x,
        obj.mbr.min.y,
        obj.mbr.min.z,
        obj.mbr.max.x,
        obj.mbr.max.y,
        obj.mbr.max.z,
    ] {
        buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
        off += 8;
    }
}

fn decode_record(buf: &[u8]) -> StorageResult<SpatialObject> {
    debug_assert_eq!(buf.len(), RECORD_SIZE);
    let id = u64::from_le_bytes(buf[0..8].try_into().expect("record id slice")); // analyzer: allow(fixed-width slice of a RECORD_SIZE buffer)
    let dataset = u16::from_le_bytes(buf[8..10].try_into().expect("record dataset slice")); // analyzer: allow(fixed-width slice of a RECORD_SIZE buffer)
    let mut vals = [0f64; 6];
    for (i, v) in vals.iter_mut().enumerate() {
        let off = 16 + i * 8;
        // analyzer: allow(fixed-width slice of a RECORD_SIZE buffer)
        *v = f64::from_le_bytes(buf[off..off + 8].try_into().expect("record float slice"));
    }
    let min = Vec3::new(vals[0], vals[1], vals[2]);
    let max = Vec3::new(vals[3], vals[4], vals[5]);
    if !(min.is_finite() && max.is_finite()) {
        return Err(StorageError::Corrupt("non-finite MBR in record".into()));
    }
    Ok(SpatialObject::new(
        ObjectId(id),
        DatasetId(dataset),
        Aabb::from_min_max(min, max),
    ))
}

/// Packs a slice of objects into as many pages as needed, filling each page
/// to capacity in order.
pub fn pack_objects(objects: &[SpatialObject]) -> Vec<Page> {
    objects
        .chunks(OBJECTS_PER_PAGE)
        .map(|chunk| Page::from_objects(chunk).expect("chunk size bounded by OBJECTS_PER_PAGE")) // analyzer: allow(chunk len is bounded by OBJECTS_PER_PAGE)
        .collect()
}

/// Number of pages needed to store `n` objects.
#[inline]
pub fn pages_needed(n: usize) -> u64 {
    (n as u64).div_ceil(OBJECTS_PER_PAGE as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(id: u64, ds: u16, lo: f64, hi: f64) -> SpatialObject {
        SpatialObject::new(
            ObjectId(id),
            DatasetId(ds),
            Aabb::from_min_max(Vec3::splat(lo), Vec3::splat(hi)),
        )
    }

    #[test]
    fn layout_constants_are_consistent() {
        assert_eq!(PAGE_SIZE, 4096);
        assert_eq!(OBJECTS_PER_PAGE, 63);
        const { assert!(PAGE_HEADER_SIZE + OBJECTS_PER_PAGE * RECORD_SIZE <= PAGE_SIZE) };
    }

    #[test]
    fn empty_page_has_zero_records() {
        let p = Page::empty();
        assert_eq!(p.record_count().unwrap(), 0);
        assert!(p.objects().unwrap().is_empty());
        assert_eq!(p.as_bytes().len(), PAGE_SIZE);
    }

    #[test]
    fn roundtrip_objects() {
        let objs: Vec<_> = (0..OBJECTS_PER_PAGE as u64)
            .map(|i| obj(i, (i % 5) as u16, i as f64, i as f64 + 1.0))
            .collect();
        let page = Page::from_objects(&objs).unwrap();
        assert_eq!(page.record_count().unwrap(), OBJECTS_PER_PAGE);
        assert_eq!(page.objects().unwrap(), objs);
    }

    #[test]
    fn overflow_is_detected() {
        let objs: Vec<_> = (0..OBJECTS_PER_PAGE as u64 + 1)
            .map(|i| obj(i, 0, 0.0, 1.0))
            .collect();
        assert!(matches!(
            Page::from_objects(&objs),
            Err(StorageError::PageOverflow { .. })
        ));
    }

    #[test]
    fn corrupt_magic_detected() {
        let mut p = Page::from_objects(&[obj(1, 2, 0.0, 1.0)]).unwrap();
        p.as_bytes_mut()[0] = b'X';
        assert!(matches!(p.record_count(), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn corrupt_count_detected() {
        let mut p = Page::empty();
        p.as_bytes_mut()[4..6].copy_from_slice(&1000u16.to_le_bytes());
        assert!(matches!(p.record_count(), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn corrupt_float_detected() {
        let mut p = Page::from_objects(&[obj(1, 2, 0.0, 1.0)]).unwrap();
        // Overwrite the MBR with NaN bits.
        let nan = f64::NAN.to_le_bytes();
        p.as_bytes_mut()[PAGE_HEADER_SIZE + 16..PAGE_HEADER_SIZE + 24].copy_from_slice(&nan);
        assert!(p.objects().is_err());
    }

    #[test]
    fn bytes_roundtrip() {
        let objs = vec![obj(7, 3, -1.0, 2.5)];
        let page = Page::from_objects(&objs).unwrap();
        let restored = Page::from_bytes(page.as_bytes().to_vec());
        assert_eq!(restored.objects().unwrap(), objs);
        assert_eq!(restored, page);
    }

    #[test]
    #[should_panic(expected = "exactly")]
    fn wrong_size_bytes_panics() {
        let _ = Page::from_bytes(vec![0u8; 100]);
    }

    #[test]
    fn pack_objects_splits_into_pages() {
        let objs: Vec<_> = (0..150u64).map(|i| obj(i, 0, 0.0, 1.0)).collect();
        let pages = pack_objects(&objs);
        assert_eq!(pages.len(), 3);
        let total: usize = pages.iter().map(|p| p.record_count().unwrap()).sum();
        assert_eq!(total, 150);
        // Order is preserved.
        let mut all = Vec::new();
        for p in &pages {
            p.objects_into(&mut all).unwrap();
        }
        assert_eq!(all, objs);
    }

    #[test]
    fn pages_needed_math() {
        assert_eq!(pages_needed(0), 0);
        assert_eq!(pages_needed(1), 1);
        assert_eq!(pages_needed(OBJECTS_PER_PAGE), 1);
        assert_eq!(pages_needed(OBJECTS_PER_PAGE + 1), 2);
        assert_eq!(pages_needed(10 * OBJECTS_PER_PAGE), 10);
    }

    #[test]
    fn objects_into_appends() {
        let p1 = Page::from_objects(&[obj(1, 0, 0.0, 1.0)]).unwrap();
        let p2 = Page::from_objects(&[obj(2, 0, 0.0, 1.0)]).unwrap();
        let mut out = Vec::new();
        p1.objects_into(&mut out).unwrap();
        p2.objects_into(&mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].id, ObjectId(1));
        assert_eq!(out[1].id, ObjectId(2));
    }

    #[test]
    fn checksum_stamp_and_verify() {
        // Freshly built pages are stamped.
        assert!(Page::empty().verify_checksum());
        let mut p = Page::from_objects(&[obj(1, 2, 0.0, 1.0)]).unwrap();
        assert!(p.verify_checksum());
        // Any mutation invalidates until restamped — including mutations of
        // the reserved header bytes outside the checksum slot.
        p.as_bytes_mut()[PAGE_HEADER_SIZE + 3] ^= 0x40;
        assert!(!p.verify_checksum());
        p.stamp_checksum();
        assert!(p.verify_checksum());
        p.as_bytes_mut()[6] ^= 0x01;
        assert!(!p.verify_checksum());
        // Corrupting the slot itself is also detected.
        p.stamp_checksum();
        p.as_bytes_mut()[PAGE_CHECKSUM_OFFSET] ^= 0xFF;
        assert!(!p.verify_checksum());
    }

    #[test]
    fn debug_format_shows_record_count() {
        let p = Page::from_objects(&[obj(1, 0, 0.0, 1.0), obj(2, 0, 0.0, 1.0)]).unwrap();
        assert!(format!("{p:?}").contains('2'));
    }
}
