//! # odyssey-storage
//!
//! Paged storage substrate for the Space Odyssey reproduction.
//!
//! The paper measures approaches on spinning disks with the OS cache dropped
//! before every query, so the decisive quantities are *how many pages* an
//! approach touches and *whether it touches them sequentially or randomly*.
//! This crate provides exactly that measurement surface:
//!
//! * [`page`] — the 4 KB page and its object-record codec,
//! * [`mod@file`] — paged files with an in-memory and an on-disk backend,
//! * [`stats`] — I/O counters ([`IoStats`]) distinguishing sequential from
//!   random page accesses,
//! * [`cost`] — a deterministic disk [`CostModel`] turning counters into
//!   simulated seconds (the substitution for the paper's SAS disks, see
//!   DESIGN.md §3),
//! * [`buffer`] — a bounded [`BufferPool`] so the configured memory budget is
//!   honoured,
//! * [`manager`] — the [`StorageManager`] façade every index implementation
//!   uses to create files and read/write object pages,
//! * [`crc`] — the shared CRC-32 implementation behind every on-disk
//!   integrity check,
//! * [`manifest`] — the atomically rewritten superblock + file table +
//!   engine-payload root of a durable store,
//! * [`wal`] — the page-granular, checksummed metadata write-ahead log whose
//!   valid prefix recovery replays over the last manifest,
//! * [`fault`] — site-addressable fault injection ([`FaultPlan`]) and the
//!   fault-surface coverage registry behind the `fault-coverage` feature,
//! * [`sync`] — lock-order-aware [`Shared`]/[`Exclusive`] wrappers carrying a
//!   declared [`LockClass`]; every engine lock goes through them so the
//!   canonical acquisition order is machine-checkable (statically by
//!   `odyssey-analyzer`, at runtime under the `lock-order-check` feature).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buffer;
pub mod codec;
pub mod cost;
pub mod crc;
pub mod error;
pub mod fault;
pub mod file;
pub mod manager;
pub mod manifest;
pub mod page;
pub mod raw;
pub mod stats;
pub mod sync;
pub mod wal;

pub use buffer::BufferPool;
pub use cost::{CostModel, DeviceProfile};
pub use crc::crc32;
pub use error::{StorageError, StorageResult};
pub use fault::{FaultPlan, FaultState, SiteClass};
pub use file::{DiskFile, FaultHookFile, FaultInjectingFile, FileId, MemFile, PagedFile};
pub use manager::{
    DurabilityOptions, FileSpaceStats, RecoveredState, StorageBackend, StorageManager,
    StorageOptions,
};
pub use manifest::{Manifest, ManifestFileEntry, MANIFEST_FILE_NAME};
pub use page::{pack_objects, pages_needed, Page, PageId, OBJECTS_PER_PAGE, PAGE_SIZE};
pub use raw::{append_to_raw_dataset, scan_raw_dataset, write_raw_dataset, RawDataset};
pub use stats::{IoStats, StatsDelta};
pub use sync::{Exclusive, LockClass, Shared};
pub use wal::{MetaWal, WalRecovery, WAL_FILE_NAME};
