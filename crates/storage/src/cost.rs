//! Deterministic disk cost model.
//!
//! The paper runs on two SAS spinning disks and drops the OS cache before
//! every query, so reported times are dominated by disk seeks and sequential
//! transfer. We cannot (and should not) rely on the benchmark machine having
//! the same disk, so the harness replays every approach through an exact page
//! access trace and converts it to seconds with this model. The *shape* of
//! the paper's figures — who pays indexing cost when, who seeks and who
//! scans — is preserved by construction; absolute values depend only on the
//! chosen parameters and are reported alongside the paper's in
//! EXPERIMENTS.md.

use crate::stats::IoStats;
use serde::{Deserialize, Serialize};

/// Parameters of the simulated disk and CPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Average time for a random access (seek + rotational latency), seconds.
    pub seek_seconds: f64,
    /// Sequential transfer rate in bytes per second.
    pub transfer_bytes_per_second: f64,
    /// CPU time to examine one object record (decode + intersection test),
    /// seconds.
    pub cpu_seconds_per_object_scanned: f64,
    /// CPU time to encode and place one object record when writing, seconds.
    pub cpu_seconds_per_object_written: f64,
    /// Time to serve one page from the buffer pool, seconds (memory copy).
    pub buffer_hit_seconds: f64,
}

impl Default for CostModel {
    /// The spinning-disk profile of [`CostModel::hdd`], matching the paper's
    /// experimental hardware.
    fn default() -> Self {
        CostModel::hdd()
    }
}

impl CostModel {
    /// Parameters approximating the paper's 10k-RPM SAS disks: ~8 ms random
    /// access, ~150 MB/s sequential transfer, and a CPU that examines an
    /// object in ~100 ns.
    pub fn hdd() -> Self {
        CostModel {
            seek_seconds: 8e-3,
            transfer_bytes_per_second: 150.0 * 1024.0 * 1024.0,
            cpu_seconds_per_object_scanned: 100e-9,
            cpu_seconds_per_object_written: 150e-9,
            buffer_hit_seconds: 2e-6,
        }
    }

    /// A cost model for a fast NVMe-class device; useful in tests and for
    /// sensitivity analysis (the paper's conclusions weaken as seeks get
    /// cheaper, which the ablation bench demonstrates).
    pub fn nvme() -> Self {
        CostModel {
            seek_seconds: 80e-6,
            transfer_bytes_per_second: 2.0 * 1024.0 * 1024.0 * 1024.0,
            cpu_seconds_per_object_scanned: 100e-9,
            cpu_seconds_per_object_written: 150e-9,
            buffer_hit_seconds: 2e-6,
        }
    }

    /// Time to transfer one page sequentially.
    #[inline]
    pub fn page_transfer_seconds(&self) -> f64 {
        crate::page::PAGE_SIZE as f64 / self.transfer_bytes_per_second
    }

    /// Converts a set of I/O counters into simulated seconds.
    ///
    /// Sequential accesses pay only the transfer time; random accesses pay a
    /// seek plus the transfer; buffer hits pay a small memory cost; CPU cost
    /// is proportional to the records examined or written.
    pub fn seconds(&self, stats: &IoStats) -> f64 {
        let transfer = self.page_transfer_seconds();
        let read_cost = stats.sequential_reads as f64 * transfer
            + stats.random_reads as f64 * (self.seek_seconds + transfer);
        let write_cost = stats.sequential_writes as f64 * transfer
            + stats.random_writes as f64 * (self.seek_seconds + transfer);
        let buffer_cost = stats.buffer_hits as f64 * self.buffer_hit_seconds;
        let cpu_cost = stats.objects_scanned as f64 * self.cpu_seconds_per_object_scanned
            + stats.objects_written as f64 * self.cpu_seconds_per_object_written;
        read_cost + write_cost + buffer_cost + cpu_cost
    }
}

/// A named device profile selecting the [`CostModel`] constants the engine's
/// access-path planner (and any other consumer) should reason with.
///
/// The planner used to assume one hard-coded device; making the profile part
/// of the engine configuration lets the same binary plan correctly for
/// spinning disks, NVMe flash, or a custom-calibrated device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DeviceProfile {
    /// NVMe-class flash: microsecond seeks, multi-GB/s transfer
    /// ([`CostModel::nvme`]).
    Nvme,
    /// 10k-RPM spinning disk, the paper's hardware ([`CostModel::hdd`]).
    Hdd,
    /// Custom constants, e.g. calibrated against a real device.
    Custom(CostModel),
}

impl DeviceProfile {
    /// The cost-model constants of the profile.
    pub fn cost_model(&self) -> CostModel {
        match self {
            DeviceProfile::Nvme => CostModel::nvme(),
            DeviceProfile::Hdd => CostModel::hdd(),
            DeviceProfile::Custom(model) => *model,
        }
    }

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceProfile::Nvme => "nvme",
            DeviceProfile::Hdd => "hdd",
            DeviceProfile::Custom(_) => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_parameters_are_sane() {
        let m = CostModel::default();
        assert!(
            m.seek_seconds > 1e-3,
            "spinning disk seeks are milliseconds"
        );
        assert!(m.page_transfer_seconds() < 1e-3);
        assert!(m.page_transfer_seconds() > 0.0);
        // A seek dominates a single-page sequential transfer on spinning disks.
        assert!(m.seek_seconds > 10.0 * m.page_transfer_seconds());
    }

    #[test]
    fn zero_stats_cost_zero() {
        assert_eq!(CostModel::default().seconds(&IoStats::default()), 0.0);
    }

    #[test]
    fn random_reads_cost_more_than_sequential() {
        let m = CostModel::default();
        let seq = IoStats {
            sequential_reads: 100,
            ..Default::default()
        };
        let rand = IoStats {
            random_reads: 100,
            ..Default::default()
        };
        assert!(m.seconds(&rand) > 10.0 * m.seconds(&seq));
    }

    #[test]
    fn cost_is_additive() {
        let m = CostModel::default();
        let a = IoStats {
            sequential_reads: 10,
            random_reads: 5,
            objects_scanned: 100,
            ..Default::default()
        };
        let b = IoStats {
            sequential_writes: 7,
            random_writes: 2,
            objects_written: 50,
            ..Default::default()
        };
        let mut both = a;
        both.merge(&b);
        let sum = m.seconds(&a) + m.seconds(&b);
        assert!((m.seconds(&both) - sum).abs() < 1e-12);
    }

    #[test]
    fn nvme_is_faster_than_sas_for_random_io() {
        let stats = IoStats {
            random_reads: 1000,
            ..Default::default()
        };
        assert!(CostModel::nvme().seconds(&stats) < CostModel::default().seconds(&stats) / 10.0);
    }

    #[test]
    fn device_profiles_resolve_to_their_models() {
        assert_eq!(DeviceProfile::Nvme.cost_model(), CostModel::nvme());
        assert_eq!(DeviceProfile::Hdd.cost_model(), CostModel::hdd());
        assert_eq!(DeviceProfile::Hdd.cost_model(), CostModel::default());
        let custom = CostModel {
            seek_seconds: 1e-3,
            ..CostModel::nvme()
        };
        assert_eq!(DeviceProfile::Custom(custom).cost_model(), custom);
        assert_eq!(DeviceProfile::Nvme.name(), "nvme");
        assert_eq!(DeviceProfile::Hdd.name(), "hdd");
        assert_eq!(DeviceProfile::Custom(custom).name(), "custom");
    }

    #[test]
    fn seconds_on_each_profile_orders_devices_by_speed() {
        // A seek-heavy trace: the profile with the costlier seeks must report
        // more simulated seconds, and a custom profile sits exactly where its
        // constants put it.
        let trace = IoStats {
            random_reads: 500,
            sequential_reads: 2_000,
            objects_scanned: 10_000,
            ..Default::default()
        };
        let hdd = DeviceProfile::Hdd.cost_model().seconds(&trace);
        let nvme = DeviceProfile::Nvme.cost_model().seconds(&trace);
        assert!(hdd > 10.0 * nvme, "hdd {hdd}s vs nvme {nvme}s");
        let custom_model = CostModel {
            seek_seconds: 1e-3, // between nvme (80 µs) and hdd (8 ms)
            transfer_bytes_per_second: 500.0 * 1024.0 * 1024.0,
            ..CostModel::hdd()
        };
        let custom = DeviceProfile::Custom(custom_model)
            .cost_model()
            .seconds(&trace);
        assert!(nvme < custom && custom < hdd);
        // Every profile reports zero for an empty trace.
        for profile in [
            DeviceProfile::Nvme,
            DeviceProfile::Hdd,
            DeviceProfile::Custom(custom_model),
        ] {
            assert_eq!(profile.cost_model().seconds(&IoStats::default()), 0.0);
        }
    }

    #[test]
    fn buffer_hits_are_cheaper_than_any_device_access() {
        let m = CostModel::default();
        let hit = IoStats {
            buffer_hits: 1,
            ..Default::default()
        };
        let seq = IoStats {
            sequential_reads: 1,
            ..Default::default()
        };
        assert!(m.seconds(&hit) < m.seconds(&seq));
    }
}
