//! Raw (unindexed) dataset files.
//!
//! Every approach in the paper starts from the same situation: each dataset
//! sits in its own raw file on disk, in arrival order, with no index. Static
//! approaches scan these files to build their indexes; Space Odyssey scans
//! them lazily when a dataset is first queried.

use crate::error::StorageResult;
use crate::file::FileId;
use crate::manager::StorageManager;
use odyssey_geom::{DatasetId, SpatialObject};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Metadata of one raw dataset file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RawDataset {
    /// The dataset stored in the file.
    pub dataset: DatasetId,
    /// The file holding the objects.
    pub file: FileId,
    /// Page range occupied by the objects (always starts at 0 for raw files).
    pub page_range: (u64, u64),
    /// Number of objects in the dataset.
    pub num_objects: u64,
}

impl RawDataset {
    /// The page range as a standard range.
    #[inline]
    pub fn pages(&self) -> Range<u64> {
        self.page_range.0..self.page_range.1
    }

    /// Number of pages the raw file occupies.
    #[inline]
    pub fn num_pages(&self) -> u64 {
        self.page_range.1 - self.page_range.0
    }
}

/// Writes `objects` as the raw file of `dataset` and returns its metadata.
///
/// The write is a single sequential pass, exactly like copying the instrument
/// output onto the analysis machine; its cost is *not* part of any approach's
/// indexing time (all approaches start after the raw data exists).
pub fn write_raw_dataset(
    storage: &StorageManager,
    dataset: DatasetId,
    objects: &[SpatialObject],
) -> StorageResult<RawDataset> {
    let file = storage.create_file(&format!("raw_ds{}", dataset.0))?;
    let range = storage.append_objects(file, objects)?;
    Ok(RawDataset {
        dataset,
        file,
        page_range: (range.start, range.end),
        num_objects: objects.len() as u64,
    })
}

/// Appends newly arrived `objects` at the end of an existing raw dataset
/// file, updating its metadata in place and returning the page range the new
/// pages occupy.
///
/// Raw files stay the ground truth under online ingestion: the sequential-scan
/// access path and any later (re)build of a static index read them, so every
/// ingested object lands here first. Callers that share the `RawDataset`
/// across threads must serialize calls (the engine's per-dataset lock does).
pub fn append_to_raw_dataset(
    storage: &StorageManager,
    raw: &mut RawDataset,
    objects: &[SpatialObject],
) -> StorageResult<Range<u64>> {
    let range = storage.append_objects(raw.file, objects)?;
    raw.page_range.1 = range.end;
    raw.num_objects += objects.len() as u64;
    storage.note_objects_ingested(objects.len() as u64);
    Ok(range)
}

/// Reads back every object of a raw dataset (a full sequential scan).
pub fn scan_raw_dataset(
    storage: &StorageManager,
    raw: &RawDataset,
) -> StorageResult<Vec<SpatialObject>> {
    storage.read_objects(raw.file, raw.pages())
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_geom::{Aabb, ObjectId, Vec3};

    fn objects(n: u64, ds: u16) -> Vec<SpatialObject> {
        (0..n)
            .map(|i| {
                SpatialObject::new(
                    ObjectId(i),
                    DatasetId(ds),
                    Aabb::from_min_max(Vec3::splat(i as f64), Vec3::splat(i as f64 + 1.0)),
                )
            })
            .collect()
    }

    #[test]
    fn write_and_scan_roundtrip() {
        let storage = StorageManager::in_memory();
        let objs = objects(500, 3);
        let raw = write_raw_dataset(&storage, DatasetId(3), &objs).unwrap();
        assert_eq!(raw.dataset, DatasetId(3));
        assert_eq!(raw.num_objects, 500);
        assert_eq!(raw.num_pages(), 8); // ceil(500 / 63)
        let back = scan_raw_dataset(&storage, &raw).unwrap();
        assert_eq!(back, objs);
    }

    #[test]
    fn raw_files_are_written_sequentially() {
        let storage = StorageManager::new(crate::StorageOptions::in_memory(0));
        let before = storage.stats();
        write_raw_dataset(&storage, DatasetId(0), &objects(630, 0)).unwrap();
        let d = storage.stats().since(&before).0;
        assert_eq!(d.pages_written(), 10);
        assert_eq!(d.random_writes, 1, "only the initial placement seeks");
    }

    #[test]
    fn multiple_datasets_get_distinct_files() {
        let storage = StorageManager::in_memory();
        let a = write_raw_dataset(&storage, DatasetId(0), &objects(10, 0)).unwrap();
        let b = write_raw_dataset(&storage, DatasetId(1), &objects(10, 1)).unwrap();
        assert_ne!(a.file, b.file);
        assert_eq!(storage.file_name(a.file).unwrap(), "raw_ds0");
        assert_eq!(storage.file_name(b.file).unwrap(), "raw_ds1");
    }

    #[test]
    fn append_extends_the_raw_file_and_its_metadata() {
        let storage = StorageManager::in_memory();
        let mut raw = write_raw_dataset(&storage, DatasetId(0), &objects(100, 0)).unwrap();
        let before_pages = raw.num_pages();
        let range = append_to_raw_dataset(&storage, &mut raw, &objects(130, 0)).unwrap();
        assert_eq!(range.start, before_pages);
        assert_eq!(raw.num_objects, 230);
        assert_eq!(raw.num_pages(), range.end);
        assert_eq!(scan_raw_dataset(&storage, &raw).unwrap().len(), 230);
        assert_eq!(storage.stats().objects_ingested, 130);
        // Appending nothing is a no-op.
        let empty = append_to_raw_dataset(&storage, &mut raw, &[]).unwrap();
        assert_eq!(empty.start, empty.end);
        assert_eq!(raw.num_objects, 230);
    }

    #[test]
    fn empty_dataset_is_representable() {
        let storage = StorageManager::in_memory();
        let raw = write_raw_dataset(&storage, DatasetId(0), &[]).unwrap();
        assert_eq!(raw.num_objects, 0);
        assert_eq!(raw.num_pages(), 0);
        assert!(scan_raw_dataset(&storage, &raw).unwrap().is_empty());
    }
}
