//! Site-addressable fault injection and the fault-surface coverage
//! registry.
//!
//! The durability tests used to have exactly one crash lever: a global
//! page-write budget on the WAL file ([`crate::FaultInjectingFile`]).
//! This module generalizes it to a *site-addressable* plan: fail the Nth
//! read/write/sync/rename/unlink at a named [`SiteClass`] (`wal.sync`,
//! `manifest.rename`, `dir.sync`, ...), so a test can place a simulated
//! crash at any point of the durability protocol, not just mid-WAL-append.
//!
//! # Site classes
//!
//! A site class is `family.op`: the family names the durable artifact
//! (`wal`, `data`, `manifest`, `dir`) and the op is the I/O primitive
//! (`read`, `write`, `sync`, `rename`, `unlink`). The WAL and data files
//! charge through a [`FaultHookFile`](crate::FaultHookFile) wrapper; the
//! manifest and directory ops charge through the [`fs_rename`] /
//! [`fs_remove_file`] / [`fs_sync_dir`] / [`fs_write_sync`] helpers that
//! all storage-crate filesystem calls are routed through.
//!
//! # Semantics
//!
//! A [`FaultPlan`] arms one site class with a 1-based `fail_at` counter:
//! operations 1..fail_at-1 at that class succeed, operation `fail_at`
//! fails with an injected [`StorageError::Io`], and the plan *latches* —
//! every later operation at that class keeps failing, like a device that
//! died. State is per-[`StorageManager`](crate::StorageManager) (threaded
//! through an [`FaultState`] handle), never process-global, so parallel
//! tests cannot contaminate each other and a re-opened manager starts
//! with a clean slate.
//!
//! # Coverage registry (`fault-coverage` feature)
//!
//! With the `fault-coverage` cargo feature enabled, every fallible
//! storage API function pushes its name onto a thread-local call stack
//! via [`enter`], and each push records the `(caller, callee)` pair into
//! a process-wide registry. `tests/fault_coverage.rs` cross-validates the
//! registry against the analyzer's statically enumerated fallible-site
//! inventory (`fault_surface.json`): every durable-core site must have
//! been executed by at least one fault-injection test, mirroring the
//! lock-order static↔runtime check. Without the feature, [`enter`] is a
//! zero-sized no-op.

use crate::error::{StorageError, StorageResult};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// A named, injectable I/O site class (`family.op`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SiteClass {
    /// WAL page read (recovery replay path).
    WalRead,
    /// WAL page write or append.
    WalWrite,
    /// WAL fdatasync.
    WalSync,
    /// Data-file page read.
    DataRead,
    /// Data-file page write, append or extension.
    DataWrite,
    /// Data-file fdatasync (`sync_file`).
    DataSync,
    /// Data-file unlink (`delete_file`).
    DataUnlink,
    /// Manifest file read at open.
    ManifestRead,
    /// Manifest temp-file create + write.
    ManifestWrite,
    /// Manifest temp-file fsync.
    ManifestSync,
    /// Manifest rename onto the live name (the commit point).
    ManifestRename,
    /// Directory fsync after create/rename/unlink.
    DirSync,
}

impl SiteClass {
    /// Every class, in declaration order.
    pub const ALL: [SiteClass; 12] = [
        SiteClass::WalRead,
        SiteClass::WalWrite,
        SiteClass::WalSync,
        SiteClass::DataRead,
        SiteClass::DataWrite,
        SiteClass::DataSync,
        SiteClass::DataUnlink,
        SiteClass::ManifestRead,
        SiteClass::ManifestWrite,
        SiteClass::ManifestSync,
        SiteClass::ManifestRename,
        SiteClass::DirSync,
    ];

    /// The canonical `family.op` name.
    pub fn name(self) -> &'static str {
        match self {
            SiteClass::WalRead => "wal.read",
            SiteClass::WalWrite => "wal.write",
            SiteClass::WalSync => "wal.sync",
            SiteClass::DataRead => "data.read",
            SiteClass::DataWrite => "data.write",
            SiteClass::DataSync => "data.sync",
            SiteClass::DataUnlink => "data.unlink",
            SiteClass::ManifestRead => "manifest.read",
            SiteClass::ManifestWrite => "manifest.write",
            SiteClass::ManifestSync => "manifest.sync",
            SiteClass::ManifestRename => "manifest.rename",
            SiteClass::DirSync => "dir.sync",
        }
    }

    /// Parses a canonical `family.op` name.
    pub fn parse(name: &str) -> Option<SiteClass> {
        SiteClass::ALL.iter().copied().find(|c| c.name() == name)
    }
}

/// One armed fault: fail the `fail_at`-th operation (1-based) at `site`,
/// then keep failing (the plan latches, simulating a dead device).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The site class to fail.
    pub site: SiteClass,
    /// 1-based index of the first failing operation at that class.
    pub fail_at: u64,
}

impl FaultPlan {
    /// A plan failing the very first operation at `site`.
    pub fn first(site: SiteClass) -> FaultPlan {
        FaultPlan { site, fail_at: 1 }
    }

    /// A plan failing the `fail_at`-th operation (1-based) at `site`.
    pub fn nth(site: SiteClass, fail_at: u64) -> FaultPlan {
        FaultPlan { site, fail_at }
    }
}

/// Per-manager fault-injection state: at most one armed [`FaultPlan`],
/// tracked with plain atomics so charging an operation on the hot path is
/// two relaxed loads when disarmed.
#[derive(Debug, Default)]
pub struct FaultState {
    /// Armed site class as `discriminant + 1`; `0` = disarmed.
    site: AtomicU32,
    /// Operations still allowed at the armed class before failing.
    remaining: AtomicU64,
    /// Latched once the plan has fired.
    fired: AtomicBool,
}

impl FaultState {
    /// A disarmed state behind a shared handle.
    pub fn disarmed() -> Arc<FaultState> {
        Arc::new(FaultState::default())
    }

    /// A state armed per `plan` (or disarmed for `None`).
    pub fn from_plan(plan: Option<FaultPlan>) -> Arc<FaultState> {
        let state = FaultState::disarmed();
        if let Some(plan) = plan {
            state.arm(plan);
        }
        state
    }

    /// Arms (or re-arms) the state with `plan`, clearing any latch.
    pub fn arm(&self, plan: FaultPlan) {
        self.fired.store(false, Ordering::Relaxed);
        self.remaining
            .store(plan.fail_at.saturating_sub(1), Ordering::Relaxed);
        self.site.store(plan.site as u32 + 1, Ordering::Relaxed);
    }

    /// Disarms the state; already-latched failures stop.
    pub fn disarm(&self) {
        self.site.store(0, Ordering::Relaxed);
    }

    /// Whether the armed plan has fired at least once.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Charges one operation at `site`: `Err` with an injected
    /// [`StorageError::Io`] when the armed plan fires (and latched
    /// thereafter), `Ok` otherwise.
    pub fn charge(&self, site: SiteClass) -> StorageResult<()> {
        if self.site.load(Ordering::Relaxed) != site as u32 + 1 {
            return Ok(());
        }
        let passed = self
            .remaining
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
            .is_ok();
        if passed {
            return Ok(());
        }
        self.fired.store(true, Ordering::Relaxed);
        #[cfg(feature = "fault-coverage")]
        coverage_impl::record_fired(site);
        Err(injected(site))
    }
}

/// The error every fired fault surfaces: an `Io` whose message names the
/// site class, so tests can assert the simulated crash happened where it
/// was planned.
fn injected(site: SiteClass) -> StorageError {
    StorageError::Io(std::io::Error::other(format!(
        "injected fault at {} (simulated crash)",
        site.name()
    )))
}

/// Whether `err` is an injected fault from a [`FaultPlan`].
pub fn is_injected(err: &StorageError) -> bool {
    matches!(err, StorageError::Io(e) if e.to_string().starts_with("injected fault at "))
}

// ---------------------------------------------------------------------------
// Fault-aware filesystem primitives. Every fs call the durability protocol
// makes (manifest write/rename, directory sync, data-file unlink) is routed
// through these so a plan can fail it and the coverage registry sees it.
// ---------------------------------------------------------------------------

/// Fault-aware `fs::rename` (the manifest commit point).
pub fn fs_rename(fault: &FaultState, site: SiteClass, from: &Path, to: &Path) -> StorageResult<()> {
    let _cover = enter("fs_rename");
    fault.charge(site)?;
    std::fs::rename(from, to)?;
    Ok(())
}

/// Fault-aware `fs::remove_file`. A missing target is not an error (crash
/// recovery re-deletes files whose unlink may already have happened).
pub fn fs_remove_file(fault: &FaultState, site: SiteClass, path: &Path) -> StorageResult<()> {
    let _cover = enter("fs_remove_file");
    fault.charge(site)?;
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Fault-aware directory fsync: makes a create/rename/unlink in `dir`
/// durable against power loss.
pub fn fs_sync_dir(fault: &FaultState, site: SiteClass, dir: &Path) -> StorageResult<()> {
    let _cover = enter("fs_sync_dir");
    fault.charge(site)?;
    std::fs::File::open(dir)?.sync_all()?;
    Ok(())
}

/// Fault-aware whole-file read.
pub fn fs_read(fault: &FaultState, site: SiteClass, path: &Path) -> std::io::Result<Vec<u8>> {
    let _cover = enter("fs_read");
    if let Err(StorageError::Io(e)) = fault.charge(site) {
        return Err(e);
    }
    std::fs::read(path)
}

/// Fault-aware create-write-fsync of a whole file (the manifest temp
/// file): `write_site` charges the create+write, `sync_site` the fsync.
pub fn fs_write_sync(
    fault: &FaultState,
    write_site: SiteClass,
    sync_site: SiteClass,
    path: &Path,
    bytes: &[u8],
) -> StorageResult<()> {
    let _cover = enter("fs_write_sync");
    use std::io::Write;
    fault.charge(write_site)?;
    let mut f = std::fs::File::create(path)?;
    f.write_all(bytes)?;
    fault.charge(sync_site)?;
    f.sync_all()?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Coverage registry.
// ---------------------------------------------------------------------------

/// RAII guard returned by [`enter`]; pops the coverage stack on drop.
/// Zero-sized when the `fault-coverage` feature is off.
#[must_use]
pub struct CoverGuard {
    #[cfg(feature = "fault-coverage")]
    armed: bool,
}

/// Marks entry into a named fallible function for the coverage registry.
///
/// `name` must match the static analyzer's rendering of the enclosing
/// function (`Type::method` for impl functions, the bare name for free
/// functions); the pair `(caller, name)` — where `caller` is the
/// innermost enclosing [`enter`] on this thread — is recorded so the
/// fault-coverage gate can match executed call paths against statically
/// enumerated fallible sites. A no-op without the `fault-coverage`
/// feature.
#[inline]
pub fn enter(name: &'static str) -> CoverGuard {
    #[cfg(feature = "fault-coverage")]
    {
        coverage_impl::push(name);
        CoverGuard { armed: true }
    }
    #[cfg(not(feature = "fault-coverage"))]
    {
        let _ = name;
        CoverGuard {}
    }
}

impl Drop for CoverGuard {
    fn drop(&mut self) {
        #[cfg(feature = "fault-coverage")]
        if self.armed {
            coverage_impl::pop();
        }
    }
}

/// Executed `(caller, callee)` hook pairs recorded so far in this
/// process. Empty without the `fault-coverage` feature.
pub fn coverage_pairs() -> Vec<(String, String)> {
    #[cfg(feature = "fault-coverage")]
    {
        return coverage_impl::pairs();
    }
    #[cfg(not(feature = "fault-coverage"))]
    Vec::new()
}

/// Site classes whose injected fault has fired at least once in this
/// process. Empty without the `fault-coverage` feature.
pub fn fired_classes() -> Vec<String> {
    #[cfg(feature = "fault-coverage")]
    {
        return coverage_impl::fired();
    }
    #[cfg(not(feature = "fault-coverage"))]
    Vec::new()
}

#[cfg(feature = "fault-coverage")]
mod coverage_impl {
    use super::SiteClass;
    use crate::sync::{Exclusive, LockClass};
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::sync::OnceLock;

    #[derive(Default)]
    struct Coverage {
        pairs: BTreeSet<(&'static str, &'static str)>,
        fired: BTreeSet<&'static str>,
    }

    thread_local! {
        static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    // analyzer: lock(coverage = WorkCell)
    fn coverage() -> &'static Exclusive<Coverage> {
        static LOG: OnceLock<Exclusive<Coverage>> = OnceLock::new();
        LOG.get_or_init(|| {
            let coverage = Exclusive::new(LockClass::WorkCell, Coverage::default());
            coverage
        })
    }

    pub(super) fn push(name: &'static str) {
        let caller = STACK.with(|s| {
            let mut s = s.borrow_mut();
            let caller = s.last().copied().unwrap_or("");
            s.push(name);
            caller
        });
        let mut log = coverage().lock();
        log.pairs.insert((caller, name));
    }

    pub(super) fn pop() {
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }

    pub(super) fn record_fired(site: SiteClass) {
        let mut log = coverage().lock();
        log.fired.insert(site.name());
    }

    pub(super) fn pairs() -> Vec<(String, String)> {
        let log = coverage().lock();
        log.pairs
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    pub(super) fn fired() -> Vec<String> {
        let log = coverage().lock();
        log.fired.iter().map(|s| s.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_on_the_nth_op_and_latches() {
        let state = FaultState::from_plan(Some(FaultPlan::nth(SiteClass::WalSync, 3)));
        assert!(state.charge(SiteClass::WalSync).is_ok());
        assert!(state.charge(SiteClass::WalWrite).is_ok(), "other class");
        assert!(state.charge(SiteClass::WalSync).is_ok());
        let err = state.charge(SiteClass::WalSync).unwrap_err();
        assert!(is_injected(&err), "{err}");
        assert!(err.to_string().contains("wal.sync"));
        assert!(state.fired());
        // Latched: every later op at the class keeps failing.
        assert!(state.charge(SiteClass::WalSync).is_err());
        assert!(state.charge(SiteClass::DataWrite).is_ok());
    }

    #[test]
    fn disarmed_state_charges_nothing() {
        let state = FaultState::disarmed();
        for class in SiteClass::ALL {
            assert!(state.charge(class).is_ok());
        }
        assert!(!state.fired());
    }

    #[test]
    fn site_class_names_round_trip() {
        for class in SiteClass::ALL {
            assert_eq!(SiteClass::parse(class.name()), Some(class));
        }
        assert_eq!(SiteClass::parse("nope"), None);
    }

    #[test]
    fn disarm_stops_a_latched_plan() {
        let state = FaultState::from_plan(Some(FaultPlan::first(SiteClass::ManifestRename)));
        assert!(state.charge(SiteClass::ManifestRename).is_err());
        state.disarm();
        assert!(state.charge(SiteClass::ManifestRename).is_ok());
    }
}
