//! Picking which datasets each query touches.
//!
//! The paper fixes the number of queried datasets `m` per experiment
//! (1, 3, 5, 7 or 9 out of 10) and selects the concrete combination for every
//! query from a Gray-et-al. distribution over the `C(n, m)` possibilities.
//! The skew of that distribution is what Space Odyssey's merging exploits.

use crate::distributions::{CombinationDistribution, DiscreteSampler};
use odyssey_geom::{enumerate_combinations, DatasetSet};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Picks dataset combinations for a sequence of queries.
#[derive(Debug, Clone)]
pub struct CombinationPicker {
    combinations: Vec<DatasetSet>,
    sampler: DiscreteSampler,
    rng: ChaCha8Rng,
}

impl CombinationPicker {
    /// Creates a picker over all combinations of `datasets_per_query` out of
    /// `num_datasets` datasets.
    ///
    /// The combination domain is shuffled deterministically (from `seed`)
    /// before the skewed distribution is applied, so that "the popular
    /// combination" is not always the lexicographically first one.
    ///
    /// # Panics
    /// Panics if the domain is empty (`datasets_per_query` is zero or larger
    /// than `num_datasets`).
    pub fn new(
        num_datasets: usize,
        datasets_per_query: usize,
        distribution: CombinationDistribution,
        seed: u64,
    ) -> Self {
        let mut combinations = enumerate_combinations(num_datasets, datasets_per_query);
        assert!(
            !combinations.is_empty(),
            "no combinations of {datasets_per_query} out of {num_datasets} datasets"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC0_B0);
        // Fisher-Yates shuffle so the hot combinations differ across seeds.
        for i in (1..combinations.len()).rev() {
            let j = rng.gen_range(0..=i);
            combinations.swap(i, j);
        }
        let sampler = distribution.sampler(combinations.len());
        CombinationPicker {
            combinations,
            sampler,
            rng,
        }
    }

    /// Number of possible combinations (the paper reports this next to the
    /// number of *actually* queried combinations on the x-axis of Figure 4).
    pub fn domain_size(&self) -> usize {
        self.combinations.len()
    }

    /// The combination the skewed distributions favour most (index 0 of the
    /// shuffled domain). Used by the Figure 5c experiment, which plots only
    /// the queries that request the most popular combination.
    pub fn hottest_combination(&self) -> DatasetSet {
        self.combinations[0]
    }

    /// Draws the combination for the next query.
    pub fn next_combination(&mut self) -> DatasetSet {
        let idx = self.sampler.sample(&mut self.rng);
        self.combinations[idx]
    }

    /// Draws `count` combinations.
    pub fn generate(&mut self, count: usize) -> Vec<DatasetSet> {
        (0..count).map(|_| self.next_combination()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_geom::binomial;
    use std::collections::HashMap;

    #[test]
    fn domain_size_matches_binomial() {
        for (n, m) in [(10, 1), (10, 3), (10, 5), (10, 7), (10, 9)] {
            let p = CombinationPicker::new(n, m, CombinationDistribution::Uniform, 1);
            assert_eq!(p.domain_size(), binomial(n, m));
        }
    }

    #[test]
    #[should_panic(expected = "no combinations")]
    fn invalid_domain_panics() {
        let _ = CombinationPicker::new(5, 0, CombinationDistribution::Uniform, 1);
    }

    #[test]
    fn combinations_have_requested_size() {
        let mut p = CombinationPicker::new(10, 5, CombinationDistribution::Zipf, 3);
        for c in p.generate(500) {
            assert_eq!(c.len(), 5);
        }
    }

    #[test]
    fn zipf_concentrates_on_hottest() {
        let mut p = CombinationPicker::new(10, 5, CombinationDistribution::Zipf, 11);
        let hot = p.hottest_combination();
        let picks = p.generate(1000);
        let hot_count = picks.iter().filter(|&&c| c == hot).count();
        // Zipf(2) over 252 values puts ~61% of the mass on the first value.
        assert!(
            hot_count > 500,
            "hot combination picked only {hot_count}/1000 times"
        );
    }

    #[test]
    fn heavy_hitter_hits_half() {
        let mut p = CombinationPicker::new(10, 3, CombinationDistribution::HeavyHitter, 11);
        let hot = p.hottest_combination();
        let picks = p.generate(2000);
        let hot_count = picks.iter().filter(|&&c| c == hot).count();
        assert!((hot_count as f64 / 2000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn uniform_spreads_over_many_combinations() {
        let mut p = CombinationPicker::new(10, 5, CombinationDistribution::Uniform, 11);
        let picks = p.generate(1000);
        let mut counts: HashMap<_, usize> = HashMap::new();
        for c in picks {
            *counts.entry(c).or_default() += 1;
        }
        // The paper observes ~216-246 distinct combinations out of 252 for
        // 1000 uniform draws; anything above 180 demonstrates the spread.
        assert!(
            counts.len() > 180,
            "only {} distinct combinations",
            counts.len()
        );
    }

    #[test]
    fn skewed_distributions_query_fewer_combinations_than_uniform() {
        let distinct = |dist| {
            let mut p = CombinationPicker::new(10, 5, dist, 11);
            let picks = p.generate(1000);
            let set: std::collections::HashSet<_> = picks.into_iter().collect();
            set.len()
        };
        let zipf = distinct(CombinationDistribution::Zipf);
        let uniform = distinct(CombinationDistribution::Uniform);
        assert!(zipf < uniform, "zipf={zipf} uniform={uniform}");
    }

    #[test]
    fn deterministic_per_seed_and_different_across_seeds() {
        let run =
            |seed| CombinationPicker::new(10, 3, CombinationDistribution::Zipf, seed).generate(100);
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn different_seeds_give_different_hot_combination() {
        let hot = |seed| {
            CombinationPicker::new(10, 5, CombinationDistribution::Zipf, seed).hottest_combination()
        };
        // Not guaranteed for every pair, but over 4 seeds at least two should differ.
        let hots: Vec<_> = (0..4).map(hot).collect();
        assert!(hots.iter().any(|&h| h != hots[0]));
    }
}
