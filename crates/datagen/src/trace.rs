//! Interleaved ingest/query trace generation.
//!
//! Real scientific archives keep ingesting while users explore: NASA's
//! long-term astrophysics archives and ESASky both serve *growing* mission
//! catalogs. [`InterleavedTraceSpec`] extends the mixed-kind workload model
//! with an online-arrival stream: the generated trace interleaves ingest
//! batches between queries, with a configurable ingest ratio and a
//! configurable arrival skew over datasets (hot datasets receive most of the
//! new data, like an actively observing mission). Arrivals cluster near the
//! positions the following queries probe, modelling the
//! observation-then-inspection loop of exploration portals.
//!
//! Traces are deterministic per seed and JSON-roundtrippable through
//! [`crate::json::SavedTrace`], like PR 2's query workloads.

use crate::mixed::MixedWorkloadSpec;
use odyssey_geom::{Aabb, DatasetId, DatasetSet, ObjectId, Query, QueryKind, SpatialObject, Vec3};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The arrival stream of an interleaved trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestProfile {
    /// Probability that an ingest batch precedes any given query (so the
    /// trace holds roughly `ingest_ratio · num_queries` ingest steps).
    pub ingest_ratio: f64,
    /// Objects per ingest batch.
    pub batch_size: usize,
    /// Skew of the arrival stream over datasets: weight of dataset `d` is
    /// `1 / (d + 1)^skew`. `0` spreads arrivals uniformly; larger values
    /// concentrate them on the low-id (hot) datasets.
    pub arrival_skew: f64,
    /// First object id assigned to arrivals (per dataset, counting up).
    /// Keep it above every id the initial datasets use.
    pub first_object_id: u64,
    /// Arrival extent as a fraction of the brain volume's extent per
    /// dimension.
    pub object_extent_fraction: f64,
    /// Jitter of arrival centers around the next query's position, as a
    /// fraction of the volume extent (arrivals correlate with where the
    /// exploration is looking — the observation-then-inspection loop).
    pub position_jitter_fraction: f64,
}

impl Default for IngestProfile {
    fn default() -> Self {
        IngestProfile {
            ingest_ratio: 0.25,
            batch_size: 64,
            arrival_skew: 1.0,
            first_object_id: 1 << 32,
            object_extent_fraction: 2e-3,
            position_jitter_fraction: 0.04,
        }
    }
}

/// Everything needed to (re)generate an interleaved ingest/query trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterleavedTraceSpec {
    /// The mixed-kind query workload the ingests interleave with.
    pub mixed: MixedWorkloadSpec,
    /// The arrival stream.
    pub ingest: IngestProfile,
}

/// When one trace step arrives at a serving tier, and from whom.
///
/// A `v1` trace is closed-loop: each step starts when the previous one
/// finishes. Attaching one `Arrival` per step turns it into an *open-loop*
/// trace — steps arrive at absolute offsets regardless of how fast the
/// server drains them, which is what makes queueing (and therefore tail
/// latency) measurable. See [`OpenLoopProfile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Microseconds after the trace's epoch at which the step arrives.
    pub offset_micros: u64,
    /// The issuing tenant (client) id.
    pub tenant: u16,
}

/// Deterministic open-loop arrival generator: interarrival gaps drawn
/// uniformly in `[1, 2·mean)` (so the offered load averages one request per
/// `mean_interarrival_micros`), tenants drawn with one optionally *hot*
/// tenant taking a fixed share of the stream and the rest spread uniformly.
/// Seeded and reproducible, like every other generator in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopProfile {
    /// Mean gap between consecutive arrivals, in microseconds.
    pub mean_interarrival_micros: u64,
    /// Number of tenants issuing requests (ids `0..tenants`).
    pub tenants: u16,
    /// Share of all requests issued by tenant 0, in `0.0..=1.0`. With
    /// `1.0 / tenants` the stream is uniform; larger values model one
    /// flooding tenant for admission-control experiments.
    pub hot_tenant_share: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OpenLoopProfile {
    fn default() -> Self {
        OpenLoopProfile {
            mean_interarrival_micros: 1_000,
            tenants: 4,
            hot_tenant_share: 0.25,
            seed: 0x4F50_454E,
        }
    }
}

impl OpenLoopProfile {
    /// Generates `n` arrivals in nondecreasing offset order.
    ///
    /// # Panics
    /// Panics if `tenants` is zero, the mean gap is zero, or
    /// `hot_tenant_share` lies outside `0.0..=1.0`.
    pub fn arrivals(&self, n: usize) -> Vec<Arrival> {
        assert!(self.tenants > 0, "tenants must be positive");
        assert!(
            self.mean_interarrival_micros > 0,
            "mean_interarrival_micros must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.hot_tenant_share),
            "hot_tenant_share must lie in 0.0..=1.0"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x4F50_454E_5F4C_4F4F);
        let mut offset = 0u64;
        (0..n)
            .map(|_| {
                offset += rng.gen_range(1..=self.mean_interarrival_micros.saturating_mul(2) - 1);
                let tenant = if rng.gen_bool(self.hot_tenant_share) || self.tenants == 1 {
                    0
                } else {
                    rng.gen_range(1..self.tenants)
                };
                Arrival {
                    offset_micros: offset,
                    tenant,
                }
            })
            .collect()
    }
}

/// One step of an interleaved trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceStep {
    /// Execute a typed query.
    Query(Query),
    /// Ingest a batch of objects into one dataset.
    Ingest {
        /// The receiving dataset.
        dataset: DatasetId,
        /// The arriving objects (fresh ids within the dataset).
        objects: Vec<SpatialObject>,
    },
}

impl TraceStep {
    /// The step's query, if it is a query step.
    pub fn as_query(&self) -> Option<&Query> {
        match self {
            TraceStep::Query(q) => Some(q),
            TraceStep::Ingest { .. } => None,
        }
    }

    /// `true` for ingest steps.
    pub fn is_ingest(&self) -> bool {
        matches!(self, TraceStep::Ingest { .. })
    }
}

/// A concrete interleaved ingest/query sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct InterleavedTrace {
    /// The spec the trace was generated from.
    pub spec: InterleavedTraceSpec,
    /// The steps, in execution order.
    pub steps: Vec<TraceStep>,
    /// The combination favoured by the base workload's skewed distributions.
    pub hottest_combination: DatasetSet,
}

impl InterleavedTrace {
    /// Number of steps (ingests + queries).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the trace has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of ingest steps.
    pub fn ingest_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.is_ingest()).count()
    }

    /// Number of query steps.
    pub fn query_steps(&self) -> usize {
        self.len() - self.ingest_steps()
    }

    /// Total objects arriving over the trace.
    pub fn objects_ingested(&self) -> usize {
        self.steps
            .iter()
            .map(|s| match s {
                TraceStep::Ingest { objects, .. } => objects.len(),
                TraceStep::Query(_) => 0,
            })
            .sum()
    }

    /// How many ingest batches each dataset receives, in dataset order.
    pub fn arrivals_per_dataset(&self, num_datasets: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_datasets];
        for step in &self.steps {
            if let TraceStep::Ingest { dataset, .. } = step {
                if dataset.index() < counts.len() {
                    counts[dataset.index()] += 1;
                }
            }
        }
        counts
    }

    /// How many queries each kind received, in [`QueryKind::ALL`] order.
    pub fn kind_counts(&self) -> [(QueryKind, usize); 4] {
        QueryKind::ALL.map(|kind| {
            (
                kind,
                self.steps
                    .iter()
                    .filter(|s| s.as_query().is_some_and(|q| q.kind() == kind))
                    .count(),
            )
        })
    }
}

impl InterleavedTraceSpec {
    /// Generates the interleaved trace for the given brain volume.
    ///
    /// # Panics
    /// Panics if the ingest ratio is outside `[0, 1)` or the batch size is 0.
    pub fn generate(&self, bounds: &Aabb) -> InterleavedTrace {
        assert!(
            (0.0..1.0).contains(&self.ingest.ingest_ratio),
            "ingest_ratio must be in [0, 1)"
        );
        assert!(self.ingest.batch_size > 0, "batch_size must be positive");
        let mixed = self.mixed.generate(bounds);
        // An independent stream drives the arrivals, so the same seed varies
        // the ingest pattern without moving the queries.
        let mut rng = ChaCha8Rng::seed_from_u64(self.mixed.base.seed ^ 0x494E_4745_5354_5F31);
        let num_datasets = self.mixed.base.num_datasets;
        let weights: Vec<f64> = (0..num_datasets)
            .map(|d| 1.0 / ((d + 1) as f64).powf(self.ingest.arrival_skew))
            .collect();
        let weight_total: f64 = weights.iter().sum();
        let mut next_id = vec![self.ingest.first_object_id; num_datasets];
        let extent = bounds.extent();
        let mut steps = Vec::with_capacity(mixed.queries.len() * 2);
        for query in mixed.queries {
            if rng.gen_range(0.0..1.0) < self.ingest.ingest_ratio {
                // Pick the receiving dataset from the skewed arrival weights.
                let mut pick = rng.gen_range(0.0..weight_total);
                let mut dataset = num_datasets - 1;
                for (d, w) in weights.iter().enumerate() {
                    if pick < *w {
                        dataset = d;
                        break;
                    }
                    pick -= w;
                }
                let anchor = query_position(&query, bounds);
                let objects = (0..self.ingest.batch_size)
                    .map(|_| {
                        let jitter = Vec3::new(
                            rng.gen_range(-1.0..1.0),
                            rng.gen_range(-1.0..1.0),
                            rng.gen_range(-1.0..1.0),
                        ) * self.ingest.position_jitter_fraction;
                        let center = (anchor
                            + Vec3::new(
                                jitter.x * extent.x,
                                jitter.y * extent.y,
                                jitter.z * extent.z,
                            ))
                        .clamp(bounds.min, bounds.max);
                        let obj_extent =
                            extent * (self.ingest.object_extent_fraction * rng.gen_range(0.5..1.5));
                        let id = ObjectId(next_id[dataset]);
                        next_id[dataset] += 1;
                        SpatialObject::new(
                            id,
                            DatasetId(dataset as u16),
                            Aabb::from_center_extent(center, obj_extent),
                        )
                    })
                    .collect();
                steps.push(TraceStep::Ingest {
                    dataset: DatasetId(dataset as u16),
                    objects,
                });
            }
            steps.push(TraceStep::Query(query));
        }
        InterleavedTrace {
            spec: self.clone(),
            steps,
            hottest_combination: mixed.hottest_combination,
        }
    }
}

/// The spatial anchor of a query (range/count center, probe point).
fn query_position(query: &Query, bounds: &Aabb) -> Vec3 {
    match query {
        Query::Range(q) => q.range.center(),
        Query::Count(q) => q.range.center(),
        Query::Point(q) => q.point,
        Query::KNearestNeighbors(q) => q.point,
    }
    .clamp(bounds.min, bounds.max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixed::QueryKindMix;
    use crate::workload::WorkloadSpec;

    fn bounds() -> Aabb {
        Aabb::from_min_max(Vec3::ZERO, Vec3::splat(1000.0))
    }

    fn spec(ratio: f64, skew: f64) -> InterleavedTraceSpec {
        InterleavedTraceSpec {
            mixed: MixedWorkloadSpec {
                base: WorkloadSpec {
                    num_queries: 400,
                    ..Default::default()
                },
                mix: QueryKindMix::balanced(),
            },
            ingest: IngestProfile {
                ingest_ratio: ratio,
                arrival_skew: skew,
                batch_size: 16,
                ..Default::default()
            },
        }
    }

    #[test]
    fn ratio_controls_the_ingest_share() {
        let t = spec(0.25, 1.0).generate(&bounds());
        assert_eq!(t.query_steps(), 400);
        let share = t.ingest_steps() as f64 / 400.0;
        assert!((0.15..0.35).contains(&share), "share {share}");
        assert_eq!(t.objects_ingested(), t.ingest_steps() * 16);
        assert!(!t.is_empty());
        assert_eq!(t.len(), t.ingest_steps() + t.query_steps());
        // Every kind still appears among the query steps.
        for (kind, count) in t.kind_counts() {
            assert!(count > 0, "kind {kind:?} missing");
        }
        // Zero ratio: a pure query trace.
        let pure = spec(0.0, 1.0).generate(&bounds());
        assert_eq!(pure.ingest_steps(), 0);
        assert_eq!(pure.len(), 400);
    }

    #[test]
    fn arrival_skew_concentrates_on_hot_datasets() {
        let skewed = spec(0.5, 2.0).generate(&bounds());
        let counts = skewed.arrivals_per_dataset(10);
        assert!(
            counts[0] > 3 * counts.iter().skip(5).max().unwrap().max(&1),
            "dataset 0 must dominate arrivals: {counts:?}"
        );
        let uniform = spec(0.5, 0.0).generate(&bounds());
        let u = uniform.arrivals_per_dataset(10);
        let (min, max) = (u.iter().min().unwrap(), u.iter().max().unwrap());
        assert!(*max < 4 * min.max(&1), "uniform arrivals: {u:?}");
    }

    #[test]
    fn arrivals_have_fresh_ids_and_stay_in_bounds() {
        let t = spec(0.4, 1.0).generate(&bounds());
        for step in &t.steps {
            if let TraceStep::Ingest { dataset, objects } = step {
                for o in objects {
                    assert_eq!(o.dataset, *dataset);
                    assert!(o.id.0 >= 1 << 32);
                    assert!(bounds().contains_point(o.center()));
                }
            }
        }
        // Ids are unique per dataset across the whole trace.
        let mut seen = std::collections::HashSet::new();
        for step in &t.steps {
            if let TraceStep::Ingest { objects, .. } = step {
                for o in objects {
                    assert!(seen.insert((o.dataset, o.id)), "duplicate id {o:?}");
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let s = spec(0.3, 1.0);
        assert_eq!(s.generate(&bounds()), s.generate(&bounds()));
        let mut other = s.clone();
        other.mixed.base.seed ^= 1;
        assert_ne!(s.generate(&bounds()).steps, other.generate(&bounds()).steps);
    }

    #[test]
    #[should_panic(expected = "ingest_ratio")]
    fn out_of_range_ratio_panics() {
        let _ = spec(1.5, 1.0).generate(&bounds());
    }

    #[test]
    fn open_loop_arrivals_are_sorted_deterministic_and_tenant_bounded() {
        let p = OpenLoopProfile {
            mean_interarrival_micros: 500,
            tenants: 5,
            hot_tenant_share: 0.6,
            seed: 42,
        };
        let a = p.arrivals(400);
        assert_eq!(a.len(), 400);
        assert_eq!(a, p.arrivals(400), "deterministic per seed");
        assert!(a
            .windows(2)
            .all(|w| w[0].offset_micros <= w[1].offset_micros));
        assert!(a.iter().all(|x| x.tenant < 5));
        assert!(a.iter().all(|x| x.offset_micros > 0));
        // The hot share concentrates on tenant 0.
        let hot = a.iter().filter(|x| x.tenant == 0).count();
        assert!(hot > 150 && hot < 350, "hot tenant got {hot}/400");
        // The mean gap lands near the configured mean.
        let span = a.last().map(|x| x.offset_micros).unwrap_or(0);
        let mean = span / 400;
        assert!((250..=750).contains(&mean), "mean gap {mean}");
        let mut other = p;
        other.seed ^= 1;
        assert_ne!(other.arrivals(400), a, "seed-sensitive");
    }

    #[test]
    #[should_panic(expected = "hot_tenant_share")]
    fn out_of_range_hot_share_panics() {
        let _ = OpenLoopProfile {
            hot_tenant_share: 1.5,
            ..Default::default()
        }
        .arrivals(1);
    }
}
