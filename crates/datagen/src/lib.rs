//! # odyssey-datagen
//!
//! Synthetic datasets and query workloads mirroring the paper's evaluation.
//!
//! The paper uses ten real neuroscience datasets (neuron meshes from the
//! Human Brain Project, ~5 GB each) and a synthetic workload of 1000 range
//! queries whose spatial ranges follow a clustered or uniform distribution
//! and whose *dataset combinations* follow the Gray et al. heavy-hitter,
//! self-similar, Zipf or uniform distributions. The real data is not
//! redistributable, so this crate generates a faithful, deterministic
//! substitute (see DESIGN.md §3):
//!
//! * [`brain`] — neuron-morphology generator that fills a brain volume with
//!   spatially clustered tubular segments, one object per segment,
//! * [`distributions`] — the Gray et al. discrete distributions,
//! * [`queries`] — clustered / uniform query-range generators with a fixed
//!   query volume,
//! * [`combos`] — combination pickers over `C(n, m)` dataset subsets,
//! * [`workload`] — ties everything together into a reproducible
//!   [`Workload`] (sequence of [`odyssey_geom::RangeQuery`]),
//! * [`mixed`] — re-types a base workload into a mixed-kind sequence of
//!   [`odyssey_geom::Query`] (range / point / kNN / count),
//! * [`trace`] — interleaves a mixed-kind workload with an online-arrival
//!   stream (configurable ingest ratio and per-dataset arrival skew) into an
//!   ingest+query trace,
//! * [`json`] — dependency-free JSON save/load of a full workload
//!   (objects + queries) or an interleaved trace, for reproducible
//!   cross-host benchmark runs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod brain;
pub mod combos;
pub mod distributions;
pub mod json;
pub mod mixed;
pub mod queries;
pub mod trace;
pub mod workload;

pub use brain::{BrainModel, DatasetSpec};
pub use combos::CombinationPicker;
pub use distributions::{CombinationDistribution, DiscreteSampler};
pub use json::{JsonError, JsonValue, SavedTrace, SavedWorkload};
pub use mixed::{as_typed_queries, MixedWorkload, MixedWorkloadSpec, QueryKindMix};
pub use queries::{QueryRangeDistribution, QueryRangeGenerator};
pub use trace::{
    Arrival, IngestProfile, InterleavedTrace, InterleavedTraceSpec, OpenLoopProfile, TraceStep,
};
pub use workload::{Workload, WorkloadSpec};
