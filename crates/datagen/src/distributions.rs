//! Discrete skew distributions from Gray et al., "Quickly Generating
//! Billion-Record Synthetic Databases" (SIGMOD '94).
//!
//! The paper selects which combination of datasets each query touches using
//! four distributions over the combination domain: **heavy hitter** (one
//! combination receives 50% of all queries), **self-similar** (80–20 rule),
//! **Zipf** (exponent 2) and **uniform**. These drive how much skew Space
//! Odyssey's statistics-driven merging can exploit.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which distribution to use when picking dataset combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CombinationDistribution {
    /// One combination receives `hot_fraction` (default 50%) of all queries;
    /// the rest are uniform over the remaining combinations.
    HeavyHitter,
    /// Gray et al. self-similar distribution with the 80–20 proportion.
    SelfSimilar,
    /// Zipf distribution with exponent 2 (the paper's setting).
    Zipf,
    /// Uniform over all combinations (the paper's non-skewed control).
    Uniform,
}

impl CombinationDistribution {
    /// All four distributions in the order the paper presents them.
    pub const ALL: [CombinationDistribution; 4] = [
        CombinationDistribution::HeavyHitter,
        CombinationDistribution::SelfSimilar,
        CombinationDistribution::Zipf,
        CombinationDistribution::Uniform,
    ];

    /// Short lower-case name used in reports and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            CombinationDistribution::HeavyHitter => "heavy-hitter",
            CombinationDistribution::SelfSimilar => "self-similar",
            CombinationDistribution::Zipf => "zipf",
            CombinationDistribution::Uniform => "uniform",
        }
    }

    /// Builds a sampler over the domain `[0, n)`.
    pub fn sampler(self, n: usize) -> DiscreteSampler {
        DiscreteSampler::new(self, n)
    }
}

/// Samples indices in `[0, n)` according to a [`CombinationDistribution`].
#[derive(Debug, Clone)]
pub struct DiscreteSampler {
    distribution: CombinationDistribution,
    n: usize,
    /// Cumulative distribution (only used by the Zipf variant).
    zipf_cdf: Vec<f64>,
    /// Fraction of queries hitting the single hot value (heavy hitter).
    hot_fraction: f64,
    /// Skew of the self-similar distribution (`h`): a fraction `1 - h` of the
    /// accesses go to the first `h` fraction of the values, recursively.
    /// `h = 0.2` yields the 80–20 rule used by the paper.
    self_similar_h: f64,
    /// Zipf exponent (2 in the paper).
    zipf_theta: f64,
}

impl DiscreteSampler {
    /// Creates a sampler for the given distribution over `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(distribution: CombinationDistribution, n: usize) -> Self {
        assert!(n > 0, "cannot sample from an empty domain");
        let zipf_theta = 2.0;
        let zipf_cdf = if distribution == CombinationDistribution::Zipf {
            let mut weights: Vec<f64> =
                (1..=n).map(|i| 1.0 / (i as f64).powf(zipf_theta)).collect();
            let total: f64 = weights.iter().sum();
            let mut acc = 0.0;
            for w in weights.iter_mut() {
                acc += *w / total;
                *w = acc;
            }
            // Guard against floating-point drift at the end of the CDF.
            if let Some(last) = weights.last_mut() {
                *last = 1.0;
            }
            weights
        } else {
            Vec::new()
        };
        DiscreteSampler {
            distribution,
            n,
            zipf_cdf,
            hot_fraction: 0.5,
            self_similar_h: 0.2,
            zipf_theta,
        }
    }

    /// The domain size.
    pub fn domain_size(&self) -> usize {
        self.n
    }

    /// The distribution this sampler implements.
    pub fn distribution(&self) -> CombinationDistribution {
        self.distribution
    }

    /// The Zipf exponent used by the Zipf variant.
    pub fn zipf_theta(&self) -> f64 {
        self.zipf_theta
    }

    /// Draws one index in `[0, n)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match self.distribution {
            CombinationDistribution::Uniform => rng.gen_range(0..self.n),
            CombinationDistribution::HeavyHitter => {
                if self.n == 1 || rng.gen_bool(self.hot_fraction) {
                    0
                } else {
                    rng.gen_range(1..self.n)
                }
            }
            CombinationDistribution::SelfSimilar => {
                // Gray et al. getSelfSimilar: skews towards low indices so
                // that (1-h) of the mass falls on the first h*n values.
                let h = self.self_similar_h;
                let u: f64 = rng.gen_range(0.0..1.0);
                let v = (self.n as f64) * u.powf(h.ln() / (1.0 - h).ln());
                (v as usize).min(self.n - 1)
            }
            CombinationDistribution::Zipf => {
                let u: f64 = rng.gen_range(0.0..1.0);
                match self
                    .zipf_cdf
                    .binary_search_by(|p| p.partial_cmp(&u).expect("finite CDF"))
                {
                    Ok(i) => i,
                    Err(i) => i.min(self.n - 1),
                }
            }
        }
    }

    /// Draws `count` indices.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<usize> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn histogram(dist: CombinationDistribution, n: usize, draws: usize) -> Vec<usize> {
        let sampler = dist.sampler(n);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut hist = vec![0usize; n];
        for _ in 0..draws {
            hist[sampler.sample(&mut rng)] += 1;
        }
        hist
    }

    #[test]
    fn names() {
        assert_eq!(CombinationDistribution::HeavyHitter.name(), "heavy-hitter");
        assert_eq!(CombinationDistribution::SelfSimilar.name(), "self-similar");
        assert_eq!(CombinationDistribution::Zipf.name(), "zipf");
        assert_eq!(CombinationDistribution::Uniform.name(), "uniform");
        assert_eq!(CombinationDistribution::ALL.len(), 4);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn empty_domain_panics() {
        let _ = CombinationDistribution::Uniform.sampler(0);
    }

    #[test]
    fn all_samples_in_range() {
        for dist in CombinationDistribution::ALL {
            let sampler = dist.sampler(37);
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            for _ in 0..10_000 {
                assert!(sampler.sample(&mut rng) < 37, "{dist:?} out of range");
            }
        }
    }

    #[test]
    fn domain_of_one_always_returns_zero() {
        for dist in CombinationDistribution::ALL {
            let sampler = dist.sampler(1);
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            for _ in 0..100 {
                assert_eq!(sampler.sample(&mut rng), 0);
            }
        }
    }

    #[test]
    fn uniform_is_roughly_flat() {
        let hist = histogram(CombinationDistribution::Uniform, 10, 100_000);
        for &count in &hist {
            let frac = count as f64 / 100_000.0;
            assert!((frac - 0.1).abs() < 0.02, "uniform bucket fraction {frac}");
        }
    }

    #[test]
    fn heavy_hitter_puts_half_on_one_value() {
        let hist = histogram(CombinationDistribution::HeavyHitter, 100, 100_000);
        let hot = hist[0] as f64 / 100_000.0;
        assert!((hot - 0.5).abs() < 0.02, "hot fraction {hot}");
        // Remaining values share the rest roughly uniformly.
        let rest_avg: f64 = hist[1..].iter().map(|&c| c as f64).sum::<f64>() / 99.0 / 100_000.0;
        assert!((rest_avg - 0.5 / 99.0).abs() < 0.01);
    }

    #[test]
    fn self_similar_follows_80_20() {
        let n = 100;
        let draws = 200_000;
        let hist = histogram(CombinationDistribution::SelfSimilar, n, draws);
        let top20: usize = hist[..n / 5].iter().sum();
        let frac = top20 as f64 / draws as f64;
        assert!(
            frac > 0.75 && frac < 0.85,
            "80-20 violated: first 20% got {frac}"
        );
    }

    #[test]
    fn zipf_is_heavily_skewed_and_monotone() {
        let n = 50;
        let draws = 200_000;
        let hist = histogram(CombinationDistribution::Zipf, n, draws);
        // With exponent 2, the first value gets about 1/zeta(2) ≈ 0.6.
        let first = hist[0] as f64 / draws as f64;
        assert!(first > 0.55 && first < 0.68, "zipf head mass {first}");
        // Mass decreases (allowing for sampling noise in the tail).
        assert!(hist[0] > hist[1]);
        assert!(hist[1] > hist[4]);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let sampler = CombinationDistribution::Zipf.sampler(20);
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(
            sampler.sample_many(&mut a, 100),
            sampler.sample_many(&mut b, 100)
        );
    }

    #[test]
    fn accessors() {
        let s = CombinationDistribution::Zipf.sampler(10);
        assert_eq!(s.domain_size(), 10);
        assert_eq!(s.distribution(), CombinationDistribution::Zipf);
        assert_eq!(s.zipf_theta(), 2.0);
    }
}
