//! Synthetic neuroscience datasets.
//!
//! The paper's datasets are subsets of neurons of the same brain volume, each
//! neuron modelled by a 3-D surface mesh; the indexing layer only sees the
//! bounding boxes of small mesh pieces. This generator reproduces the two
//! properties that matter to the evaluated systems:
//!
//! 1. **Spatial clustering** — neurons cluster into regions (cortical
//!    columns), so data density is highly non-uniform, and
//! 2. **Shared space** — every dataset covers the same brain volume, so the
//!    same spatial region exists in all datasets (this is what makes merging
//!    across datasets worthwhile).
//!
//! Each dataset draws neuron somas from the same mixture of Gaussian clusters
//! (with its own per-dataset RNG stream) and grows branching processes as
//! chains of tubular [`odyssey_geom::Segment`]s; every segment becomes one
//! [`SpatialObject`].

use odyssey_geom::{Aabb, DatasetId, ObjectId, Segment, SpatialObject, Vec3};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic brain and its datasets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Number of datasets to generate (the paper uses 10).
    pub num_datasets: usize,
    /// Number of spatial objects (segments) per dataset.
    pub objects_per_dataset: usize,
    /// The brain volume shared by all datasets.
    pub bounds: Aabb,
    /// Number of soma clusters (brain regions) the neurons concentrate in.
    pub soma_clusters: usize,
    /// Average number of segments grown per neuron; the number of neurons is
    /// derived as `objects_per_dataset / segments_per_neuron`.
    pub segments_per_neuron: usize,
    /// Base random seed; dataset `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for DatasetSpec {
    /// A laptop-scale default: 10 datasets of 50 000 segments in a
    /// 1000-unit-wide brain volume (the paper's datasets are ~5 GB each; the
    /// harness scales `objects_per_dataset` as needed).
    fn default() -> Self {
        DatasetSpec {
            num_datasets: 10,
            objects_per_dataset: 50_000,
            bounds: Aabb::from_min_max(Vec3::ZERO, Vec3::splat(1000.0)),
            soma_clusters: 16,
            segments_per_neuron: 100,
            seed: 0xB_A11,
        }
    }
}

impl DatasetSpec {
    /// Convenience constructor overriding the sizes that the experiment
    /// harness varies.
    pub fn with_size(num_datasets: usize, objects_per_dataset: usize, seed: u64) -> Self {
        DatasetSpec {
            num_datasets,
            objects_per_dataset,
            seed,
            ..Default::default()
        }
    }
}

/// Generator of synthetic neuroscience datasets.
#[derive(Debug, Clone)]
pub struct BrainModel {
    spec: DatasetSpec,
    cluster_centers: Vec<Vec3>,
    cluster_radius: f64,
}

impl BrainModel {
    /// Creates a brain model; the soma cluster centers are derived from the
    /// spec's seed so the same spec always produces the same brain.
    pub fn new(spec: DatasetSpec) -> Self {
        assert!(spec.num_datasets > 0, "need at least one dataset");
        assert!(
            spec.objects_per_dataset > 0,
            "need at least one object per dataset"
        );
        assert!(spec.soma_clusters > 0, "need at least one soma cluster");
        assert!(
            spec.segments_per_neuron > 0,
            "need at least one segment per neuron"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        let e = spec.bounds.extent();
        let cluster_centers = (0..spec.soma_clusters)
            .map(|_| {
                Vec3::new(
                    spec.bounds.min.x + rng.gen_range(0.05..0.95) * e.x,
                    spec.bounds.min.y + rng.gen_range(0.05..0.95) * e.y,
                    spec.bounds.min.z + rng.gen_range(0.05..0.95) * e.z,
                )
            })
            .collect();
        let cluster_radius = e.min_component() * 0.08;
        BrainModel {
            spec,
            cluster_centers,
            cluster_radius,
        }
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// The shared brain volume.
    pub fn bounds(&self) -> Aabb {
        self.spec.bounds
    }

    /// The soma cluster centers (exposed for tests and visualisation).
    pub fn cluster_centers(&self) -> &[Vec3] {
        &self.cluster_centers
    }

    /// Generates all datasets. Dataset `i` gets dataset id `i`.
    pub fn generate_all(&self) -> Vec<Vec<SpatialObject>> {
        (0..self.spec.num_datasets)
            .map(|i| self.generate_dataset(DatasetId(i as u16)))
            .collect()
    }

    /// Generates one dataset.
    pub fn generate_dataset(&self, dataset: DatasetId) -> Vec<SpatialObject> {
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.spec.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(dataset.0 as u64 + 1)),
        );
        let target = self.spec.objects_per_dataset;
        let mut objects = Vec::with_capacity(target);
        let mut next_id = 0u64;
        while objects.len() < target {
            let remaining = target - objects.len();
            let segments = self.spec.segments_per_neuron.min(remaining);
            self.grow_neuron(&mut rng, dataset, &mut next_id, segments, &mut objects);
        }
        objects.truncate(target);
        objects
    }

    /// Grows one neuron: a soma near a cluster center plus a branching random
    /// walk of tubular segments.
    fn grow_neuron(
        &self,
        rng: &mut ChaCha8Rng,
        dataset: DatasetId,
        next_id: &mut u64,
        segments: usize,
        out: &mut Vec<SpatialObject>,
    ) {
        let bounds = self.spec.bounds;
        let extent = bounds.extent();
        let seg_len = extent.min_component() * 0.004;
        let radius = seg_len * 0.15;

        // Soma position: Gaussian around a random cluster center (Box-Muller).
        let center = self.cluster_centers[rng.gen_range(0..self.cluster_centers.len())];
        let soma = Vec3::new(
            center.x + gaussian(rng) * self.cluster_radius,
            center.y + gaussian(rng) * self.cluster_radius,
            center.z + gaussian(rng) * self.cluster_radius,
        )
        .clamp(bounds.min, bounds.max);

        // Branching random walk: maintain a small set of growth tips.
        let mut tips: Vec<(Vec3, Vec3)> = vec![(soma, random_direction(rng))];
        let mut produced = 0usize;
        while produced < segments {
            let tip_idx = rng.gen_range(0..tips.len());
            let (pos, dir) = tips[tip_idx];
            // Slightly perturb the growth direction to get tortuous processes.
            let new_dir = perturb_direction(rng, dir, 0.35);
            let end = (pos + new_dir * seg_len).clamp(bounds.min, bounds.max);
            let seg = Segment::new(pos, end, radius);
            out.push(seg.to_object(ObjectId(*next_id), dataset));
            *next_id += 1;
            produced += 1;
            tips[tip_idx] = (end, new_dir);
            // Occasionally branch (bounded so tip bookkeeping stays tiny).
            if tips.len() < 12 && rng.gen_bool(0.08) {
                tips.push((end, perturb_direction(rng, new_dir, 1.2)));
            }
        }
    }
}

/// Standard normal sample via Box-Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Uniformly distributed unit vector.
fn random_direction<R: Rng + ?Sized>(rng: &mut R) -> Vec3 {
    loop {
        let v = Vec3::new(
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
            rng.gen_range(-1.0..1.0),
        );
        let len = v.length();
        if len > 1e-6 && len <= 1.0 {
            return v / len;
        }
    }
}

/// Adds bounded angular noise to a direction and re-normalises.
fn perturb_direction<R: Rng + ?Sized>(rng: &mut R, dir: Vec3, strength: f64) -> Vec3 {
    let noisy = dir + random_direction(rng) * strength;
    let len = noisy.length();
    if len < 1e-9 {
        dir
    } else {
        noisy / len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> DatasetSpec {
        DatasetSpec {
            num_datasets: 3,
            objects_per_dataset: 2_000,
            soma_clusters: 4,
            segments_per_neuron: 50,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn generates_requested_counts() {
        let model = BrainModel::new(small_spec());
        let all = model.generate_all();
        assert_eq!(all.len(), 3);
        for (i, ds) in all.iter().enumerate() {
            assert_eq!(ds.len(), 2_000);
            assert!(ds.iter().all(|o| o.dataset == DatasetId(i as u16)));
        }
    }

    #[test]
    fn object_ids_are_unique_within_dataset() {
        let model = BrainModel::new(small_spec());
        let ds = model.generate_dataset(DatasetId(0));
        let mut ids: Vec<u64> = ds.iter().map(|o| o.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ds.len());
    }

    #[test]
    fn objects_stay_inside_brain_volume() {
        let model = BrainModel::new(small_spec());
        let bounds = model.bounds();
        // Segment MBRs may poke out by at most the segment radius.
        let slack = bounds.extent().min_component() * 0.004;
        let grown = bounds.expanded_uniform(slack);
        for o in model.generate_dataset(DatasetId(1)) {
            assert!(
                grown.contains(&o.mbr),
                "object escapes brain volume: {:?}",
                o.mbr
            );
        }
    }

    #[test]
    fn objects_are_small_relative_to_brain() {
        let model = BrainModel::new(small_spec());
        let brain_extent = model.bounds().extent().max_component();
        for o in model.generate_dataset(DatasetId(0)) {
            assert!(o.extent().max_component() < brain_extent * 0.02);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = BrainModel::new(small_spec()).generate_dataset(DatasetId(2));
        let b = BrainModel::new(small_spec()).generate_dataset(DatasetId(2));
        assert_eq!(a, b);
    }

    #[test]
    fn different_datasets_differ_but_share_space() {
        let model = BrainModel::new(small_spec());
        let a = model.generate_dataset(DatasetId(0));
        let b = model.generate_dataset(DatasetId(1));
        assert_ne!(a[0].mbr, b[0].mbr, "datasets must not be identical");
        // Shared space: both datasets populate a common region (their overall
        // MBRs overlap substantially).
        let mbr =
            |objs: &[SpatialObject]| objs.iter().fold(Aabb::empty(), |acc, o| acc.union(&o.mbr));
        let ia = mbr(&a);
        let ib = mbr(&b);
        let inter = ia.intersection(&ib).expect("datasets must overlap");
        assert!(inter.volume() > 0.25 * ia.volume().min(ib.volume()));
    }

    #[test]
    fn data_is_spatially_clustered() {
        // Density near cluster centers must exceed average density: count
        // objects within a small box around a cluster center vs a random
        // corner box of equal volume.
        let model = BrainModel::new(DatasetSpec {
            objects_per_dataset: 20_000,
            ..small_spec()
        });
        let ds = model.generate_dataset(DatasetId(0));
        let center = model.cluster_centers()[0];
        let probe_extent = model.bounds().extent() * 0.05;
        let hot = Aabb::from_center_extent(center, probe_extent);
        let cold = Aabb::from_min_max(model.bounds().min, model.bounds().min + probe_extent);
        let count = |probe: &Aabb| ds.iter().filter(|o| o.mbr.intersects(probe)).count();
        assert!(
            count(&hot) > 3 * count(&cold).max(1),
            "expected clustering: hot={} cold={}",
            count(&hot),
            count(&cold)
        );
    }

    #[test]
    fn cluster_centers_count_matches_spec() {
        let model = BrainModel::new(small_spec());
        assert_eq!(model.cluster_centers().len(), 4);
        assert_eq!(model.spec().num_datasets, 3);
    }

    #[test]
    #[should_panic(expected = "at least one dataset")]
    fn zero_datasets_panics() {
        let _ = BrainModel::new(DatasetSpec {
            num_datasets: 0,
            ..small_spec()
        });
    }

    #[test]
    fn with_size_overrides() {
        let s = DatasetSpec::with_size(4, 123, 99);
        assert_eq!(s.num_datasets, 4);
        assert_eq!(s.objects_per_dataset, 123);
        assert_eq!(s.seed, 99);
    }
}
