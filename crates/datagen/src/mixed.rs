//! Mixed-kind workload generation.
//!
//! The paper's workloads are pure range-query sequences. Real exploration
//! portals interleave kinds: a scientist pans a box (range), clicks an object
//! (point), asks "what is near this position" (kNN) and reads density
//! summaries off an overview widget (count). [`MixedWorkloadSpec`] re-types a
//! base range workload into a reproducible mixed-kind sequence: the spatial
//! and combination skew of the base workload is preserved (every kind is
//! derived from the range query at the same position), only the kind varies.

use crate::workload::{Workload, WorkloadSpec};
use odyssey_geom::{Aabb, CountQuery, DatasetSet, KnnQuery, PointQuery, Query, QueryKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Relative weights of the four query kinds, plus the kind parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryKindMix {
    /// Weight of plain range queries.
    pub range: u32,
    /// Weight of point lookups.
    pub point: u32,
    /// Weight of k-nearest-neighbour probes.
    pub knn: u32,
    /// Weight of count queries.
    pub count: u32,
    /// `k` used for every generated kNN query.
    pub knn_k: usize,
    /// Count queries model coarse density summaries: their range is the base
    /// range scaled by this per-dimension factor.
    pub count_extent_scale: f64,
}

impl Default for QueryKindMix {
    fn default() -> Self {
        QueryKindMix::balanced()
    }
}

impl QueryKindMix {
    /// Equal weight for every kind, `k = 8`, 4× count ranges.
    pub fn balanced() -> Self {
        QueryKindMix {
            range: 1,
            point: 1,
            knn: 1,
            count: 1,
            knn_k: 8,
            count_extent_scale: 4.0,
        }
    }

    /// Only range queries (the paper's original workload shape).
    pub fn range_only() -> Self {
        QueryKindMix {
            range: 1,
            point: 0,
            knn: 0,
            count: 0,
            knn_k: 8,
            count_extent_scale: 1.0,
        }
    }

    fn total(&self) -> u32 {
        self.range + self.point + self.knn + self.count
    }
}

/// Everything needed to (re)generate a mixed-kind workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedWorkloadSpec {
    /// The base range workload (spatial + combination distributions, seed).
    pub base: WorkloadSpec,
    /// How the queries are distributed over kinds.
    pub mix: QueryKindMix,
}

impl MixedWorkloadSpec {
    /// Generates the mixed workload for queries over the given brain volume.
    ///
    /// # Panics
    /// Panics if every kind weight is zero.
    pub fn generate(&self, bounds: &Aabb) -> MixedWorkload {
        assert!(self.mix.total() > 0, "at least one kind weight must be > 0");
        let base = self.base.generate(bounds);
        // An independent stream decides the kinds, so the same seed varies
        // kinds without moving the query positions of the base workload.
        let mut rng = ChaCha8Rng::seed_from_u64(self.base.seed ^ 0x4D49_5845_444B_494E);
        let queries = base
            .queries
            .iter()
            .map(|rq| {
                let mut pick = rng.gen_range(0..self.mix.total());
                if pick < self.mix.range {
                    return Query::Range(*rq);
                }
                pick -= self.mix.range;
                if pick < self.mix.point {
                    return Query::Point(PointQuery::new(rq.id, rq.range.center(), rq.datasets));
                }
                pick -= self.mix.point;
                if pick < self.mix.knn {
                    return Query::KNearestNeighbors(KnnQuery::new(
                        rq.id,
                        rq.range.center(),
                        self.mix.knn_k,
                        rq.datasets,
                    ));
                }
                let scaled = Aabb::from_center_extent(
                    rq.range.center(),
                    rq.range.extent() * self.mix.count_extent_scale,
                );
                Query::Count(CountQuery::new(rq.id, scaled, rq.datasets))
            })
            .collect();
        MixedWorkload {
            spec: self.clone(),
            queries,
            hottest_combination: base.hottest_combination,
        }
    }
}

/// A concrete mixed-kind query sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixedWorkload {
    /// The spec the workload was generated from.
    pub spec: MixedWorkloadSpec,
    /// The query sequence, in execution order.
    pub queries: Vec<Query>,
    /// The combination favoured by the skewed distributions.
    pub hottest_combination: DatasetSet,
}

impl MixedWorkload {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Returns `true` if the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// How many queries each kind received, in [`QueryKind::ALL`] order.
    pub fn kind_counts(&self) -> [(QueryKind, usize); 4] {
        QueryKind::ALL.map(|kind| {
            (
                kind,
                self.queries.iter().filter(|q| q.kind() == kind).count(),
            )
        })
    }
}

/// Convenience: a [`Workload`]'s queries as typed range queries (used to
/// drive the typed APIs with the paper's original workloads).
pub fn as_typed_queries(workload: &Workload) -> Vec<Query> {
    workload.queries.iter().map(|q| Query::Range(*q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_geom::Vec3;

    fn bounds() -> Aabb {
        Aabb::from_min_max(Vec3::ZERO, Vec3::splat(1000.0))
    }

    fn spec(mix: QueryKindMix) -> MixedWorkloadSpec {
        MixedWorkloadSpec {
            base: WorkloadSpec {
                num_queries: 400,
                ..Default::default()
            },
            mix,
        }
    }

    #[test]
    fn balanced_mix_produces_every_kind() {
        let w = spec(QueryKindMix::balanced()).generate(&bounds());
        assert_eq!(w.len(), 400);
        assert!(!w.is_empty());
        for (kind, count) in w.kind_counts() {
            assert!(
                count > 400 / 8,
                "kind {kind:?} underrepresented: {count}/400"
            );
        }
    }

    #[test]
    fn range_only_mix_matches_the_base_workload() {
        let s = spec(QueryKindMix::range_only());
        let mixed = s.generate(&bounds());
        let base = s.base.generate(&bounds());
        assert_eq!(mixed.queries, as_typed_queries(&base));
        assert_eq!(mixed.hottest_combination, base.hottest_combination);
    }

    #[test]
    fn kinds_preserve_position_and_combination() {
        let s = spec(QueryKindMix::balanced());
        let mixed = s.generate(&bounds());
        let base = s.base.generate(&bounds());
        for (typed, rq) in mixed.queries.iter().zip(&base.queries) {
            assert_eq!(typed.id(), rq.id);
            assert_eq!(typed.datasets(), rq.datasets);
            match typed {
                Query::Range(q) => assert_eq!(q.range, rq.range),
                Query::Point(q) => assert_eq!(q.point, rq.range.center()),
                Query::KNearestNeighbors(q) => {
                    assert_eq!(q.point, rq.range.center());
                    assert_eq!(q.k, 8);
                }
                Query::Count(q) => {
                    // Rebuilding the box from center + scaled extent loses at
                    // most an ulp per component.
                    assert!(q.range.center().distance(rq.range.center()) < 1e-9);
                    let scale = q.range.extent().x / rq.range.extent().x;
                    assert!((scale - 4.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed_and_seed_sensitive() {
        let s = spec(QueryKindMix::balanced());
        assert_eq!(s.generate(&bounds()), s.generate(&bounds()));
        let mut other = s.clone();
        other.base.seed ^= 1;
        assert_ne!(
            s.generate(&bounds()).queries,
            other.generate(&bounds()).queries
        );
    }

    #[test]
    #[should_panic(expected = "at least one kind weight")]
    fn zero_weights_panic() {
        let mix = QueryKindMix {
            range: 0,
            point: 0,
            knn: 0,
            count: 0,
            knn_k: 1,
            count_extent_scale: 1.0,
        };
        let _ = spec(mix).generate(&bounds());
    }
}
