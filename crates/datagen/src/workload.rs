//! Full workload assembly: the exact query sequences of the paper's
//! experiments, reproducible from a spec and a seed.

use crate::combos::CombinationPicker;
use crate::distributions::CombinationDistribution;
use crate::queries::{QueryRangeDistribution, QueryRangeGenerator};
use odyssey_geom::{Aabb, DatasetSet, QueryId, RangeQuery};
use serde::{Deserialize, Serialize};

/// Everything needed to (re)generate a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Total number of datasets in the system (the paper uses 10).
    pub num_datasets: usize,
    /// Number of datasets touched by every query (`m`, varied 1–9).
    pub datasets_per_query: usize,
    /// Number of queries in the workload (1000 in the paper).
    pub num_queries: usize,
    /// Query volume as a fraction of the brain volume (`1e-6` in the paper,
    /// i.e. `10^-4 %`).
    pub query_volume_fraction: f64,
    /// Spatial distribution of the query ranges.
    pub range_distribution: QueryRangeDistribution,
    /// Distribution over dataset combinations.
    pub combination_distribution: CombinationDistribution,
    /// Seed for all random choices of the workload.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            num_datasets: 10,
            datasets_per_query: 5,
            num_queries: 1000,
            query_volume_fraction: 1e-6,
            range_distribution: QueryRangeDistribution::Clustered { num_clusters: 10 },
            combination_distribution: CombinationDistribution::Zipf,
            seed: 0x0D15_5EA5,
        }
    }
}

impl WorkloadSpec {
    /// Generates the workload for queries over the given brain volume.
    pub fn generate(&self, bounds: &Aabb) -> Workload {
        assert!(self.num_queries > 0, "a workload needs at least one query");
        assert!(
            self.datasets_per_query >= 1 && self.datasets_per_query <= self.num_datasets,
            "datasets_per_query must be within [1, num_datasets]"
        );
        let mut ranges = QueryRangeGenerator::new(
            *bounds,
            self.query_volume_fraction,
            self.range_distribution,
            self.seed,
        );
        let mut combos = CombinationPicker::new(
            self.num_datasets,
            self.datasets_per_query,
            self.combination_distribution,
            self.seed,
        );
        let possible_combinations = combos.domain_size();
        let hottest_combination = combos.hottest_combination();
        let queries = (0..self.num_queries)
            .map(|i| {
                RangeQuery::new(
                    QueryId(i as u32),
                    ranges.next_range(),
                    combos.next_combination(),
                )
            })
            .collect();
        Workload {
            spec: self.clone(),
            queries,
            possible_combinations,
            hottest_combination,
        }
    }
}

/// A concrete sequence of range queries plus the metadata the experiment
/// reports need (number of possible combinations, the hottest combination).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The spec the workload was generated from.
    pub spec: WorkloadSpec,
    /// The query sequence, in execution order.
    pub queries: Vec<RangeQuery>,
    /// Size of the combination domain `C(n, m)`.
    pub possible_combinations: usize,
    /// The combination favoured by the skewed distributions.
    pub hottest_combination: DatasetSet,
}

impl Workload {
    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Returns `true` if the workload has no queries (never the case for
    /// generated workloads, kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Number of *distinct* combinations actually queried — the number shown
    /// in parentheses on the x-axis of Figure 4.
    pub fn distinct_combinations(&self) -> usize {
        let set: std::collections::HashSet<DatasetSet> =
            self.queries.iter().map(|q| q.datasets).collect();
        set.len()
    }

    /// How many queries request exactly the hottest combination (Figure 5c
    /// plots only those queries).
    pub fn hottest_combination_queries(&self) -> Vec<&RangeQuery> {
        self.queries
            .iter()
            .filter(|q| q.datasets == self.hottest_combination)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_geom::Vec3;

    fn bounds() -> Aabb {
        Aabb::from_min_max(Vec3::ZERO, Vec3::splat(1000.0))
    }

    #[test]
    fn generates_requested_queries() {
        let spec = WorkloadSpec {
            num_queries: 200,
            ..Default::default()
        };
        let w = spec.generate(&bounds());
        assert_eq!(w.len(), 200);
        assert!(!w.is_empty());
        for (i, q) in w.queries.iter().enumerate() {
            assert_eq!(q.id.index(), i);
            assert_eq!(q.datasets.len(), 5);
            assert!(bounds().contains(&q.range));
        }
    }

    #[test]
    fn possible_combinations_match_paper_axis() {
        // The x-axis of Figure 4 annotates the number of possible
        // combinations: 10, 120, 252, 120, 10 for m = 1, 3, 5, 7, 9.
        for (m, expected) in [(1, 10), (3, 120), (5, 252), (7, 120), (9, 10)] {
            let spec = WorkloadSpec {
                datasets_per_query: m,
                num_queries: 10,
                ..Default::default()
            };
            assert_eq!(spec.generate(&bounds()).possible_combinations, expected);
        }
    }

    #[test]
    fn distinct_combinations_depend_on_skew() {
        let gen = |dist| {
            WorkloadSpec {
                combination_distribution: dist,
                num_queries: 1000,
                ..Default::default()
            }
            .generate(&bounds())
            .distinct_combinations()
        };
        let zipf = gen(CombinationDistribution::Zipf);
        let uniform = gen(CombinationDistribution::Uniform);
        assert!(zipf < uniform, "zipf={zipf} uniform={uniform}");
        // Ballpark of the paper's reported counts (zipf ~29, uniform ~246 for m=5).
        assert!(zipf < 80);
        assert!(uniform > 150);
    }

    #[test]
    fn hottest_combination_is_frequent_under_zipf() {
        let spec = WorkloadSpec {
            combination_distribution: CombinationDistribution::Zipf,
            num_queries: 1000,
            ..Default::default()
        };
        let w = spec.generate(&bounds());
        let hot = w.hottest_combination_queries();
        assert!(
            hot.len() > 500,
            "hottest combination queried {} times",
            hot.len()
        );
        assert!(hot.iter().all(|q| q.datasets == w.hottest_combination));
    }

    #[test]
    fn workload_is_deterministic() {
        let spec = WorkloadSpec::default();
        assert_eq!(spec.generate(&bounds()), spec.generate(&bounds()));
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec {
            seed: 1,
            ..Default::default()
        }
        .generate(&bounds());
        let b = WorkloadSpec {
            seed: 2,
            ..Default::default()
        }
        .generate(&bounds());
        assert_ne!(a.queries, b.queries);
    }

    #[test]
    #[should_panic(expected = "within [1, num_datasets]")]
    fn invalid_m_panics() {
        let spec = WorkloadSpec {
            datasets_per_query: 11,
            ..Default::default()
        };
        let _ = spec.generate(&bounds());
    }

    #[test]
    fn spec_is_serialisable() {
        // The bench harness persists specs next to results; make sure the
        // Serialize impl exists and produces the expected field names.
        fn assert_serialisable<T: Serialize>(_: &T) {}
        let spec = WorkloadSpec::default();
        assert_serialisable(&spec);
        assert_serialisable(&spec.generate(&bounds()));
    }
}
