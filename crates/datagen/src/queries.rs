//! Query-range generation.
//!
//! The paper generates 1000 cube-shaped range queries of fixed volume
//! (`10^-4 %` of the brain volume). Query centers are either **clustered**
//! (Gaussian around a small number of cluster centers, modelling scientists
//! repeatedly inspecting the same brain regions) or **uniform** (the
//! non-skewed control of Figure 4d / 5b).

use odyssey_geom::{Aabb, Vec3};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Spatial distribution of query centers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QueryRangeDistribution {
    /// Query centers are Gaussian around `num_clusters` cluster centers
    /// (10 in Figures 4–5a, 5 in the merging experiment of Figure 5c).
    Clustered {
        /// Number of query cluster centers.
        num_clusters: usize,
    },
    /// Query centers are uniform over the brain volume.
    Uniform,
}

impl QueryRangeDistribution {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            QueryRangeDistribution::Clustered { .. } => "clustered",
            QueryRangeDistribution::Uniform => "uniform",
        }
    }
}

/// Generates cube-shaped query ranges of a fixed volume fraction.
#[derive(Debug, Clone)]
pub struct QueryRangeGenerator {
    bounds: Aabb,
    distribution: QueryRangeDistribution,
    side: f64,
    cluster_centers: Vec<Vec3>,
    sigma: f64,
    rng: ChaCha8Rng,
}

impl QueryRangeGenerator {
    /// Creates a generator.
    ///
    /// * `bounds` — the brain volume the queries live in,
    /// * `volume_fraction` — the query volume as a fraction of the brain
    ///   volume (the paper uses `10^-4 % = 1e-6`),
    /// * `distribution` — clustered or uniform centers,
    /// * `seed` — RNG seed; the cluster centers derive from it too.
    pub fn new(
        bounds: Aabb,
        volume_fraction: f64,
        distribution: QueryRangeDistribution,
        seed: u64,
    ) -> Self {
        assert!(
            volume_fraction > 0.0 && volume_fraction <= 1.0,
            "volume fraction out of (0,1]"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0051_EED5);
        let side = (bounds.volume() * volume_fraction).cbrt();
        // The paper spreads query centers around each cluster center with a
        // standard deviation proportional to the query size (σ = qvol · 10).
        // Two query sides keeps each cluster a genuinely *hot area*: queries
        // of the same cluster overlap the same partitions again and again,
        // which is what adaptive refinement and merging exploit. (A larger σ
        // degrades the clustered workload towards the uniform one of
        // Figure 4d.)
        let sigma = side * 2.0;
        let e = bounds.extent();
        let cluster_centers = match distribution {
            QueryRangeDistribution::Clustered { num_clusters } => {
                assert!(
                    num_clusters > 0,
                    "clustered distribution needs at least one cluster"
                );
                (0..num_clusters)
                    .map(|_| {
                        Vec3::new(
                            bounds.min.x + rng.gen_range(0.1..0.9) * e.x,
                            bounds.min.y + rng.gen_range(0.1..0.9) * e.y,
                            bounds.min.z + rng.gen_range(0.1..0.9) * e.z,
                        )
                    })
                    .collect()
            }
            QueryRangeDistribution::Uniform => Vec::new(),
        };
        QueryRangeGenerator {
            bounds,
            distribution,
            side,
            cluster_centers,
            sigma,
            rng,
        }
    }

    /// The side length of every generated query cube.
    pub fn query_side(&self) -> f64 {
        self.side
    }

    /// The query cluster centers (empty for the uniform distribution).
    pub fn cluster_centers(&self) -> &[Vec3] {
        &self.cluster_centers
    }

    /// Generates the next query range.
    pub fn next_range(&mut self) -> Aabb {
        let center = match self.distribution {
            QueryRangeDistribution::Uniform => {
                let e = self.bounds.extent();
                Vec3::new(
                    self.bounds.min.x + self.rng.gen_range(0.0..1.0) * e.x,
                    self.bounds.min.y + self.rng.gen_range(0.0..1.0) * e.y,
                    self.bounds.min.z + self.rng.gen_range(0.0..1.0) * e.z,
                )
            }
            QueryRangeDistribution::Clustered { .. } => {
                let c = self.cluster_centers[self.rng.gen_range(0..self.cluster_centers.len())];
                Vec3::new(
                    c.x + gaussian(&mut self.rng) * self.sigma,
                    c.y + gaussian(&mut self.rng) * self.sigma,
                    c.z + gaussian(&mut self.rng) * self.sigma,
                )
            }
        };
        let center = center.clamp(
            self.bounds.min + Vec3::splat(self.side * 0.5),
            self.bounds.max - Vec3::splat(self.side * 0.5),
        );
        Aabb::from_center_extent(center, Vec3::splat(self.side))
    }

    /// Generates `count` ranges.
    pub fn generate(&mut self, count: usize) -> Vec<Aabb> {
        (0..count).map(|_| self.next_range()).collect()
    }
}

/// Standard normal sample via Box-Muller.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds() -> Aabb {
        Aabb::from_min_max(Vec3::ZERO, Vec3::splat(1000.0))
    }

    #[test]
    fn query_volume_matches_fraction() {
        let mut g = QueryRangeGenerator::new(bounds(), 1e-6, QueryRangeDistribution::Uniform, 1);
        let target = bounds().volume() * 1e-6;
        for q in g.generate(100) {
            assert!((q.volume() - target).abs() / target < 1e-9);
        }
    }

    #[test]
    fn queries_stay_inside_bounds() {
        for dist in [
            QueryRangeDistribution::Uniform,
            QueryRangeDistribution::Clustered { num_clusters: 10 },
        ] {
            let mut g = QueryRangeGenerator::new(bounds(), 1e-6, dist, 3);
            for q in g.generate(1000) {
                assert!(bounds().contains(&q), "{dist:?} produced {q:?}");
            }
        }
    }

    #[test]
    fn clustered_queries_are_concentrated() {
        let mut clustered = QueryRangeGenerator::new(
            bounds(),
            1e-6,
            QueryRangeDistribution::Clustered { num_clusters: 10 },
            5,
        );
        let mut uniform =
            QueryRangeGenerator::new(bounds(), 1e-6, QueryRangeDistribution::Uniform, 5);
        // Measure concentration as the volume of the overall MBR of all query
        // centers; clustered workloads should cover much less of the brain.
        let spread = |ranges: &[Aabb]| {
            ranges
                .iter()
                .fold(Aabb::empty(), |acc, r| {
                    acc.union(&Aabb::from_point(r.center()))
                })
                .volume()
        };
        let c = clustered.generate(500);
        let u = uniform.generate(500);
        // Pairwise distances are a sturdier clustering metric than the global
        // MBR (a single cluster near a corner can stretch the MBR): compute
        // the mean distance between consecutive query centers.
        let mean_step = |ranges: &[Aabb]| {
            ranges
                .windows(2)
                .map(|w| w[0].center().distance(w[1].center()))
                .sum::<f64>()
                / (ranges.len() - 1) as f64
        };
        assert!(
            mean_step(&c) < mean_step(&u),
            "clustered queries should jump shorter distances on average"
        );
        // Both cover a non-trivial part of the brain (sanity).
        assert!(spread(&c) > 0.0);
        assert!(spread(&u) > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mk = || {
            QueryRangeGenerator::new(
                bounds(),
                1e-6,
                QueryRangeDistribution::Clustered { num_clusters: 5 },
                17,
            )
            .generate(50)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn names() {
        assert_eq!(QueryRangeDistribution::Uniform.name(), "uniform");
        assert_eq!(
            QueryRangeDistribution::Clustered { num_clusters: 3 }.name(),
            "clustered"
        );
    }

    #[test]
    #[should_panic(expected = "volume fraction")]
    fn zero_volume_fraction_panics() {
        let _ = QueryRangeGenerator::new(bounds(), 0.0, QueryRangeDistribution::Uniform, 0);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        let _ = QueryRangeGenerator::new(
            bounds(),
            1e-6,
            QueryRangeDistribution::Clustered { num_clusters: 0 },
            0,
        );
    }

    #[test]
    fn cluster_center_accessors() {
        let g = QueryRangeGenerator::new(
            bounds(),
            1e-6,
            QueryRangeDistribution::Clustered { num_clusters: 7 },
            2,
        );
        assert_eq!(g.cluster_centers().len(), 7);
        assert!(g.query_side() > 0.0);
        let u = QueryRangeGenerator::new(bounds(), 1e-6, QueryRangeDistribution::Uniform, 2);
        assert!(u.cluster_centers().is_empty());
    }
}
