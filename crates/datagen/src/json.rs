//! Workload persistence: save/load a generated workload (objects + queries)
//! as JSON, so a benchmark run is exactly reproducible on another host.
//!
//! The build environment has no crate registry, so `serde_json` is not
//! available; this module carries a small, dependency-free JSON value model
//! ([`JsonValue`]) with a writer and a recursive-descent parser, plus the
//! [`SavedWorkload`] schema built on top of it. Floating-point values are
//! written with Rust's shortest-roundtrip formatting, so a save/load cycle
//! reproduces every coordinate bit for bit.

use crate::trace::{Arrival, InterleavedTrace, TraceStep};
use odyssey_geom::{
    Aabb, CountQuery, DatasetId, DatasetSet, KnnQuery, ObjectId, PointQuery, Query, QueryId,
    RangeQuery, SpatialObject, Vec3,
};
use std::fmt::Write as _;
use std::path::Path;

/// A parse or schema error, with the byte offset where it was detected
/// (offset 0 for schema-level errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the problem was found.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn schema_err(message: impl Into<String>) -> JsonError {
    JsonError {
        offset: 0,
        message: message.into(),
    }
}

/// A JSON document value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. `f64` holds integers up to 2⁵³ exactly — far beyond
    /// any id this workspace produces.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, with insertion order preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document (must contain exactly one value).
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_whitespace();
        let value = p.value()?;
        p.skip_whitespace();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Serializes the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(*n, out),
            JsonValue::String(s) => write_string(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    debug_assert!(n.is_finite(), "JSON cannot represent {n}");
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Shortest representation that round-trips through f64 parsing.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for this
                            // workspace's data; reject them explicitly.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("unsupported \\u code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c => {
                    // Re-assemble UTF-8 multibyte sequences byte by byte.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        let len = utf8_len(c);
                        let end = start + len;
                        let s = self
                            .bytes
                            .get(start..end)
                            .and_then(|b| std::str::from_utf8(b).ok())
                            .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Schema version tag written into every file.
pub const WORKLOAD_FORMAT: &str = "odyssey-workload-v1";

/// A fully materialized workload: the brain volume, the raw objects of every
/// dataset, and the typed query sequence. Save it next to a benchmark result
/// and any host can replay the identical run.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedWorkload {
    /// The brain volume the engine is configured with.
    pub bounds: Aabb,
    /// Every object of every dataset, in raw-file order.
    pub objects: Vec<SpatialObject>,
    /// The typed query sequence, in execution order.
    pub queries: Vec<Query>,
}

fn vec3_json(v: Vec3) -> JsonValue {
    JsonValue::Array(v.to_array().iter().map(|&c| JsonValue::Number(c)).collect())
}

fn vec3_from(value: &JsonValue, what: &str) -> Result<Vec3, JsonError> {
    let items = value
        .as_array()
        .filter(|a| a.len() == 3)
        .ok_or_else(|| schema_err(format!("{what}: expected [x, y, z]")))?;
    let mut out = [0.0f64; 3];
    for (slot, item) in out.iter_mut().zip(items) {
        *slot = item
            .as_f64()
            .ok_or_else(|| schema_err(format!("{what}: non-numeric component")))?;
    }
    Ok(Vec3::from_array(out))
}

fn aabb_json(b: &Aabb) -> JsonValue {
    JsonValue::Object(vec![
        ("min".into(), vec3_json(b.min)),
        ("max".into(), vec3_json(b.max)),
    ])
}

fn aabb_from(value: &JsonValue, what: &str) -> Result<Aabb, JsonError> {
    let min = vec3_from(
        value
            .get("min")
            .ok_or_else(|| schema_err(format!("{what}: missing 'min'")))?,
        what,
    )?;
    let max = vec3_from(
        value
            .get("max")
            .ok_or_else(|| schema_err(format!("{what}: missing 'max'")))?,
        what,
    )?;
    Ok(Aabb::new(min, max))
}

fn datasets_json(set: DatasetSet) -> JsonValue {
    JsonValue::Array(set.iter().map(|d| JsonValue::Number(d.0 as f64)).collect())
}

fn datasets_from(value: &JsonValue, what: &str) -> Result<DatasetSet, JsonError> {
    let items = value
        .as_array()
        .ok_or_else(|| schema_err(format!("{what}: expected a dataset array")))?;
    let mut set = DatasetSet::EMPTY;
    for item in items {
        let id = item
            .as_u64()
            .filter(|&v| v < 64)
            .ok_or_else(|| schema_err(format!("{what}: invalid dataset id")))?;
        set.insert(DatasetId(id as u16));
    }
    Ok(set)
}

fn field<'v>(value: &'v JsonValue, key: &str, what: &str) -> Result<&'v JsonValue, JsonError> {
    value
        .get(key)
        .ok_or_else(|| schema_err(format!("{what}: missing '{key}'")))
}

fn object_json(o: &SpatialObject) -> JsonValue {
    JsonValue::Object(vec![
        ("id".into(), JsonValue::Number(o.id.0 as f64)),
        ("dataset".into(), JsonValue::Number(o.dataset.0 as f64)),
        ("min".into(), vec3_json(o.mbr.min)),
        ("max".into(), vec3_json(o.mbr.max)),
    ])
}

fn object_from(obj: &JsonValue, what: &str) -> Result<SpatialObject, JsonError> {
    let id = field(obj, "id", what)?
        .as_u64()
        .ok_or_else(|| schema_err(format!("{what}: invalid id")))?;
    let dataset = field(obj, "dataset", what)?
        .as_u64()
        .filter(|&v| v < 64)
        .ok_or_else(|| schema_err(format!("{what}: invalid dataset")))?;
    let min = vec3_from(field(obj, "min", what)?, what)?;
    let max = vec3_from(field(obj, "max", what)?, what)?;
    Ok(SpatialObject::new(
        ObjectId(id),
        DatasetId(dataset as u16),
        Aabb::new(min, max),
    ))
}

/// Serializes a typed query as the fields every saved format shares.
fn query_fields(q: &Query) -> Vec<(String, JsonValue)> {
    let mut fields = vec![
        ("kind".into(), JsonValue::String(q.kind().name().into())),
        ("id".into(), JsonValue::Number(q.id().0 as f64)),
    ];
    match q {
        Query::Range(q) => {
            fields.push(("range".into(), aabb_json(&q.range)));
        }
        Query::Point(q) => {
            fields.push(("point".into(), vec3_json(q.point)));
        }
        Query::KNearestNeighbors(q) => {
            fields.push(("point".into(), vec3_json(q.point)));
            fields.push(("k".into(), JsonValue::Number(q.k as f64)));
        }
        Query::Count(q) => {
            fields.push(("range".into(), aabb_json(&q.range)));
        }
    }
    fields.push(("datasets".into(), datasets_json(q.datasets())));
    fields
}

fn query_from(q: &JsonValue, what: &str) -> Result<Query, JsonError> {
    let kind = field(q, "kind", what)?
        .as_str()
        .ok_or_else(|| schema_err(format!("{what}: 'kind' must be a string")))?;
    let id = QueryId(
        field(q, "id", what)?
            .as_u64()
            .ok_or_else(|| schema_err(format!("{what}: invalid id")))? as u32,
    );
    let datasets = datasets_from(field(q, "datasets", what)?, what)?;
    Ok(match kind {
        "range" => Query::Range(RangeQuery::new(
            id,
            aabb_from(field(q, "range", what)?, what)?,
            datasets,
        )),
        "point" => Query::Point(PointQuery::new(
            id,
            vec3_from(field(q, "point", what)?, what)?,
            datasets,
        )),
        "knn" => Query::KNearestNeighbors(KnnQuery::new(
            id,
            vec3_from(field(q, "point", what)?, what)?,
            field(q, "k", what)?
                .as_u64()
                .ok_or_else(|| schema_err(format!("{what}: invalid k")))? as usize,
            datasets,
        )),
        "count" => Query::Count(CountQuery::new(
            id,
            aabb_from(field(q, "range", what)?, what)?,
            datasets,
        )),
        other => {
            return Err(schema_err(format!("{what}: unknown kind '{other}'")));
        }
    })
}

impl SavedWorkload {
    /// Serializes the workload as a JSON document.
    pub fn to_json(&self) -> String {
        let objects = self.objects.iter().map(object_json).collect();
        let queries = self
            .queries
            .iter()
            .map(|q| JsonValue::Object(query_fields(q)))
            .collect();
        JsonValue::Object(vec![
            ("format".into(), JsonValue::String(WORKLOAD_FORMAT.into())),
            ("bounds".into(), aabb_json(&self.bounds)),
            ("objects".into(), JsonValue::Array(objects)),
            ("queries".into(), JsonValue::Array(queries)),
        ])
        .to_json()
    }

    /// Parses a workload from its JSON document.
    pub fn from_json(input: &str) -> Result<SavedWorkload, JsonError> {
        let doc = JsonValue::parse(input)?;
        let format = field(&doc, "format", "document")?
            .as_str()
            .ok_or_else(|| schema_err("document: 'format' must be a string"))?;
        if format != WORKLOAD_FORMAT {
            return Err(schema_err(format!(
                "unsupported format '{format}' (expected '{WORKLOAD_FORMAT}')"
            )));
        }
        let bounds = aabb_from(field(&doc, "bounds", "document")?, "bounds")?;
        let mut objects = Vec::new();
        for (i, obj) in field(&doc, "objects", "document")?
            .as_array()
            .ok_or_else(|| schema_err("document: 'objects' must be an array"))?
            .iter()
            .enumerate()
        {
            objects.push(object_from(obj, &format!("objects[{i}]"))?);
        }
        let mut queries = Vec::new();
        for (i, q) in field(&doc, "queries", "document")?
            .as_array()
            .ok_or_else(|| schema_err("document: 'queries' must be an array"))?
            .iter()
            .enumerate()
        {
            queries.push(query_from(q, &format!("queries[{i}]"))?);
        }
        Ok(SavedWorkload {
            bounds,
            objects,
            queries,
        })
    }

    /// Writes the workload to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a workload from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<SavedWorkload> {
        let text = std::fs::read_to_string(path)?;
        SavedWorkload::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// Schema version tag of saved interleaved traces (closed-loop).
pub const TRACE_FORMAT: &str = "odyssey-trace-v1";

/// Schema version tag of saved *open-loop* traces: `v1` plus one
/// `{offset_micros, tenant}` arrival record per step. A `v1` document still
/// loads (with [`SavedTrace::arrivals`] absent, i.e. zero offsets), and a
/// trace without arrivals round-trips through the bit-exact `v1` format.
pub const TRACE_FORMAT_V2: &str = "odyssey-trace-v2";

/// A fully materialized interleaved ingest/query trace: the brain volume,
/// the *initial* objects of every dataset, and the step sequence (queries
/// plus timed ingest batches). Save it next to a benchmark result and any
/// host can replay the identical online-ingestion run.
#[derive(Debug, Clone, PartialEq)]
pub struct SavedTrace {
    /// The brain volume the engine is configured with.
    pub bounds: Aabb,
    /// Every *initial* object of every dataset, in raw-file order (arrivals
    /// live inside the ingest steps).
    pub objects: Vec<SpatialObject>,
    /// The interleaved step sequence, in execution order.
    pub steps: Vec<TraceStep>,
    /// Open-loop arrival metadata, one record per step in step order
    /// (`None` for closed-loop `v1` traces, which replay as "everything
    /// arrived at offset zero").
    pub arrivals: Option<Vec<Arrival>>,
}

impl SavedTrace {
    /// Bundles an [`InterleavedTrace`]'s steps with the initial datasets
    /// (closed-loop; saves as `v1`).
    pub fn new(bounds: Aabb, objects: Vec<SpatialObject>, trace: &InterleavedTrace) -> Self {
        SavedTrace {
            bounds,
            objects,
            steps: trace.steps.clone(),
            arrivals: None,
        }
    }

    /// Attaches open-loop arrival metadata (saves as `v2`).
    ///
    /// # Panics
    /// Panics unless there is exactly one arrival per step.
    pub fn with_arrivals(mut self, arrivals: Vec<Arrival>) -> Self {
        assert_eq!(
            arrivals.len(),
            self.steps.len(),
            "one arrival per trace step"
        );
        self.arrivals = Some(arrivals);
        self
    }

    /// Serializes the trace as a JSON document.
    pub fn to_json(&self) -> String {
        let objects = self.objects.iter().map(object_json).collect();
        let steps = self
            .steps
            .iter()
            .map(|step| match step {
                TraceStep::Query(q) => {
                    let mut fields = vec![("op".into(), JsonValue::String("query".into()))];
                    fields.extend(query_fields(q));
                    JsonValue::Object(fields)
                }
                TraceStep::Ingest { dataset, objects } => JsonValue::Object(vec![
                    ("op".into(), JsonValue::String("ingest".into())),
                    ("dataset".into(), JsonValue::Number(dataset.0 as f64)),
                    (
                        "objects".into(),
                        JsonValue::Array(objects.iter().map(object_json).collect()),
                    ),
                ]),
            })
            .collect();
        let mut fields = vec![
            (
                "format".into(),
                JsonValue::String(
                    if self.arrivals.is_some() {
                        TRACE_FORMAT_V2
                    } else {
                        TRACE_FORMAT
                    }
                    .into(),
                ),
            ),
            ("bounds".into(), aabb_json(&self.bounds)),
            ("objects".into(), JsonValue::Array(objects)),
            ("steps".into(), JsonValue::Array(steps)),
        ];
        if let Some(arrivals) = &self.arrivals {
            fields.push((
                "arrivals".into(),
                JsonValue::Array(
                    arrivals
                        .iter()
                        .map(|a| {
                            JsonValue::Object(vec![
                                (
                                    "offset_micros".into(),
                                    JsonValue::Number(a.offset_micros as f64),
                                ),
                                ("tenant".into(), JsonValue::Number(a.tenant as f64)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        JsonValue::Object(fields).to_json()
    }

    /// Parses a trace from its JSON document.
    pub fn from_json(input: &str) -> Result<SavedTrace, JsonError> {
        let doc = JsonValue::parse(input)?;
        let format = field(&doc, "format", "document")?
            .as_str()
            .ok_or_else(|| schema_err("document: 'format' must be a string"))?;
        if format != TRACE_FORMAT && format != TRACE_FORMAT_V2 {
            return Err(schema_err(format!(
                "unsupported format '{format}' (expected '{TRACE_FORMAT}' or '{TRACE_FORMAT_V2}')"
            )));
        }
        let open_loop = format == TRACE_FORMAT_V2;
        let bounds = aabb_from(field(&doc, "bounds", "document")?, "bounds")?;
        let mut objects = Vec::new();
        for (i, obj) in field(&doc, "objects", "document")?
            .as_array()
            .ok_or_else(|| schema_err("document: 'objects' must be an array"))?
            .iter()
            .enumerate()
        {
            objects.push(object_from(obj, &format!("objects[{i}]"))?);
        }
        let mut steps = Vec::new();
        for (i, step) in field(&doc, "steps", "document")?
            .as_array()
            .ok_or_else(|| schema_err("document: 'steps' must be an array"))?
            .iter()
            .enumerate()
        {
            let what = format!("steps[{i}]");
            let op = field(step, "op", &what)?
                .as_str()
                .ok_or_else(|| schema_err(format!("{what}: 'op' must be a string")))?;
            match op {
                "query" => steps.push(TraceStep::Query(query_from(step, &what)?)),
                "ingest" => {
                    let dataset = field(step, "dataset", &what)?
                        .as_u64()
                        .filter(|&v| v < 64)
                        .ok_or_else(|| schema_err(format!("{what}: invalid dataset")))?;
                    let mut arriving = Vec::new();
                    for (j, obj) in field(step, "objects", &what)?
                        .as_array()
                        .ok_or_else(|| schema_err(format!("{what}: 'objects' must be an array")))?
                        .iter()
                        .enumerate()
                    {
                        arriving.push(object_from(obj, &format!("{what}.objects[{j}]"))?);
                    }
                    steps.push(TraceStep::Ingest {
                        dataset: DatasetId(dataset as u16),
                        objects: arriving,
                    });
                }
                other => {
                    return Err(schema_err(format!("{what}: unknown op '{other}'")));
                }
            }
        }
        let arrivals = if open_loop {
            let raw = field(&doc, "arrivals", "document")?
                .as_array()
                .ok_or_else(|| schema_err("document: 'arrivals' must be an array"))?;
            if raw.len() != steps.len() {
                return Err(schema_err(format!(
                    "document: {} arrivals for {} steps (must match)",
                    raw.len(),
                    steps.len()
                )));
            }
            let mut arrivals = Vec::with_capacity(raw.len());
            for (i, a) in raw.iter().enumerate() {
                let what = format!("arrivals[{i}]");
                let offset_micros = field(a, "offset_micros", &what)?
                    .as_u64()
                    .ok_or_else(|| schema_err(format!("{what}: invalid offset_micros")))?;
                let tenant = field(a, "tenant", &what)?
                    .as_u64()
                    .filter(|&v| v <= u16::MAX as u64)
                    .ok_or_else(|| schema_err(format!("{what}: invalid tenant")))?;
                arrivals.push(Arrival {
                    offset_micros,
                    tenant: tenant as u16,
                });
            }
            Some(arrivals)
        } else {
            None
        };
        Ok(SavedTrace {
            bounds,
            objects,
            steps,
            arrivals,
        })
    }

    /// Writes the trace to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a trace from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<SavedTrace> {
        let text = std::fs::read_to_string(path)?;
        SavedTrace::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixed::{MixedWorkloadSpec, QueryKindMix};
    use crate::workload::WorkloadSpec;

    fn bounds() -> Aabb {
        Aabb::from_min_max(Vec3::ZERO, Vec3::splat(1000.0))
    }

    fn sample() -> SavedWorkload {
        let mixed = MixedWorkloadSpec {
            base: WorkloadSpec {
                num_queries: 60,
                ..Default::default()
            },
            mix: QueryKindMix::balanced(),
        }
        .generate(&bounds());
        let objects = (0..100u64)
            .map(|i| {
                SpatialObject::new(
                    ObjectId(i),
                    DatasetId((i % 10) as u16),
                    Aabb::from_center_extent(
                        Vec3::splat(1.0 + (i as f64) * 9.87654321),
                        Vec3::new(0.1, 1e-6, 3.5),
                    ),
                )
            })
            .collect();
        SavedWorkload {
            bounds: bounds(),
            objects,
            queries: mixed.queries,
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let w = sample();
        let json = w.to_json();
        let back = SavedWorkload::from_json(&json).unwrap();
        assert_eq!(w, back);
        // Serialization is deterministic.
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn file_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("workload.json");
        let w = sample();
        w.save(&path).unwrap();
        assert_eq!(SavedWorkload::load(&path).unwrap(), w);
    }

    #[test]
    fn trace_roundtrip_is_bit_exact() {
        use crate::trace::{IngestProfile, InterleavedTraceSpec};
        let spec = InterleavedTraceSpec {
            mixed: MixedWorkloadSpec {
                base: WorkloadSpec {
                    num_queries: 40,
                    ..Default::default()
                },
                mix: QueryKindMix::balanced(),
            },
            ingest: IngestProfile {
                ingest_ratio: 0.4,
                batch_size: 8,
                ..Default::default()
            },
        };
        let trace = spec.generate(&bounds());
        assert!(trace.ingest_steps() > 0, "trace must contain ingest steps");
        let saved = SavedTrace::new(bounds(), sample().objects, &trace);
        let json = saved.to_json();
        let back = SavedTrace::from_json(&json).unwrap();
        assert_eq!(saved, back);
        assert_eq!(json, back.to_json());
        // File roundtrip.
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("trace.json");
        saved.save(&path).unwrap();
        assert_eq!(SavedTrace::load(&path).unwrap(), saved);
        // Schema errors: wrong format tag, unknown op.
        assert!(SavedTrace::from_json(&sample().to_json()).is_err());
        let bad = r#"{"format": "odyssey-trace-v1", "bounds": {"min": [0,0,0], "max": [1,1,1]}, "objects": [], "steps": [{"op": "warp"}]}"#;
        assert!(SavedTrace::from_json(bad)
            .unwrap_err()
            .message
            .contains("unknown op"));
    }

    #[test]
    fn open_loop_trace_roundtrips_as_v2_and_v1_loads_with_no_arrivals() {
        use crate::trace::{IngestProfile, InterleavedTraceSpec, OpenLoopProfile};
        let spec = InterleavedTraceSpec {
            mixed: MixedWorkloadSpec {
                base: WorkloadSpec {
                    num_queries: 30,
                    ..Default::default()
                },
                mix: QueryKindMix::balanced(),
            },
            ingest: IngestProfile {
                ingest_ratio: 0.3,
                batch_size: 8,
                ..Default::default()
            },
        };
        let trace = spec.generate(&bounds());
        let closed = SavedTrace::new(bounds(), sample().objects, &trace);
        let arrivals = OpenLoopProfile::default().arrivals(trace.steps.len());
        let open = closed.clone().with_arrivals(arrivals.clone());

        // v2 round-trips bit-exactly with arrivals intact.
        let json = open.to_json();
        assert!(json.contains(TRACE_FORMAT_V2));
        let back = SavedTrace::from_json(&json).unwrap();
        assert_eq!(back, open);
        assert_eq!(back.arrivals.as_deref(), Some(&arrivals[..]));
        assert_eq!(json, back.to_json());

        // A trace without arrivals still writes the bit-exact v1 document.
        let v1_json = closed.to_json();
        assert!(v1_json.contains("odyssey-trace-v1"));
        assert!(!v1_json.contains("arrivals"));
        let v1_back = SavedTrace::from_json(&v1_json).unwrap();
        assert_eq!(v1_back.arrivals, None, "v1 loads with zero offsets");
        assert_eq!(v1_back, closed);

        // Schema errors: arrivals/steps length mismatch, bad tenant.
        let mismatched = json.replacen("\"offset_micros\"", "\"offset_micros_\"", 1);
        assert!(SavedTrace::from_json(&mismatched).is_err());
        let truncated = open.clone();
        let mut doc = JsonValue::parse(&truncated.to_json()).unwrap();
        if let JsonValue::Object(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "arrivals" {
                    *v = JsonValue::Array(Vec::new());
                }
            }
        }
        assert!(SavedTrace::from_json(&doc.to_json())
            .unwrap_err()
            .message
            .contains("must match"));
    }

    #[test]
    fn json_value_parser_handles_the_grammar() {
        let doc = r#" {"a": [1, -2.5, 1e-6], "b": "x\n\"y\"", "c": true, "d": null, "e": {}} "#;
        let v = JsonValue::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("c").unwrap(), &JsonValue::Bool(true));
        assert_eq!(v.get("d").unwrap(), &JsonValue::Null);
        assert_eq!(v.get("e").unwrap(), &JsonValue::Object(Vec::new()));
        // Unicode escape and multibyte passthrough.
        let s = JsonValue::parse(r#""éé""#).unwrap();
        assert_eq!(s.as_str(), Some("éé"));
        // to_json round-trips.
        assert_eq!(JsonValue::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\": 1} extra",
            "[01a]",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn schema_errors_are_reported() {
        assert!(SavedWorkload::from_json("{}").is_err());
        let wrong_format = r#"{"format": "other", "bounds": {"min": [0,0,0], "max": [1,1,1]}, "objects": [], "queries": []}"#;
        assert!(SavedWorkload::from_json(wrong_format).is_err());
        let bad_kind = r#"{"format": "odyssey-workload-v1", "bounds": {"min": [0,0,0], "max": [1,1,1]}, "objects": [], "queries": [{"kind": "warp", "id": 0, "datasets": []}]}"#;
        let err = SavedWorkload::from_json(bad_kind).unwrap_err();
        assert!(err.message.contains("unknown kind"), "{err}");
        let ok = r#"{"format": "odyssey-workload-v1", "bounds": {"min": [0,0,0], "max": [1,1,1]}, "objects": [], "queries": []}"#;
        let w = SavedWorkload::from_json(ok).unwrap();
        assert!(w.objects.is_empty() && w.queries.is_empty());
    }
}
