//! Common traits implemented by every baseline index.

use odyssey_geom::{Aabb, SpatialObject};
use odyssey_storage::{RawDataset, StorageManager, StorageResult};

/// A built spatial index over one or more datasets that can answer range
/// queries.
///
/// Implementations handle the query-window extension themselves (they know
/// the `maxExtent` they recorded at build time) and return every object whose
/// MBR intersects `range`, regardless of dataset; dataset filtering is the
/// job of the [`crate::strategy`] layer.
///
/// The read path is immutable and must be `Send + Sync` so the concurrent
/// harness can probe indexes from many threads; online ingestion goes through
/// [`SpatialIndexBuild::insert`], which takes `&mut self` (the comparison
/// harness serializes ingest steps, exactly like the paper's static indexes
/// would have to).
pub trait SpatialIndexBuild: Send + Sync {
    /// Executes a spatial range query and returns the matching objects.
    fn query_range(
        &self,
        storage: &StorageManager,
        range: &Aabb,
    ) -> StorageResult<Vec<SpatialObject>>;

    /// Inserts newly arrived objects, keeping later queries exact. Static
    /// indexes absorb arrivals with the cheapest structure-preserving
    /// technique available to them (appended runs, insert buffers); they do
    /// not rebuild — the comparison against the adaptive engine stays
    /// apples-to-apples because every approach pays its own ingestion cost
    /// through the shared storage layer.
    fn insert(&mut self, storage: &StorageManager, objects: &[SpatialObject]) -> StorageResult<()>;

    /// The union of the MBRs of every indexed object, recorded at build
    /// time ([`Aabb::empty`] for an empty index). The expanding-radius kNN
    /// search of [`crate::strategy::MultiDatasetIndex::execute_query`] stops
    /// once its probe range covers this box.
    fn data_bounds(&self) -> Aabb;

    /// Number of disk pages occupied by the index's data pages (used by the
    /// harness to report index sizes).
    fn data_pages(&self) -> u64;

    /// A short human-readable name ("grid", "rtree", "flat").
    fn kind(&self) -> &'static str;
}

/// A recipe for building a [`SpatialIndexBuild`] from raw dataset files.
///
/// The same builder is reused by both multi-dataset strategies: one-for-each
/// calls it once per dataset with a single source, all-in-one calls it once
/// with every source.
pub trait IndexBuilder: Clone {
    /// The index type this builder produces.
    type Index: SpatialIndexBuild;

    /// Builds an index over the union of the given raw datasets.
    ///
    /// `name` is used to label the files the index creates.
    fn build(
        &self,
        storage: &StorageManager,
        name: &str,
        sources: &[RawDataset],
    ) -> StorageResult<Self::Index>;

    /// A short human-readable name ("grid", "rtree", "flat").
    fn kind(&self) -> &'static str;
}
