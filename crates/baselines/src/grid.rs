//! Static uniform Grid baseline.
//!
//! The paper's Grid partitions the brain volume into a fixed number of cells
//! (60³, found by a parameter sweep), assigns every object to the cell
//! containing its center (avoiding replication via query-window extension)
//! and flushes cell buffers to disk whenever the in-memory build buffer fills
//! up. It is the cheapest index to build — the only static approach whose
//! data-to-query time comes anywhere near Space Odyssey's — but queries pay
//! for the fixed granularity: a small query still reads whole cells.

use crate::traits::{IndexBuilder, SpatialIndexBuild};
use odyssey_geom::{Aabb, GridSpec, SpatialObject, Vec3};
use odyssey_storage::{FileId, RawDataset, StorageManager, StorageResult};
use std::ops::Range;

/// Configuration of the Grid baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridConfig {
    /// Number of cells along each dimension (60 in the paper).
    pub cells_per_dim: u32,
    /// The indexed space (the brain volume).
    pub bounds: Aabb,
    /// Build-time memory buffer measured in objects; when the buffer fills
    /// up, every non-empty cell buffer is flushed to disk as its own page
    /// run. Mirrors the paper's "flushed to disk when the memory buffer
    /// becomes full".
    pub build_buffer_objects: usize,
}

impl GridConfig {
    /// The paper's configuration over the given bounds: 60³ cells. The
    /// default build buffer holds roughly 1/8 of a 50 000-object dataset so
    /// that builds take several flush rounds, like the original.
    pub fn paper(bounds: Aabb) -> Self {
        GridConfig {
            cells_per_dim: 60,
            bounds,
            build_buffer_objects: 200_000,
        }
    }

    /// Same configuration with a different resolution (used by the parameter
    /// sweep ablation).
    pub fn with_cells(mut self, cells_per_dim: u32) -> Self {
        self.cells_per_dim = cells_per_dim;
        self
    }
}

/// One flushed run of a cell: a contiguous page range in the grid file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CellRun {
    start: u64,
    end: u64,
}

/// A built uniform grid index.
#[derive(Debug)]
pub struct GridIndex {
    spec: GridSpec,
    file: FileId,
    /// For every cell (linear index), the page runs holding its objects.
    /// Multiple runs per cell occur when the build buffer had to be flushed
    /// more than once — exactly the fragmentation the paper's Grid exhibits.
    cell_runs: Vec<Vec<CellRun>>,
    max_extent: Vec3,
    /// Union of every indexed object's MBR, recorded at build time.
    data_bounds: Aabb,
    data_pages: u64,
}

impl GridIndex {
    /// Builds a grid over the union of the given raw datasets.
    pub fn build(
        storage: &StorageManager,
        config: &GridConfig,
        name: &str,
        sources: &[RawDataset],
    ) -> StorageResult<Self> {
        assert!(
            config.build_buffer_objects > 0,
            "build buffer must hold at least one object"
        );
        let spec = GridSpec::new(config.bounds, config.cells_per_dim);
        let file = storage.create_file(&format!("grid_{name}"))?;
        let mut cell_runs: Vec<Vec<CellRun>> = vec![Vec::new(); spec.cell_count()];
        let mut cell_buffers: Vec<Vec<SpatialObject>> = vec![Vec::new(); spec.cell_count()];
        let mut buffered = 0usize;
        let mut max_ext = Vec3::ZERO;
        let mut data_bounds = Aabb::empty();

        // Single sequential scan over every raw file, assigning objects to
        // cell buffers and flushing when the memory budget is reached.
        for raw in sources {
            let pages = raw.pages();
            for page_idx in pages {
                let page = storage.read_page(raw.file, odyssey_storage::PageId(page_idx))?;
                let objects = page.objects()?;
                storage.note_objects_scanned(objects.len() as u64);
                for obj in objects {
                    max_ext = max_ext.max(obj.extent());
                    data_bounds = data_bounds.union(&obj.mbr);
                    let cell = spec.linear_index(spec.cell_of_point(obj.center()));
                    cell_buffers[cell].push(obj);
                    buffered += 1;
                    if buffered >= config.build_buffer_objects {
                        Self::flush(storage, file, &mut cell_buffers, &mut cell_runs)?;
                        buffered = 0;
                    }
                }
            }
        }
        if buffered > 0 {
            Self::flush(storage, file, &mut cell_buffers, &mut cell_runs)?;
        }
        let data_pages = storage.num_pages(file)?;
        Ok(GridIndex {
            spec,
            file,
            cell_runs,
            max_extent: max_ext,
            data_bounds,
            data_pages,
        })
    }

    fn flush(
        storage: &StorageManager,
        file: FileId,
        buffers: &mut [Vec<SpatialObject>],
        runs: &mut [Vec<CellRun>],
    ) -> StorageResult<()> {
        for (cell, buf) in buffers.iter_mut().enumerate() {
            if buf.is_empty() {
                continue;
            }
            let range: Range<u64> = storage.append_objects(file, buf)?;
            runs[cell].push(CellRun {
                start: range.start,
                end: range.end,
            });
            buf.clear();
        }
        Ok(())
    }

    /// The grid geometry.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// The maximum object extent recorded at build time.
    pub fn max_extent(&self) -> Vec3 {
        self.max_extent
    }

    /// Number of non-empty cells.
    pub fn occupied_cells(&self) -> usize {
        self.cell_runs.iter().filter(|r| !r.is_empty()).count()
    }

    /// Average number of page runs per occupied cell (fragmentation metric).
    pub fn average_runs_per_cell(&self) -> f64 {
        let occupied = self.occupied_cells();
        if occupied == 0 {
            return 0.0;
        }
        let total: usize = self.cell_runs.iter().map(|r| r.len()).sum();
        total as f64 / occupied as f64
    }
}

impl SpatialIndexBuild for GridIndex {
    /// Inserting into a grid is the cheapest of all the static baselines:
    /// the arrivals are bucketed by cell (like one more build-buffer flush)
    /// and appended as fresh runs — fragmentation the paper's Grid already
    /// exhibits from multi-flush builds.
    fn insert(&mut self, storage: &StorageManager, objects: &[SpatialObject]) -> StorageResult<()> {
        let mut buffers: Vec<Vec<SpatialObject>> = vec![Vec::new(); self.spec.cell_count()];
        for obj in objects {
            self.max_extent = self.max_extent.max(obj.extent());
            self.data_bounds = self.data_bounds.union(&obj.mbr);
            let cell = self
                .spec
                .linear_index(self.spec.cell_of_point(obj.center()));
            buffers[cell].push(*obj);
        }
        storage.note_objects_scanned(objects.len() as u64);
        Self::flush(storage, self.file, &mut buffers, &mut self.cell_runs)?;
        self.data_pages = storage.num_pages(self.file)?;
        Ok(())
    }

    fn query_range(
        &self,
        storage: &StorageManager,
        range: &Aabb,
    ) -> StorageResult<Vec<SpatialObject>> {
        // Query-window extension: objects were assigned by center, so the
        // probe range grows by half the maximum extent in each direction.
        let extended = range.expanded(self.max_extent * 0.5);
        let mut result = Vec::new();
        let mut scratch = Vec::new();
        for cell in self.spec.cells_overlapping(&extended) {
            let linear = self.spec.linear_index(cell);
            for run in &self.cell_runs[linear] {
                scratch.clear();
                storage.read_objects_into(self.file, run.start..run.end, &mut scratch)?;
                result.extend(scratch.iter().filter(|o| o.mbr.intersects(range)).copied());
            }
        }
        Ok(result)
    }

    fn data_bounds(&self) -> Aabb {
        self.data_bounds
    }

    fn data_pages(&self) -> u64 {
        self.data_pages
    }

    fn kind(&self) -> &'static str {
        "grid"
    }
}

/// Builder adapter so strategies can construct grids.
#[derive(Debug, Clone)]
pub struct GridBuilder(pub GridConfig);

impl IndexBuilder for GridBuilder {
    type Index = GridIndex;

    fn build(
        &self,
        storage: &StorageManager,
        name: &str,
        sources: &[RawDataset],
    ) -> StorageResult<GridIndex> {
        GridIndex::build(storage, &self.0, name, sources)
    }

    fn kind(&self) -> &'static str {
        "grid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_geom::{scan_query, DatasetId, DatasetSet, QueryId, RangeQuery};
    use odyssey_storage::write_raw_dataset;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn bounds() -> Aabb {
        Aabb::from_min_max(Vec3::ZERO, Vec3::splat(100.0))
    }

    fn random_objects(n: u64, ds: u16, seed: u64) -> Vec<SpatialObject> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = Vec3::new(
                    rng.gen_range(1.0..99.0),
                    rng.gen_range(1.0..99.0),
                    rng.gen_range(1.0..99.0),
                );
                let ext = Vec3::splat(rng.gen_range(0.1..1.0));
                SpatialObject::new(
                    odyssey_geom::ObjectId(i),
                    DatasetId(ds),
                    Aabb::from_center_extent(c, ext),
                )
            })
            .collect()
    }

    fn setup(n: u64) -> (StorageManager, Vec<SpatialObject>, RawDataset) {
        let storage = StorageManager::in_memory();
        let objs = random_objects(n, 0, 7);
        let raw = write_raw_dataset(&storage, DatasetId(0), &objs).unwrap();
        (storage, objs, raw)
    }

    fn config() -> GridConfig {
        GridConfig {
            cells_per_dim: 8,
            bounds: bounds(),
            build_buffer_objects: 500,
        }
    }

    #[test]
    fn build_and_query_matches_scan() {
        let (storage, objs, raw) = setup(3000);
        let grid = GridIndex::build(&storage, &config(), "t", &[raw]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..30 {
            let c = Vec3::new(
                rng.gen_range(5.0..95.0),
                rng.gen_range(5.0..95.0),
                rng.gen_range(5.0..95.0),
            );
            let range = Aabb::from_center_extent(c, Vec3::splat(rng.gen_range(1.0..20.0)));
            let q = RangeQuery::new(QueryId(0), range, DatasetSet::single(DatasetId(0)));
            let mut expected: Vec<_> = scan_query(&q, objs.iter()).iter().map(|o| o.id).collect();
            let mut got: Vec<_> = grid
                .query_range(&storage, &range)
                .unwrap()
                .iter()
                .map(|o| o.id)
                .collect();
            expected.sort_unstable();
            got.sort_unstable();
            got.dedup();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn max_extent_recorded() {
        let (storage, objs, raw) = setup(500);
        let grid = GridIndex::build(&storage, &config(), "t", &[raw]).unwrap();
        assert_eq!(grid.max_extent(), odyssey_geom::max_extent(objs.iter()));
    }

    #[test]
    fn small_buffer_causes_fragmentation() {
        let (storage, _, raw) = setup(3000);
        let fragmented = GridIndex::build(
            &storage,
            &GridConfig {
                build_buffer_objects: 200,
                ..config()
            },
            "frag",
            &[raw],
        )
        .unwrap();
        let (storage2, _, raw2) = setup(3000);
        let contiguous = GridIndex::build(
            &storage2,
            &GridConfig {
                build_buffer_objects: 1_000_000,
                ..config()
            },
            "cont",
            &[raw2],
        )
        .unwrap();
        assert!(fragmented.average_runs_per_cell() > contiguous.average_runs_per_cell());
        assert!((contiguous.average_runs_per_cell() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn query_on_empty_region_returns_nothing() {
        let (storage, _, raw) = setup(200);
        let grid = GridIndex::build(&storage, &config(), "t", &[raw]).unwrap();
        // All objects live inside [1, 99]^3; query far in a corner sliver
        // outside any object.
        let range = Aabb::from_min_max(Vec3::splat(99.95), Vec3::splat(99.99));
        let res = grid.query_range(&storage, &range).unwrap();
        assert!(res.iter().all(|o| o.mbr.intersects(&range)));
    }

    #[test]
    fn builds_over_multiple_datasets() {
        let storage = StorageManager::in_memory();
        let a = random_objects(800, 0, 1);
        let b = random_objects(800, 1, 2);
        let raw_a = write_raw_dataset(&storage, DatasetId(0), &a).unwrap();
        let raw_b = write_raw_dataset(&storage, DatasetId(1), &b).unwrap();
        let grid = GridIndex::build(&storage, &config(), "ain1", &[raw_a, raw_b]).unwrap();
        let range = Aabb::from_min_max(Vec3::splat(20.0), Vec3::splat(60.0));
        let res = grid.query_range(&storage, &range).unwrap();
        assert!(res.iter().any(|o| o.dataset == DatasetId(0)));
        assert!(res.iter().any(|o| o.dataset == DatasetId(1)));
        // Correctness against the union scan.
        let all: Vec<_> = a.iter().chain(b.iter()).copied().collect();
        let q = RangeQuery::new(QueryId(0), range, DatasetSet::first_n(2));
        let mut expected: Vec<_> = scan_query(&q, all.iter())
            .iter()
            .map(|o| (o.dataset, o.id))
            .collect();
        let mut got: Vec<_> = res.iter().map(|o| (o.dataset, o.id)).collect();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn paper_config_has_60_cells() {
        let c = GridConfig::paper(bounds());
        assert_eq!(c.cells_per_dim, 60);
        assert_eq!(c.with_cells(30).cells_per_dim, 30);
    }

    #[test]
    fn builder_trait_roundtrip() {
        let (storage, _, raw) = setup(100);
        let builder = GridBuilder(config());
        assert_eq!(builder.kind(), "grid");
        let grid = builder.build(&storage, "b", &[raw]).unwrap();
        assert_eq!(grid.kind(), "grid");
        assert!(grid.data_pages() > 0);
        assert!(grid.occupied_cells() > 0);
    }

    #[test]
    fn build_cost_is_counted() {
        let (storage, _, raw) = setup(2000);
        let before = storage.stats();
        let _ = GridIndex::build(&storage, &config(), "t", &[raw]).unwrap();
        let d = storage.stats().since(&before).0;
        assert!(
            d.pages_read() + d.buffer_hits >= raw.num_pages(),
            "raw scan must be charged"
        );
        assert!(
            d.pages_written() >= raw.num_pages(),
            "grid pages must be written"
        );
        assert!(d.objects_written >= 2000);
    }
}
