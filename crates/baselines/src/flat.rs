//! FLAT baseline (Tauheed et al., "Accelerating Range Queries for Brain
//! Simulations", ICDE '12).
//!
//! FLAT was the state of the art the paper compares against. Its design:
//!
//! 1. **Dense packing** — objects are packed into full data pages along a
//!    space-filling curve, so spatially close objects share pages and
//!    neighbouring pages sit close together in the file.
//! 2. **Neighbourhood links** — for every data page, FLAT precomputes the
//!    pages whose MBRs overlap (its *neighbourhood*).
//! 3. **Seed + crawl queries** — a query uses a small seed index to locate
//!    *one* page intersecting the range and then crawls the neighbourhood
//!    links, reading only data pages; it never traverses a deep directory on
//!    disk. That makes FLAT the fastest at query time, while the extra build
//!    passes (packing sort + neighbourhood computation) make it the slowest
//!    to build — exactly the trade-off the paper's Figure 4 shows.
//!
//! Engineering note: a pure crawl can in principle miss a query-intersecting
//! page whose neighbourhood path to the seed is broken. After the crawl we
//! run a completeness sweep over the in-memory page MBR table and read any
//! page the crawl missed (counted in [`FlatIndex::crawl_misses`]); on the
//! dense neuroscience-like data this almost never triggers, so the I/O
//! pattern stays FLAT's, but correctness is guaranteed.

use crate::rtree::charge_external_sort_passes;
use crate::traits::{IndexBuilder, SpatialIndexBuild};
use odyssey_geom::{morton, Aabb, SpatialObject};
use odyssey_storage::{FileId, RawDataset, StorageManager, StorageResult, OBJECTS_PER_PAGE};
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of the FLAT baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatConfig {
    /// Objects per data page.
    pub page_capacity: usize,
    /// Number of external-sort passes charged for the space-filling-curve
    /// packing (FLAT builds on a bulk-loaded R-tree, so it pays at least the
    /// same sorting cost).
    pub external_sort_passes: u32,
    /// Whether the neighbourhood computation re-reads the packed data pages
    /// (an additional full pass, making FLAT the slowest build as in the
    /// paper). Disable only in ablation experiments.
    pub neighbourhood_pass: bool,
}

impl Default for FlatConfig {
    fn default() -> Self {
        FlatConfig {
            page_capacity: OBJECTS_PER_PAGE,
            external_sort_passes: 3,
            neighbourhood_pass: true,
        }
    }
}

/// A built FLAT index.
#[derive(Debug)]
pub struct FlatIndex {
    file: FileId,
    /// MBR of every data page (kept in memory — this is FLAT's compact
    /// metadata; the 50 GB paper datasets have ~12 M pages ⇒ ~600 MB, within
    /// the memory budget).
    page_mbrs: Vec<Aabb>,
    /// Neighbourhood links: for page `i`, the pages whose MBR overlaps
    /// page `i`'s MBR.
    neighbours: Vec<Vec<u32>>,
    /// Small in-memory seed hierarchy: MBRs of groups of `seed_fanout`
    /// consecutive pages, used only to find one seed page quickly.
    seed_groups: Vec<(Aabb, u32, u32)>,
    /// Union of every indexed object's MBR, recorded at build time.
    data_bounds: Aabb,
    data_pages: u64,
    crawl_misses: AtomicU64,
}

const SEED_FANOUT: usize = 64;

impl FlatIndex {
    /// Builds a FLAT index over the union of the given raw datasets.
    pub fn build(
        storage: &StorageManager,
        config: &FlatConfig,
        name: &str,
        sources: &[RawDataset],
    ) -> StorageResult<Self> {
        assert!(config.page_capacity >= 1 && config.page_capacity <= OBJECTS_PER_PAGE);

        // Pass 0: sequential scan of every raw file.
        let mut objects = Vec::new();
        for raw in sources {
            storage.read_objects_into(raw.file, raw.pages(), &mut objects)?;
        }

        // External-sort passes for the space-filling-curve packing.
        charge_external_sort_passes(
            storage,
            &format!("flat_sort_{name}"),
            &objects,
            config.external_sort_passes,
        )?;

        // Pack along the Morton order of object centers.
        let bounds = objects
            .iter()
            .fold(Aabb::empty(), |acc, o| acc.union(&o.mbr));
        let pack_bounds = if bounds.is_empty() {
            Aabb::unit()
        } else {
            bounds
        };
        objects.sort_by_key(|o| morton::encode_point(o.center(), &pack_bounds));

        // Write packed pages sequentially, recording page MBRs.
        let file = storage.create_file(&format!("flat_pages_{name}"))?;
        let mut page_mbrs = Vec::new();
        for chunk in objects.chunks(config.page_capacity) {
            storage.append_objects(file, chunk)?;
            page_mbrs.push(chunk.iter().fold(Aabb::empty(), |acc, o| acc.union(&o.mbr)));
        }
        let data_pages = storage.num_pages(file)?;

        // Neighbourhood computation. FLAT derives the links by executing a
        // window query per page against the partially built structure; we
        // model that as one more full sequential pass over the packed pages
        // plus the pairwise CPU work, and compute the links with a
        // uniform-grid bucket join over the page MBRs.
        if config.neighbourhood_pass && data_pages > 0 {
            let mut sink = Vec::new();
            storage.read_objects_into(file, 0..data_pages, &mut sink)?;
        }
        let neighbours = compute_neighbourhoods(storage, &page_mbrs, &pack_bounds);

        // Seed hierarchy: MBR per group of consecutive pages.
        let seed_groups = page_mbrs
            .chunks(SEED_FANOUT)
            .enumerate()
            .map(|(i, chunk)| {
                let mbr = chunk.iter().fold(Aabb::empty(), |acc, m| acc.union(m));
                let start = (i * SEED_FANOUT) as u32;
                (mbr, start, start + chunk.len() as u32)
            })
            .collect();

        Ok(FlatIndex {
            file,
            page_mbrs,
            neighbours,
            seed_groups,
            data_bounds: bounds,
            data_pages,
            crawl_misses: AtomicU64::new(0),
        })
    }

    /// Number of times the completeness sweep had to read a page the crawl
    /// missed (diagnostic; expected to stay at or near zero).
    pub fn crawl_misses(&self) -> u64 {
        self.crawl_misses.load(Ordering::Relaxed)
    }

    /// Average neighbourhood size (diagnostic / ablation metric).
    pub fn average_neighbours(&self) -> f64 {
        if self.neighbours.is_empty() {
            return 0.0;
        }
        self.neighbours.iter().map(|n| n.len()).sum::<usize>() as f64 / self.neighbours.len() as f64
    }

    /// Finds one page intersecting the range using the seed hierarchy.
    fn find_seed(&self, storage: &StorageManager, range: &Aabb) -> Option<u32> {
        for (mbr, start, end) in &self.seed_groups {
            storage.note_objects_scanned(1);
            if mbr.intersects(range) {
                for p in *start..*end {
                    storage.note_objects_scanned(1);
                    if self.page_mbrs[p as usize].intersects(range) {
                        return Some(p);
                    }
                }
            }
        }
        None
    }
}

/// Computes, for every page, the set of pages whose MBR overlaps it, using a
/// coarse uniform grid over page centers to avoid the quadratic pair join.
/// The pairwise MBR tests are charged to the CPU cost model.
fn compute_neighbourhoods(
    storage: &StorageManager,
    page_mbrs: &[Aabb],
    bounds: &Aabb,
) -> Vec<Vec<u32>> {
    let n = page_mbrs.len();
    let mut neighbours = vec![Vec::new(); n];
    if n == 0 {
        return neighbours;
    }
    // Bucket every page into each grid cell its MBR overlaps. Two pages with
    // intersecting MBRs then necessarily share at least one bucket, so the
    // join below finds every neighbour pair (and is symmetric by
    // construction).
    let cells = (n as f64).cbrt().ceil().max(1.0) as u32;
    let grid = odyssey_geom::GridSpec::new(*bounds, cells);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); grid.cell_count()];
    for (i, mbr) in page_mbrs.iter().enumerate() {
        for cell in grid.cells_overlapping(mbr) {
            buckets[grid.linear_index(cell)].push(i as u32);
        }
    }
    let mut tests = 0u64;
    for bucket in &buckets {
        for (a_pos, &i) in bucket.iter().enumerate() {
            for &j in &bucket[a_pos + 1..] {
                tests += 1;
                if page_mbrs[i as usize].intersects(&page_mbrs[j as usize]) {
                    neighbours[i as usize].push(j);
                    neighbours[j as usize].push(i);
                }
            }
        }
    }
    for list in neighbours.iter_mut() {
        list.sort_unstable();
        list.dedup();
    }
    storage.note_objects_scanned(tests);
    neighbours
}

impl SpatialIndexBuild for FlatIndex {
    /// Inserting into FLAT appends packed pages at the end of the data file
    /// and splices them into the neighbourhood graph: each new page links to
    /// every existing page whose MBR overlaps it (the pairwise tests are CPU
    /// work, charged like the build's neighbourhood computation). The seed
    /// hierarchy grows by rebuilding its tail group.
    fn insert(&mut self, storage: &StorageManager, objects: &[SpatialObject]) -> StorageResult<()> {
        let pages_before = self.page_mbrs.len();
        for chunk in objects.chunks(OBJECTS_PER_PAGE) {
            storage.append_objects(self.file, chunk)?;
            let mbr = chunk.iter().fold(Aabb::empty(), |acc, o| acc.union(&o.mbr));
            let new_page = self.page_mbrs.len() as u32;
            let mut links = Vec::new();
            storage.note_objects_scanned(self.page_mbrs.len() as u64);
            for (i, existing) in self.page_mbrs.iter().enumerate() {
                if existing.intersects(&mbr) {
                    links.push(i as u32);
                    self.neighbours[i].push(new_page);
                }
            }
            self.page_mbrs.push(mbr);
            self.neighbours.push(links);
            self.data_bounds = self.data_bounds.union(&mbr);
        }
        // Grow the seed hierarchy by rebuilding only its tail: groups fully
        // below the old page count are unchanged, so rebuild from the group
        // containing the first appended page (pure CPU).
        let first_dirty_group = pages_before / SEED_FANOUT;
        self.seed_groups.truncate(first_dirty_group);
        for (i, chunk) in self.page_mbrs[first_dirty_group * SEED_FANOUT..]
            .chunks(SEED_FANOUT)
            .enumerate()
        {
            let mbr = chunk.iter().fold(Aabb::empty(), |acc, m| acc.union(m));
            let start = ((first_dirty_group + i) * SEED_FANOUT) as u32;
            self.seed_groups
                .push((mbr, start, start + chunk.len() as u32));
        }
        self.data_pages = storage.num_pages(self.file)?;
        Ok(())
    }

    fn query_range(
        &self,
        storage: &StorageManager,
        range: &Aabb,
    ) -> StorageResult<Vec<SpatialObject>> {
        let Some(seed) = self.find_seed(storage, range) else {
            return Ok(Vec::new());
        };
        // Crawl the neighbourhood links from the seed, collecting every
        // reachable page whose MBR intersects the range.
        let mut visited = vec![false; self.page_mbrs.len()];
        let mut stack = vec![seed];
        visited[seed as usize] = true;
        let mut pages: Vec<u32> = Vec::new();
        while let Some(p) = stack.pop() {
            pages.push(p);
            for &nb in &self.neighbours[p as usize] {
                storage.note_objects_scanned(1);
                if !visited[nb as usize] && self.page_mbrs[nb as usize].intersects(range) {
                    visited[nb as usize] = true;
                    stack.push(nb);
                }
            }
        }
        // Completeness sweep: pick up any intersecting page the crawl missed.
        for (i, mbr) in self.page_mbrs.iter().enumerate() {
            if !visited[i] && mbr.intersects(range) {
                self.crawl_misses.fetch_add(1, Ordering::Relaxed);
                pages.push(i as u32);
            }
        }
        // Read the pages in ascending order: Morton packing makes them mostly
        // contiguous, so the reads are largely sequential.
        pages.sort_unstable();
        let mut result = Vec::new();
        let mut scratch = Vec::new();
        for p in pages {
            scratch.clear();
            storage.read_objects_into(self.file, p as u64..p as u64 + 1, &mut scratch)?;
            result.extend(scratch.iter().filter(|o| o.mbr.intersects(range)).copied());
        }
        Ok(result)
    }

    fn data_bounds(&self) -> Aabb {
        self.data_bounds
    }

    fn data_pages(&self) -> u64 {
        self.data_pages
    }

    fn kind(&self) -> &'static str {
        "flat"
    }
}

/// Builder adapter so strategies can construct FLAT indexes.
#[derive(Debug, Clone)]
pub struct FlatBuilder(pub FlatConfig);

impl IndexBuilder for FlatBuilder {
    type Index = FlatIndex;

    fn build(
        &self,
        storage: &StorageManager,
        name: &str,
        sources: &[RawDataset],
    ) -> StorageResult<FlatIndex> {
        FlatIndex::build(storage, &self.0, name, sources)
    }

    fn kind(&self) -> &'static str {
        "flat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{GridConfig, GridIndex};
    use crate::rtree::{RTreeConfig, RTreeIndex};
    use odyssey_geom::{scan_query, DatasetId, DatasetSet, ObjectId, QueryId, RangeQuery, Vec3};
    use odyssey_storage::write_raw_dataset;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn clustered_objects(n: u64, ds: u16, seed: u64) -> Vec<SpatialObject> {
        // Clustered data resembling the neuroscience workload.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centers: Vec<Vec3> = (0..8)
            .map(|_| {
                Vec3::new(
                    rng.gen_range(10.0..90.0),
                    rng.gen_range(10.0..90.0),
                    rng.gen_range(10.0..90.0),
                )
            })
            .collect();
        (0..n)
            .map(|i| {
                let c = centers[rng.gen_range(0..centers.len())];
                let jitter = Vec3::new(
                    rng.gen_range(-8.0..8.0),
                    rng.gen_range(-8.0..8.0),
                    rng.gen_range(-8.0..8.0),
                );
                SpatialObject::new(
                    ObjectId(i),
                    DatasetId(ds),
                    Aabb::from_center_extent(c + jitter, Vec3::splat(rng.gen_range(0.1..0.5))),
                )
            })
            .collect()
    }

    fn build_flat(n: u64) -> (StorageManager, Vec<SpatialObject>, FlatIndex) {
        let storage = StorageManager::in_memory();
        let objs = clustered_objects(n, 0, 3);
        let raw = write_raw_dataset(&storage, DatasetId(0), &objs).unwrap();
        let idx = FlatIndex::build(&storage, &FlatConfig::default(), "t", &[raw]).unwrap();
        (storage, objs, idx)
    }

    #[test]
    fn queries_match_scan_oracle() {
        let (storage, objs, idx) = build_flat(3000);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..30 {
            let c = Vec3::new(
                rng.gen_range(5.0..95.0),
                rng.gen_range(5.0..95.0),
                rng.gen_range(5.0..95.0),
            );
            let range = Aabb::from_center_extent(c, Vec3::splat(rng.gen_range(1.0..20.0)));
            let q = RangeQuery::new(QueryId(0), range, DatasetSet::single(DatasetId(0)));
            let mut expected: Vec<_> = scan_query(&q, objs.iter()).iter().map(|o| o.id).collect();
            let mut got: Vec<_> = idx
                .query_range(&storage, &range)
                .unwrap()
                .iter()
                .map(|o| o.id)
                .collect();
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn crawl_rarely_misses_on_clustered_data() {
        let (storage, _, idx) = build_flat(5000);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..50 {
            let c = Vec3::new(
                rng.gen_range(10.0..90.0),
                rng.gen_range(10.0..90.0),
                rng.gen_range(10.0..90.0),
            );
            let range = Aabb::from_center_extent(c, Vec3::splat(5.0));
            idx.query_range(&storage, &range).unwrap();
        }
        // The crawl should find practically everything itself; allow a small
        // number of sweep pickups but not a systematic failure.
        assert!(
            idx.crawl_misses() < 25,
            "crawl missed {} pages",
            idx.crawl_misses()
        );
    }

    #[test]
    fn neighbourhoods_are_symmetric_and_nonempty_on_dense_data() {
        let (_, _, idx) = build_flat(4000);
        assert!(idx.average_neighbours() > 0.5);
        for (i, nbs) in idx.neighbours.iter().enumerate() {
            for &j in nbs {
                assert!(
                    idx.neighbours[j as usize].contains(&(i as u32)),
                    "neighbourhood must be symmetric ({i} -> {j})"
                );
            }
        }
    }

    #[test]
    fn empty_query_region_returns_nothing() {
        let (storage, _, idx) = build_flat(500);
        let range = Aabb::from_min_max(Vec3::splat(200.0), Vec3::splat(201.0));
        assert!(idx.query_range(&storage, &range).unwrap().is_empty());
    }

    #[test]
    fn empty_dataset() {
        let storage = StorageManager::in_memory();
        let raw = write_raw_dataset(&storage, DatasetId(0), &[]).unwrap();
        let idx = FlatIndex::build(&storage, &FlatConfig::default(), "t", &[raw]).unwrap();
        assert_eq!(idx.data_pages(), 0);
        assert!(idx
            .query_range(&storage, &Aabb::from_min_max(Vec3::ZERO, Vec3::ONE))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn flat_build_is_slowest_grid_build_is_fastest() {
        // Reproduces the paper's build-cost ordering on a small instance. The
        // grid resolution is scaled to the data volume (the paper's 60³ was a
        // parameter sweep over 50 GB of data) and the buffer pool is kept
        // small relative to the data so multi-pass builds actually touch the
        // simulated disk, as in the paper's out-of-memory setting.
        let objs = clustered_objects(6000, 0, 2);
        let build_cost = |which: &str| {
            let storage = StorageManager::new(odyssey_storage::StorageOptions::in_memory(8));
            let raw = write_raw_dataset(&storage, DatasetId(0), &objs).unwrap();
            let before = storage.stats();
            match which {
                "grid" => {
                    let bounds = Aabb::from_min_max(Vec3::ZERO, Vec3::splat(100.0));
                    let config = GridConfig {
                        cells_per_dim: 10,
                        bounds,
                        build_buffer_objects: 2_000,
                    };
                    GridIndex::build(&storage, &config, "g", &[raw]).unwrap();
                }
                "rtree" => {
                    RTreeIndex::build(&storage, &RTreeConfig::default(), "r", &[raw]).unwrap();
                }
                _ => {
                    FlatIndex::build(&storage, &FlatConfig::default(), "f", &[raw]).unwrap();
                }
            }
            storage.seconds_since(&before)
        };
        let grid = build_cost("grid");
        let rtree = build_cost("rtree");
        let flat = build_cost("flat");
        assert!(
            rtree > grid,
            "rtree {rtree} must cost more than grid {grid}"
        );
        assert!(
            flat > rtree,
            "flat {flat} must cost more than rtree {rtree}"
        );
    }

    #[test]
    fn flat_queries_cost_less_than_rtree_queries() {
        // The other half of the paper's trade-off: once built, FLAT answers
        // range queries with less I/O than the R-Tree (no directory reads,
        // mostly sequential data pages).
        let objs = clustered_objects(8000, 0, 12);
        let bounds_probe = |storage: &StorageManager, idx: &dyn SpatialIndexBuild| {
            let mut rng = ChaCha8Rng::seed_from_u64(33);
            let before = storage.stats();
            for _ in 0..40 {
                let c = Vec3::new(
                    rng.gen_range(15.0..85.0),
                    rng.gen_range(15.0..85.0),
                    rng.gen_range(15.0..85.0),
                );
                let range = Aabb::from_center_extent(c, Vec3::splat(4.0));
                storage.clear_cache();
                idx.query_range(storage, &range).unwrap();
            }
            storage.seconds_since(&before)
        };
        let mut s1 = StorageManager::in_memory();
        let r1 = write_raw_dataset(&s1, DatasetId(0), &objs).unwrap();
        let flat = FlatIndex::build(&s1, &FlatConfig::default(), "f", &[r1]).unwrap();
        let flat_cost = bounds_probe(&mut s1, &flat);

        let mut s2 = StorageManager::in_memory();
        let r2 = write_raw_dataset(&s2, DatasetId(0), &objs).unwrap();
        let rtree = RTreeIndex::build(&s2, &RTreeConfig::default(), "r", &[r2]).unwrap();
        let rtree_cost = bounds_probe(&mut s2, &rtree);

        assert!(
            flat_cost < rtree_cost,
            "flat queries ({flat_cost}s) should be cheaper than rtree queries ({rtree_cost}s)"
        );
    }

    #[test]
    fn builder_trait() {
        let storage = StorageManager::in_memory();
        let objs = clustered_objects(200, 0, 1);
        let raw = write_raw_dataset(&storage, DatasetId(0), &objs).unwrap();
        let b = FlatBuilder(FlatConfig::default());
        assert_eq!(b.kind(), "flat");
        let idx = b.build(&storage, "x", &[raw]).unwrap();
        assert_eq!(idx.kind(), "flat");
        assert!(idx.data_pages() > 0);
    }

    #[test]
    fn disabling_neighbourhood_pass_reduces_build_cost() {
        let objs = clustered_objects(3000, 0, 2);
        let cost = |pass: bool| {
            let storage = StorageManager::in_memory();
            let raw = write_raw_dataset(&storage, DatasetId(0), &objs).unwrap();
            let before = storage.stats();
            FlatIndex::build(
                &storage,
                &FlatConfig {
                    neighbourhood_pass: pass,
                    ..Default::default()
                },
                "f",
                &[raw],
            )
            .unwrap();
            storage.seconds_since(&before)
        };
        assert!(cost(true) > cost(false));
    }
}
