//! R-Tree baseline, bulk loaded with the Sort-Tile-Recursive (STR) algorithm.
//!
//! This mirrors the paper's "RTree" competitor (a bulk-loaded STR variant of
//! the classic R-Tree). Two properties matter for the evaluation:
//!
//! * **Build cost** — STR sorts the whole dataset along each dimension. At
//!   the paper's scale (50 GB of data against a 1 GB memory budget) these are
//!   *external* sorts, so the build performs several full read+write passes
//!   over the data before the leaf pages can be written. The builder here
//!   materialises those passes through the storage layer so the cost model
//!   charges them.
//! * **Query cost** — the directory (internal nodes) lives on disk, one node
//!   per page; a range query therefore pays random reads for the node pages
//!   it traverses before it can read any leaf. This is exactly the overhead
//!   FLAT was designed to avoid.

use crate::traits::{IndexBuilder, SpatialIndexBuild};
use odyssey_geom::{Aabb, DatasetId, ObjectId, SpatialObject};
use odyssey_storage::{
    FileId, PageId, RawDataset, StorageManager, StorageResult, OBJECTS_PER_PAGE,
};

/// Configuration of the STR R-Tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeConfig {
    /// Objects per leaf page (fixed by the page layout).
    pub leaf_capacity: usize,
    /// Entries per internal node page (fixed by the page layout: node entries
    /// reuse the 64-byte record format).
    pub node_fanout: usize,
    /// Number of full external-sort passes charged during bulk load. STR
    /// sorts by x, then y within x-slabs, then z within xy-slabs; with data
    /// far larger than memory each sort is an external merge sort, modelled
    /// here as `external_sort_passes` sequential read+write passes over the
    /// data.
    pub external_sort_passes: u32,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        RTreeConfig {
            leaf_capacity: OBJECTS_PER_PAGE,
            node_fanout: OBJECTS_PER_PAGE,
            external_sort_passes: 3,
        }
    }
}

/// A bulk-loaded R-Tree whose leaves and directory are both on disk.
#[derive(Debug)]
pub struct RTreeIndex {
    leaf_file: FileId,
    node_file: FileId,
    /// Page id of the root node within `node_file`.
    root_page: u64,
    /// Total leaf pages (data pages).
    data_pages: u64,
    /// Total node pages (directory pages).
    directory_pages: u64,
    /// Height of the tree (1 = root points directly at leaves).
    height: u32,
    /// Union of every indexed object's MBR, recorded at build time.
    data_bounds: Aabb,
    /// Insert buffer: `(leaf page, MBR)` of pages appended after the bulk
    /// load. An STR-packed directory cannot absorb single inserts without
    /// node splits, so arrivals are appended as overflow leaves whose MBRs
    /// are checked on every query — the classic bulk-load + insert-buffer
    /// compromise.
    overflow_leaves: Vec<(u64, Aabb)>,
}

/// Marker stored in a node entry's `dataset` field: the child is a leaf page.
const CHILD_IS_LEAF: u16 = 0;
/// Marker stored in a node entry's `dataset` field: the child is another node.
const CHILD_IS_NODE: u16 = 1;

impl RTreeIndex {
    /// Bulk loads an R-Tree over the union of the given raw datasets.
    pub fn build(
        storage: &StorageManager,
        config: &RTreeConfig,
        name: &str,
        sources: &[RawDataset],
    ) -> StorageResult<Self> {
        assert!(config.leaf_capacity >= 1 && config.leaf_capacity <= OBJECTS_PER_PAGE);
        assert!(config.node_fanout >= 2 && config.node_fanout <= OBJECTS_PER_PAGE);

        // Pass 0: sequential scan of every raw file.
        let mut objects = Vec::new();
        for raw in sources {
            storage.read_objects_into(raw.file, raw.pages(), &mut objects)?;
        }

        // External-sort passes: each is a full sequential write + read of the
        // data through a temporary run file.
        charge_external_sort_passes(
            storage,
            &format!("rtree_sort_{name}"),
            &objects,
            config.external_sort_passes,
        )?;

        // STR tiling (in memory; the I/O cost was charged above).
        let leaves = str_pack(&mut objects, config.leaf_capacity);

        // Write leaf pages sequentially and record their MBRs.
        let leaf_file = storage.create_file(&format!("rtree_leaves_{name}"))?;
        let mut leaf_mbrs = Vec::with_capacity(leaves.len());
        for leaf in &leaves {
            storage.append_objects(leaf_file, leaf)?;
            leaf_mbrs.push(mbr_of(leaf));
        }
        let data_pages = storage.num_pages(leaf_file)?;

        // Build the directory bottom-up, one node per page.
        let node_file = storage.create_file(&format!("rtree_nodes_{name}"))?;
        let (root_page, height) =
            build_directory(storage, node_file, &leaf_mbrs, config.node_fanout)?;
        let directory_pages = storage.num_pages(node_file)?;

        let data_bounds = leaf_mbrs.iter().fold(Aabb::empty(), |acc, m| acc.union(m));
        Ok(RTreeIndex {
            leaf_file,
            node_file,
            root_page,
            data_pages,
            directory_pages,
            height,
            data_bounds,
            overflow_leaves: Vec::new(),
        })
    }

    /// Height of the directory (1 = root points directly at leaf pages).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of directory (internal node) pages.
    pub fn directory_pages(&self) -> u64 {
        self.directory_pages
    }

    /// Number of overflow leaf pages appended by inserts since the bulk load.
    pub fn overflow_leaf_pages(&self) -> usize {
        self.overflow_leaves.len()
    }
}

impl SpatialIndexBuild for RTreeIndex {
    fn insert(&mut self, storage: &StorageManager, objects: &[SpatialObject]) -> StorageResult<()> {
        for chunk in objects.chunks(OBJECTS_PER_PAGE) {
            let range = storage.append_objects(self.leaf_file, chunk)?;
            let mbr = mbr_of(chunk);
            for page in range {
                self.overflow_leaves.push((page, mbr));
            }
            self.data_bounds = self.data_bounds.union(&mbr);
        }
        self.data_pages = storage.num_pages(self.leaf_file)?;
        Ok(())
    }

    fn query_range(
        &self,
        storage: &StorageManager,
        range: &Aabb,
    ) -> StorageResult<Vec<SpatialObject>> {
        // Traverse the directory; every visited node costs a page read.
        let mut node_stack = vec![self.root_page];
        let mut leaf_pages: Vec<u64> = Vec::new();
        while let Some(node_page) = node_stack.pop() {
            let page = storage.read_page(self.node_file, PageId(node_page))?;
            let entries = page.objects()?;
            storage.note_objects_scanned(entries.len() as u64);
            for entry in entries {
                if entry.mbr.intersects(range) {
                    match entry.dataset.0 {
                        CHILD_IS_LEAF => leaf_pages.push(entry.id.0),
                        _ => node_stack.push(entry.id.0),
                    }
                }
            }
        }
        // Overflow leaves from inserts: their MBRs live in memory and are
        // checked like one more directory level.
        storage.note_objects_scanned(self.overflow_leaves.len() as u64);
        for (page, mbr) in &self.overflow_leaves {
            if mbr.intersects(range) {
                leaf_pages.push(*page);
            }
        }
        // Read qualifying leaves in ascending page order so contiguous runs
        // stay sequential, then filter objects against the exact range.
        leaf_pages.sort_unstable();
        leaf_pages.dedup();
        let mut result = Vec::new();
        let mut scratch = Vec::new();
        for lp in leaf_pages {
            scratch.clear();
            storage.read_objects_into(self.leaf_file, lp..lp + 1, &mut scratch)?;
            result.extend(scratch.iter().filter(|o| o.mbr.intersects(range)).copied());
        }
        Ok(result)
    }

    fn data_bounds(&self) -> Aabb {
        self.data_bounds
    }

    fn data_pages(&self) -> u64 {
        self.data_pages
    }

    fn kind(&self) -> &'static str {
        "rtree"
    }
}

/// Smallest box containing all the objects of a slice.
fn mbr_of(objects: &[SpatialObject]) -> Aabb {
    objects
        .iter()
        .fold(Aabb::empty(), |acc, o| acc.union(&o.mbr))
}

/// Charges `passes` full external-sort passes over `objects`: each pass
/// writes the data to a fresh run file sequentially and reads it back.
pub(crate) fn charge_external_sort_passes(
    storage: &StorageManager,
    name: &str,
    objects: &[SpatialObject],
    passes: u32,
) -> StorageResult<()> {
    for pass in 0..passes {
        let run = storage.create_file(&format!("{name}_pass{pass}"))?;
        let range = storage.append_objects(run, objects)?;
        let mut sink = Vec::new();
        storage.read_objects_into(run, range, &mut sink)?;
    }
    Ok(())
}

/// Sort-Tile-Recursive packing: returns the leaves in tile order, each at
/// most `leaf_capacity` objects.
pub(crate) fn str_pack(
    objects: &mut [SpatialObject],
    leaf_capacity: usize,
) -> Vec<Vec<SpatialObject>> {
    if objects.is_empty() {
        return Vec::new();
    }
    let n = objects.len();
    let num_leaves = n.div_ceil(leaf_capacity);
    // Classic STR slab sizing: S = ceil(P^(1/3)) vertical slabs of S²·capacity
    // objects, then S slabs of S·capacity objects inside each, then full
    // leaves. Keeping slab sizes multiples of the leaf capacity guarantees
    // exactly ceil(n / capacity) leaves, all full except possibly the last.
    let s = (num_leaves as f64).cbrt().ceil() as usize;
    let x_slab = (s * s * leaf_capacity).max(leaf_capacity);
    let y_slab = (s * leaf_capacity).max(leaf_capacity);

    objects.sort_by(|a, b| a.center().x.total_cmp(&b.center().x));
    let mut leaves = Vec::with_capacity(num_leaves);
    for x_chunk in objects.chunks_mut(x_slab) {
        x_chunk.sort_by(|a, b| a.center().y.total_cmp(&b.center().y));
        for y_chunk in x_chunk.chunks_mut(y_slab) {
            y_chunk.sort_by(|a, b| a.center().z.total_cmp(&b.center().z));
            for leaf in y_chunk.chunks(leaf_capacity) {
                leaves.push(leaf.to_vec());
            }
        }
    }
    debug_assert_eq!(leaves.len(), num_leaves);
    leaves
}

/// Builds the directory bottom-up. Child references are encoded as object
/// records: `id` carries the child page index, `dataset` distinguishes leaf
/// children from node children, and `mbr` is the child's bounding box.
/// Returns the root page index and the tree height.
fn build_directory(
    storage: &StorageManager,
    node_file: FileId,
    leaf_mbrs: &[Aabb],
    fanout: usize,
) -> StorageResult<(u64, u32)> {
    // Level 0 references leaves.
    let mut level: Vec<(u64, Aabb, u16)> = leaf_mbrs
        .iter()
        .enumerate()
        .map(|(i, mbr)| (i as u64, *mbr, CHILD_IS_LEAF))
        .collect();
    if level.is_empty() {
        // Degenerate tree over an empty dataset: a single empty root node.
        let root = storage.append_page(node_file, &odyssey_storage::Page::empty())?;
        return Ok((root.0, 1));
    }
    let mut height = 0u32;
    loop {
        height += 1;
        let mut next_level: Vec<(u64, Aabb, u16)> = Vec::new();
        for group in level.chunks(fanout) {
            let entries: Vec<SpatialObject> = group
                .iter()
                .map(|(child, mbr, tag)| {
                    SpatialObject::new(ObjectId(*child), DatasetId(*tag), *mbr)
                })
                .collect();
            let page = odyssey_storage::Page::from_objects(&entries)?;
            let page_id = storage.append_page(node_file, &page)?;
            let node_mbr = group
                .iter()
                .fold(Aabb::empty(), |acc, (_, m, _)| acc.union(m));
            next_level.push((page_id.0, node_mbr, CHILD_IS_NODE));
        }
        if next_level.len() == 1 {
            return Ok((next_level[0].0, height));
        }
        level = next_level;
    }
}

/// Builder adapter so strategies can construct R-Trees.
#[derive(Debug, Clone)]
pub struct RTreeBuilder(pub RTreeConfig);

impl IndexBuilder for RTreeBuilder {
    type Index = RTreeIndex;

    fn build(
        &self,
        storage: &StorageManager,
        name: &str,
        sources: &[RawDataset],
    ) -> StorageResult<RTreeIndex> {
        RTreeIndex::build(storage, &self.0, name, sources)
    }

    fn kind(&self) -> &'static str {
        "rtree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_geom::{scan_query, DatasetSet, QueryId, RangeQuery, Vec3};
    use odyssey_storage::write_raw_dataset;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn random_objects(n: u64, ds: u16, seed: u64) -> Vec<SpatialObject> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = Vec3::new(
                    rng.gen_range(1.0..99.0),
                    rng.gen_range(1.0..99.0),
                    rng.gen_range(1.0..99.0),
                );
                SpatialObject::new(
                    ObjectId(i),
                    DatasetId(ds),
                    Aabb::from_center_extent(c, Vec3::splat(rng.gen_range(0.1..1.0))),
                )
            })
            .collect()
    }

    fn build_index(n: u64) -> (StorageManager, Vec<SpatialObject>, RTreeIndex) {
        let storage = StorageManager::in_memory();
        let objs = random_objects(n, 0, 3);
        let raw = write_raw_dataset(&storage, DatasetId(0), &objs).unwrap();
        let idx = RTreeIndex::build(&storage, &RTreeConfig::default(), "t", &[raw]).unwrap();
        (storage, objs, idx)
    }

    #[test]
    fn str_pack_respects_capacity_and_preserves_objects() {
        let mut objs = random_objects(1000, 0, 9);
        let original = objs.clone();
        let leaves = str_pack(&mut objs, 63);
        assert_eq!(leaves.len(), 1000usize.div_ceil(63));
        let mut flattened: Vec<u64> = leaves.iter().flatten().map(|o| o.id.0).collect();
        flattened.sort_unstable();
        let mut expected: Vec<u64> = original.iter().map(|o| o.id.0).collect();
        expected.sort_unstable();
        assert_eq!(flattened, expected);
        for leaf in &leaves {
            assert!(leaf.len() <= 63);
            assert!(!leaf.is_empty());
        }
    }

    #[test]
    fn str_pack_produces_spatially_tight_leaves() {
        // STR leaves should have much smaller MBRs than random grouping.
        let mut objs = random_objects(2000, 0, 4);
        let leaves = str_pack(&mut objs, 63);
        let str_avg: f64 =
            leaves.iter().map(|l| mbr_of(l).volume()).sum::<f64>() / leaves.len() as f64;
        let random_chunks: Vec<Vec<SpatialObject>> = random_objects(2000, 0, 4)
            .chunks(63)
            .map(|c| c.to_vec())
            .collect();
        let rnd_avg: f64 = random_chunks
            .iter()
            .map(|l| mbr_of(l).volume())
            .sum::<f64>()
            / random_chunks.len() as f64;
        assert!(str_avg < rnd_avg / 3.0, "STR {str_avg} vs random {rnd_avg}");
    }

    #[test]
    fn str_pack_empty() {
        let mut objs: Vec<SpatialObject> = Vec::new();
        assert!(str_pack(&mut objs, 63).is_empty());
    }

    #[test]
    fn queries_match_scan_oracle() {
        let (storage, objs, idx) = build_index(3000);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..30 {
            let c = Vec3::new(
                rng.gen_range(5.0..95.0),
                rng.gen_range(5.0..95.0),
                rng.gen_range(5.0..95.0),
            );
            let range = Aabb::from_center_extent(c, Vec3::splat(rng.gen_range(1.0..25.0)));
            let q = RangeQuery::new(QueryId(0), range, DatasetSet::single(DatasetId(0)));
            let mut expected: Vec<_> = scan_query(&q, objs.iter()).iter().map(|o| o.id).collect();
            let mut got: Vec<_> = idx
                .query_range(&storage, &range)
                .unwrap()
                .iter()
                .map(|o| o.id)
                .collect();
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn directory_is_on_disk_and_traversal_reads_it() {
        let (storage, _, idx) = build_index(5000);
        assert!(idx.directory_pages() >= 2, "5000 objects need >1 node page");
        assert!(idx.height() >= 2);
        storage.clear_cache();
        let before = storage.stats();
        let range = Aabb::from_center_extent(Vec3::splat(50.0), Vec3::splat(5.0));
        idx.query_range(&storage, &range).unwrap();
        let d = storage.stats().since(&before).0;
        // At least the root and one more directory page were read in addition
        // to any leaf pages.
        assert!(d.pages_read() >= 2);
    }

    #[test]
    fn build_charges_external_sort_passes() {
        let storage = StorageManager::in_memory();
        let objs = random_objects(2000, 0, 1);
        let raw = write_raw_dataset(&storage, DatasetId(0), &objs).unwrap();
        let before = storage.stats();
        let _ = RTreeIndex::build(
            &storage,
            &RTreeConfig {
                external_sort_passes: 3,
                ..Default::default()
            },
            "t",
            &[raw],
        )
        .unwrap();
        let d = storage.stats().since(&before).0;
        let raw_pages = raw.num_pages();
        // 1 scan + 3 sort-pass reads, plus 3 sort-pass writes + leaf writes.
        assert!(d.pages_read() + d.buffer_hits >= 4 * raw_pages);
        assert!(d.pages_written() >= 4 * raw_pages);
    }

    #[test]
    fn more_sort_passes_cost_more() {
        let cost = |passes: u32| {
            let storage = StorageManager::in_memory();
            let objs = random_objects(2000, 0, 1);
            let raw = write_raw_dataset(&storage, DatasetId(0), &objs).unwrap();
            let before = storage.stats();
            let _ = RTreeIndex::build(
                &storage,
                &RTreeConfig {
                    external_sort_passes: passes,
                    ..Default::default()
                },
                "t",
                &[raw],
            )
            .unwrap();
            storage.seconds_since(&before)
        };
        assert!(cost(3) > cost(1));
    }

    #[test]
    fn empty_dataset_builds_and_queries() {
        let storage = StorageManager::in_memory();
        let raw = write_raw_dataset(&storage, DatasetId(0), &[]).unwrap();
        let idx = RTreeIndex::build(&storage, &RTreeConfig::default(), "t", &[raw]).unwrap();
        let res = idx
            .query_range(&storage, &Aabb::from_min_max(Vec3::ZERO, Vec3::ONE))
            .unwrap();
        assert!(res.is_empty());
        assert_eq!(idx.data_pages(), 0);
    }

    #[test]
    fn multi_dataset_build() {
        let storage = StorageManager::in_memory();
        let a = random_objects(500, 0, 1);
        let b = random_objects(500, 1, 2);
        let ra = write_raw_dataset(&storage, DatasetId(0), &a).unwrap();
        let rb = write_raw_dataset(&storage, DatasetId(1), &b).unwrap();
        let idx = RTreeIndex::build(&storage, &RTreeConfig::default(), "u", &[ra, rb]).unwrap();
        let range = Aabb::from_min_max(Vec3::splat(10.0), Vec3::splat(90.0));
        let res = idx.query_range(&storage, &range).unwrap();
        assert!(res.iter().any(|o| o.dataset == DatasetId(0)));
        assert!(res.iter().any(|o| o.dataset == DatasetId(1)));
    }

    #[test]
    fn builder_trait() {
        let storage = StorageManager::in_memory();
        let objs = random_objects(100, 0, 1);
        let raw = write_raw_dataset(&storage, DatasetId(0), &objs).unwrap();
        let b = RTreeBuilder(RTreeConfig::default());
        assert_eq!(b.kind(), "rtree");
        let idx = b.build(&storage, "x", &[raw]).unwrap();
        assert_eq!(idx.kind(), "rtree");
        assert!(idx.data_pages() > 0);
    }
}
