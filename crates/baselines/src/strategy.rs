//! Multi-dataset strategies: one-for-each (1fE) and all-in-one (Ain1).
//!
//! The paper evaluates every static index under two strategies:
//!
//! * **1fE** builds one index per dataset. A query probes only the indexes of
//!   the datasets it requests and unions the results — cheap when few
//!   datasets are queried, increasingly expensive as `m` grows.
//! * **Ain1** builds a single index over the union of all datasets. A query
//!   probes one (large) structure and filters out objects of datasets that
//!   were not requested — insensitive to `m` but always pays for the big
//!   structure and the filtered-out objects.
//!
//! Space Odyssey is a hybrid: per-dataset adaptive indexes (like 1fE) plus
//! merge files for hot combinations (like Ain1), which is what the harness
//! compares against these strategies.

use crate::flat::{FlatBuilder, FlatConfig};
use crate::grid::{GridBuilder, GridConfig};
use crate::rtree::{RTreeBuilder, RTreeConfig};
use crate::traits::{IndexBuilder, SpatialIndexBuild};
use odyssey_geom::{
    knn_key_cmp, Aabb, DatasetId, Query, QueryAnswer, RangeQuery, SpatialObject, Vec3,
};
use odyssey_storage::{RawDataset, StorageManager, StorageResult};

/// How a static index is instantiated over multiple datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// One index per dataset.
    OneForEach,
    /// One index over the union of all datasets.
    AllInOne,
}

impl Strategy {
    /// The paper's abbreviation ("1fE" / "Ain1").
    pub fn abbrev(self) -> &'static str {
        match self {
            Strategy::OneForEach => "1fE",
            Strategy::AllInOne => "Ain1",
        }
    }
}

/// A fully built multi-dataset access method that can answer the paper's
/// `Q = {A; DS1, …, DSN}` queries.
///
/// Queries take `&self` and a shared `&StorageManager`, and implementations
/// must be `Send + Sync`: the concurrent benchmark harness drives every
/// strategy from multiple threads exactly like the Space Odyssey engine.
pub trait MultiDatasetIndex: Send + Sync {
    /// Executes a query and returns the objects of the requested datasets
    /// whose MBRs intersect the range.
    fn query(
        &self,
        storage: &StorageManager,
        query: &RangeQuery,
    ) -> StorageResult<Vec<SpatialObject>>;

    /// Ingests newly arrived objects of `dataset`, keeping later queries
    /// exact. Mirrors `SpaceOdyssey::ingest` so interleaved ingest+query
    /// traces can be cross-checked against the static baselines
    /// apples-to-apples. Arrivals for datasets the strategy has no index for
    /// are ignored (like queries on unknown datasets).
    fn ingest(
        &mut self,
        storage: &StorageManager,
        dataset: DatasetId,
        objects: &[SpatialObject],
    ) -> StorageResult<()>;

    /// Display name, e.g. `"FLAT-Ain1"`.
    fn name(&self) -> String;

    /// Total data pages across the underlying indexes.
    fn data_pages(&self) -> u64;

    /// Union of the MBRs of every indexed object (bounds the kNN search).
    fn data_bounds(&self) -> Aabb;

    /// Executes any of the four typed query kinds, so the static baselines
    /// stay comparable with the adaptive engine on every kind.
    ///
    /// The default implementation reduces every kind to range probes:
    ///
    /// * **Range** — [`MultiDatasetIndex::query`] as is;
    /// * **Point** — a degenerate (zero-extent) range at the point;
    /// * **Count** — a range query whose results are counted. Static indexes
    ///   keep no per-region object counts, so unlike the adaptive engine
    ///   they must materialize to count;
    /// * **kNN** — expanding-radius search: probe a cube around the point
    ///   and double its radius until the `k`-th best candidate provably
    ///   cannot be displaced (its distance fits inside the probed radius) or
    ///   the probe covers the data bounds. Any object within Euclidean
    ///   distance `r` intersects the cube of half-extent `r`, so the stop
    ///   condition is exact, and results use the same
    ///   `(distance, dataset, id)` order as every other execution path.
    fn execute_query(&self, storage: &StorageManager, query: &Query) -> StorageResult<QueryAnswer> {
        match query {
            Query::Range(q) => Ok(QueryAnswer::Objects(self.query(storage, q)?)),
            Query::Point(q) => Ok(QueryAnswer::Objects(self.query(storage, &q.as_range())?)),
            Query::Count(q) => Ok(QueryAnswer::Count(
                self.query(storage, &q.as_range())?.len() as u64,
            )),
            Query::KNearestNeighbors(q) => {
                if q.k == 0 {
                    return Ok(QueryAnswer::Objects(Vec::new()));
                }
                let bounds = self.data_bounds();
                if bounds.is_empty() {
                    return Ok(QueryAnswer::Objects(Vec::new()));
                }
                let diagonal = (bounds.max - bounds.min).length();
                let mut radius = (diagonal / 64.0).max(f64::MIN_POSITIVE);
                loop {
                    let probe = Aabb::from_center_extent(q.point, Vec3::splat(radius * 2.0));
                    let rq = RangeQuery::new(q.id, probe, q.datasets);
                    let mut found = self.query(storage, &rq)?;
                    found.sort_by(|a, b| knn_key_cmp(&q.rank_key(a), &q.rank_key(b)));
                    found.truncate(q.k);
                    let complete = found.len() == q.k
                        && found
                            .last()
                            .is_some_and(|o| q.distance_squared(o) <= radius * radius);
                    if complete || probe.contains(&bounds) {
                        return Ok(QueryAnswer::Objects(found));
                    }
                    radius *= 2.0;
                }
            }
        }
    }
}

/// 1fE wrapper: one index per dataset.
pub struct OneForEach<I: SpatialIndexBuild> {
    indexes: Vec<(DatasetId, I)>,
    label: String,
}

impl<I: SpatialIndexBuild> OneForEach<I> {
    /// Builds one index per raw dataset using `builder`.
    pub fn build<B: IndexBuilder<Index = I>>(
        storage: &StorageManager,
        builder: &B,
        sources: &[RawDataset],
    ) -> StorageResult<Self> {
        let mut indexes = Vec::with_capacity(sources.len());
        for raw in sources {
            let idx = builder.build(
                storage,
                &format!("ds{}", raw.dataset.0),
                std::slice::from_ref(raw),
            )?;
            indexes.push((raw.dataset, idx));
        }
        Ok(OneForEach {
            indexes,
            label: format!("{}-1fE", display_kind(builder.kind())),
        })
    }

    /// Number of per-dataset indexes.
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }
}

impl<I: SpatialIndexBuild> MultiDatasetIndex for OneForEach<I> {
    fn ingest(
        &mut self,
        storage: &StorageManager,
        dataset: DatasetId,
        objects: &[SpatialObject],
    ) -> StorageResult<()> {
        if let Some((_, index)) = self.indexes.iter_mut().find(|(d, _)| *d == dataset) {
            index.insert(storage, objects)?;
        }
        Ok(())
    }

    fn query(
        &self,
        storage: &StorageManager,
        query: &RangeQuery,
    ) -> StorageResult<Vec<SpatialObject>> {
        let mut result = Vec::new();
        for (dataset, index) in &self.indexes {
            if query.datasets.contains(*dataset) {
                let objs = index.query_range(storage, &query.range)?;
                storage.note_objects_scanned(objs.len() as u64);
                result.extend(objs.into_iter().filter(|o| query.matches(o)));
            }
        }
        Ok(result)
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn data_pages(&self) -> u64 {
        self.indexes.iter().map(|(_, i)| i.data_pages()).sum()
    }

    fn data_bounds(&self) -> Aabb {
        self.indexes
            .iter()
            .fold(Aabb::empty(), |acc, (_, i)| acc.union(&i.data_bounds()))
    }
}

/// Ain1 wrapper: one index over everything, with post-filtering by dataset.
pub struct AllInOne<I: SpatialIndexBuild> {
    index: I,
    /// The datasets the index was built over; arrivals for any other dataset
    /// are ignored, mirroring the engine's unknown-dataset no-op.
    datasets: odyssey_geom::DatasetSet,
    label: String,
}

impl<I: SpatialIndexBuild> AllInOne<I> {
    /// Builds a single index over the union of all raw datasets.
    pub fn build<B: IndexBuilder<Index = I>>(
        storage: &StorageManager,
        builder: &B,
        sources: &[RawDataset],
    ) -> StorageResult<Self> {
        let index = builder.build(storage, "all", sources)?;
        Ok(AllInOne {
            index,
            datasets: sources.iter().map(|r| r.dataset).collect(),
            label: format!("{}-Ain1", display_kind(builder.kind())),
        })
    }

    /// The wrapped index.
    pub fn inner(&self) -> &I {
        &self.index
    }
}

impl<I: SpatialIndexBuild> MultiDatasetIndex for AllInOne<I> {
    fn ingest(
        &mut self,
        storage: &StorageManager,
        dataset: DatasetId,
        objects: &[SpatialObject],
    ) -> StorageResult<()> {
        if !self.datasets.contains(dataset) {
            return Ok(());
        }
        self.index.insert(storage, objects)
    }

    fn query(
        &self,
        storage: &StorageManager,
        query: &RangeQuery,
    ) -> StorageResult<Vec<SpatialObject>> {
        let objs = self.index.query_range(storage, &query.range)?;
        storage.note_objects_scanned(objs.len() as u64);
        Ok(objs.into_iter().filter(|o| query.matches(o)).collect())
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn data_pages(&self) -> u64 {
        self.index.data_pages()
    }

    fn data_bounds(&self) -> Aabb {
        self.index.data_bounds()
    }
}

fn display_kind(kind: &str) -> &'static str {
    match kind {
        "grid" => "Grid",
        "rtree" => "RTree",
        "flat" => "FLAT",
        _ => "Index",
    }
}

/// The concrete competitor approaches evaluated in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// FLAT with a single index over all datasets.
    FlatAin1,
    /// FLAT with one index per dataset.
    Flat1fE,
    /// STR R-Tree with a single index over all datasets.
    RTreeAin1,
    /// STR R-Tree with one index per dataset.
    RTree1fE,
    /// Uniform grid with one index per dataset (the paper's Grid variant).
    Grid1fE,
    /// Uniform grid with a single index over all datasets (extra variant used
    /// in ablations; not plotted in the paper's Figure 4).
    GridAin1,
}

impl Approach {
    /// The approaches plotted in Figure 4, in the paper's legend order.
    pub const FIGURE4: [Approach; 4] = [
        Approach::FlatAin1,
        Approach::Flat1fE,
        Approach::RTreeAin1,
        Approach::Grid1fE,
    ];

    /// Display name matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            Approach::FlatAin1 => "FLAT-Ain1",
            Approach::Flat1fE => "FLAT-1fE",
            Approach::RTreeAin1 => "RTree-Ain1",
            Approach::RTree1fE => "RTree-1fE",
            Approach::Grid1fE => "Grid-1fE",
            Approach::GridAin1 => "Grid-Ain1",
        }
    }

    /// Which strategy the approach uses.
    pub fn strategy(self) -> Strategy {
        match self {
            Approach::FlatAin1 | Approach::RTreeAin1 | Approach::GridAin1 => Strategy::AllInOne,
            Approach::Flat1fE | Approach::RTree1fE | Approach::Grid1fE => Strategy::OneForEach,
        }
    }
}

/// Configuration bundle for [`build_approach`].
#[derive(Debug, Clone, Copy)]
pub struct ApproachConfig {
    /// Grid configuration (needs the data bounds).
    pub grid: GridConfig,
    /// R-Tree configuration.
    pub rtree: RTreeConfig,
    /// FLAT configuration.
    pub flat: FlatConfig,
}

impl ApproachConfig {
    /// The paper's configuration over the given data bounds.
    pub fn paper(bounds: Aabb) -> Self {
        ApproachConfig {
            grid: GridConfig::paper(bounds),
            rtree: RTreeConfig::default(),
            flat: FlatConfig::default(),
        }
    }
}

/// Builds one of the competitor approaches over the given raw datasets and
/// returns it as a trait object the harness can drive uniformly.
pub fn build_approach(
    storage: &StorageManager,
    approach: Approach,
    config: &ApproachConfig,
    sources: &[RawDataset],
) -> StorageResult<Box<dyn MultiDatasetIndex>> {
    Ok(match approach {
        Approach::FlatAin1 => Box::new(AllInOne::build(
            storage,
            &FlatBuilder(config.flat),
            sources,
        )?),
        Approach::Flat1fE => Box::new(OneForEach::build(
            storage,
            &FlatBuilder(config.flat),
            sources,
        )?),
        Approach::RTreeAin1 => Box::new(AllInOne::build(
            storage,
            &RTreeBuilder(config.rtree),
            sources,
        )?),
        Approach::RTree1fE => Box::new(OneForEach::build(
            storage,
            &RTreeBuilder(config.rtree),
            sources,
        )?),
        Approach::Grid1fE => Box::new(OneForEach::build(
            storage,
            &GridBuilder(config.grid),
            sources,
        )?),
        Approach::GridAin1 => Box::new(AllInOne::build(
            storage,
            &GridBuilder(config.grid),
            sources,
        )?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_geom::{scan_query, DatasetSet, ObjectId, QueryId, Vec3};
    use odyssey_storage::write_raw_dataset;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn bounds() -> Aabb {
        Aabb::from_min_max(Vec3::ZERO, Vec3::splat(100.0))
    }

    fn random_objects(n: u64, ds: u16, seed: u64) -> Vec<SpatialObject> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let c = Vec3::new(
                    rng.gen_range(1.0..99.0),
                    rng.gen_range(1.0..99.0),
                    rng.gen_range(1.0..99.0),
                );
                SpatialObject::new(
                    ObjectId(i),
                    DatasetId(ds),
                    Aabb::from_center_extent(c, Vec3::splat(rng.gen_range(0.1..0.8))),
                )
            })
            .collect()
    }

    struct Fixture {
        storage: StorageManager,
        raws: Vec<RawDataset>,
        all_objects: Vec<SpatialObject>,
    }

    fn fixture(num_datasets: u16, per_dataset: u64) -> Fixture {
        let storage = StorageManager::in_memory();
        let mut raws = Vec::new();
        let mut all_objects = Vec::new();
        for ds in 0..num_datasets {
            let objs = random_objects(per_dataset, ds, ds as u64 + 1);
            raws.push(write_raw_dataset(&storage, DatasetId(ds), &objs).unwrap());
            all_objects.extend(objs);
        }
        Fixture {
            storage,
            raws,
            all_objects,
        }
    }

    fn sample_query(seed: u64, datasets: &[u16]) -> RangeQuery {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let c = Vec3::new(
            rng.gen_range(10.0..90.0),
            rng.gen_range(10.0..90.0),
            rng.gen_range(10.0..90.0),
        );
        RangeQuery::new(
            QueryId(seed as u32),
            Aabb::from_center_extent(c, Vec3::splat(rng.gen_range(3.0..15.0))),
            DatasetSet::from_ids(datasets.iter().map(|&d| DatasetId(d))),
        )
    }

    #[test]
    fn strategy_abbreviations() {
        assert_eq!(Strategy::OneForEach.abbrev(), "1fE");
        assert_eq!(Strategy::AllInOne.abbrev(), "Ain1");
        assert_eq!(Approach::FlatAin1.strategy(), Strategy::AllInOne);
        assert_eq!(Approach::Grid1fE.strategy(), Strategy::OneForEach);
        assert_eq!(Approach::FIGURE4.len(), 4);
    }

    #[test]
    fn every_approach_answers_queries_correctly() {
        let Fixture {
            storage,
            raws,
            all_objects,
        } = fixture(4, 700);
        let config = ApproachConfig::paper(bounds());
        for approach in [
            Approach::FlatAin1,
            Approach::Flat1fE,
            Approach::RTreeAin1,
            Approach::RTree1fE,
            Approach::Grid1fE,
            Approach::GridAin1,
        ] {
            let index = build_approach(&storage, approach, &config, &raws).unwrap();
            assert_eq!(index.name(), approach.name());
            assert!(index.data_pages() > 0);
            for seed in 0..10u64 {
                let q = sample_query(seed, &[0, 2, 3]);
                let mut expected: Vec<_> = scan_query(&q, all_objects.iter())
                    .iter()
                    .map(|o| (o.dataset, o.id))
                    .collect();
                let mut got: Vec<_> = index
                    .query(&storage, &q)
                    .unwrap()
                    .iter()
                    .map(|o| (o.dataset, o.id))
                    .collect();
                expected.sort_unstable();
                got.sort_unstable();
                got.dedup();
                assert_eq!(got, expected, "{} query {seed}", approach.name());
            }
        }
    }

    #[test]
    fn queries_never_return_unrequested_datasets() {
        let Fixture { storage, raws, .. } = fixture(3, 400);
        let config = ApproachConfig::paper(bounds());
        let index = build_approach(&storage, Approach::RTreeAin1, &config, &raws).unwrap();
        let q = sample_query(1, &[1]);
        for obj in index.query(&storage, &q).unwrap() {
            assert_eq!(obj.dataset, DatasetId(1));
        }
    }

    #[test]
    fn one_for_each_only_probes_requested_indexes() {
        let Fixture { storage, raws, .. } = fixture(4, 800);
        // Scale the grid resolution to the (small) test data so that queries
        // actually hit populated cells.
        let grid_config = GridConfig {
            cells_per_dim: 8,
            bounds: bounds(),
            build_buffer_objects: 100_000,
        };
        let grid = OneForEach::build(&storage, &GridBuilder(grid_config), &raws).unwrap();
        assert_eq!(grid.index_count(), 4);
        storage.clear_cache();
        let before = storage.stats();
        let q_one = sample_query(3, &[0]);
        grid.query(&storage, &q_one).unwrap();
        let cost_one = storage.seconds_since(&before);

        storage.clear_cache();
        let before = storage.stats();
        let q_all = sample_query(3, &[0, 1, 2, 3]);
        grid.query(&storage, &q_all).unwrap();
        let cost_all = storage.seconds_since(&before);
        assert!(
            cost_all > cost_one,
            "probing 4 indexes ({cost_all}) must cost more than probing 1 ({cost_one})"
        );
    }

    #[test]
    fn ain1_cost_is_insensitive_to_m_while_1fe_grows() {
        let Fixture { storage, raws, .. } = fixture(5, 600);
        let config = ApproachConfig::paper(bounds());
        let rtree_ain1 = build_approach(&storage, Approach::RTreeAin1, &config, &raws).unwrap();
        let rtree_1fe = build_approach(&storage, Approach::RTree1fE, &config, &raws).unwrap();

        let cost = |storage: &StorageManager, idx: &dyn MultiDatasetIndex, datasets: &[u16]| {
            let mut total = 0.0;
            for seed in 0..8u64 {
                storage.clear_cache();
                let before = storage.stats();
                idx.query(storage, &sample_query(seed, datasets)).unwrap();
                total += storage.seconds_since(&before);
            }
            total
        };
        let ain1_m1 = cost(&storage, rtree_ain1.as_ref(), &[0]);
        let ain1_m5 = cost(&storage, rtree_ain1.as_ref(), &[0, 1, 2, 3, 4]);
        let ofe_m1 = cost(&storage, rtree_1fe.as_ref(), &[0]);
        let ofe_m5 = cost(&storage, rtree_1fe.as_ref(), &[0, 1, 2, 3, 4]);
        // 1fE cost grows clearly with m; Ain1 grows much less (it reads the
        // same big structure either way, only the filtering changes).
        assert!(
            ofe_m5 > 2.0 * ofe_m1,
            "1fE should scale with m: {ofe_m1} vs {ofe_m5}"
        );
        let ain1_growth = ain1_m5 / ain1_m1;
        let ofe_growth = ofe_m5 / ofe_m1;
        assert!(
            ain1_growth < ofe_growth,
            "Ain1 growth {ain1_growth} should be below 1fE growth {ofe_growth}"
        );
    }

    #[test]
    fn every_approach_answers_every_query_kind_correctly() {
        use odyssey_geom::{scan_any_query, CountQuery, KnnQuery, PointQuery, Query, QueryId};
        let Fixture {
            storage,
            raws,
            all_objects,
        } = fixture(3, 500);
        let config = ApproachConfig::paper(bounds());
        let ds = DatasetSet::from_ids([DatasetId(0), DatasetId(2)]);
        let mut rng = ChaCha8Rng::seed_from_u64(55);
        let mut queries: Vec<Query> = Vec::new();
        for i in 0..8u32 {
            let p = Vec3::new(
                rng.gen_range(5.0..95.0),
                rng.gen_range(5.0..95.0),
                rng.gen_range(5.0..95.0),
            );
            let side = rng.gen_range(4.0..20.0);
            queries.push(
                RangeQuery::new(
                    QueryId(i),
                    Aabb::from_center_extent(p, Vec3::splat(side)),
                    ds,
                )
                .into(),
            );
            queries.push(PointQuery::new(QueryId(i), p, ds).into());
            queries.push(KnnQuery::new(QueryId(i), p, rng.gen_range(1..30), ds).into());
            queries.push(
                CountQuery::new(
                    QueryId(i),
                    Aabb::from_center_extent(p, Vec3::splat(side)),
                    ds,
                )
                .into(),
            );
        }
        for approach in [Approach::FlatAin1, Approach::RTree1fE, Approach::Grid1fE] {
            let index = build_approach(&storage, approach, &config, &raws).unwrap();
            assert!(!index.data_bounds().is_empty());
            for q in &queries {
                let got = index.execute_query(&storage, q).unwrap();
                let expected = scan_any_query(q, all_objects.iter());
                assert_eq!(got.count(), expected.count(), "{} {:?}", approach.name(), q);
                match (got.objects(), expected.objects()) {
                    (Some(g), Some(e)) => {
                        let mut g: Vec<_> = g.iter().map(|o| (o.dataset, o.id)).collect();
                        let mut e: Vec<_> = e.iter().map(|o| (o.dataset, o.id)).collect();
                        if !matches!(q, Query::KNearestNeighbors(_)) {
                            g.sort_unstable();
                            e.sort_unstable();
                        }
                        assert_eq!(g, e, "{} {:?}", approach.name(), q);
                    }
                    (None, None) => {}
                    _ => panic!("answer representation mismatch"),
                }
            }
        }
    }

    #[test]
    fn every_approach_stays_exact_after_online_inserts() {
        let Fixture {
            storage,
            raws,
            mut all_objects,
        } = fixture(3, 600);
        let config = ApproachConfig::paper(bounds());
        let mut rng = ChaCha8Rng::seed_from_u64(404);
        // Three rounds of arrivals into datasets 0 and 2, queried after each.
        let mut indexes: Vec<Box<dyn MultiDatasetIndex>> = [
            Approach::FlatAin1,
            Approach::Flat1fE,
            Approach::RTreeAin1,
            Approach::RTree1fE,
            Approach::Grid1fE,
            Approach::GridAin1,
        ]
        .iter()
        .map(|a| build_approach(&storage, *a, &config, &raws).unwrap())
        .collect();
        for round in 0..3u64 {
            for ds in [0u16, 2] {
                let arrivals: Vec<SpatialObject> = (0..40u64)
                    .map(|i| {
                        let c = Vec3::new(
                            rng.gen_range(5.0..95.0),
                            rng.gen_range(5.0..95.0),
                            rng.gen_range(5.0..95.0),
                        );
                        SpatialObject::new(
                            odyssey_geom::ObjectId(100_000 + round * 1000 + i),
                            DatasetId(ds),
                            Aabb::from_center_extent(c, Vec3::splat(0.4)),
                        )
                    })
                    .collect();
                for index in indexes.iter_mut() {
                    index.ingest(&storage, DatasetId(ds), &arrivals).unwrap();
                }
                all_objects.extend(arrivals);
            }
            for seed in 0..6u64 {
                let q = sample_query(round * 100 + seed, &[0, 1, 2]);
                let mut expected: Vec<_> = scan_query(&q, all_objects.iter())
                    .iter()
                    .map(|o| (o.dataset, o.id))
                    .collect();
                expected.sort_unstable();
                for index in &indexes {
                    let mut got: Vec<_> = index
                        .query(&storage, &q)
                        .unwrap()
                        .iter()
                        .map(|o| (o.dataset, o.id))
                        .collect();
                    got.sort_unstable();
                    got.dedup();
                    assert_eq!(got, expected, "{} after round {round}", index.name());
                }
            }
        }
    }

    #[test]
    fn ain1_ignores_arrivals_for_unknown_datasets() {
        let Fixture { storage, raws, .. } = fixture(2, 300);
        let config = ApproachConfig::paper(bounds());
        let mut index = build_approach(&storage, Approach::GridAin1, &config, &raws).unwrap();
        let before = index.data_pages();
        // Dataset 9 was never built: the arrival is ignored, like the
        // engine's unknown-dataset no-op, so cross-checks stay aligned.
        let stray = vec![SpatialObject::new(
            ObjectId(1),
            DatasetId(9),
            Aabb::from_min_max(Vec3::ZERO, Vec3::ONE),
        )];
        index.ingest(&storage, DatasetId(9), &stray).unwrap();
        assert_eq!(index.data_pages(), before);
    }

    #[test]
    fn knn_edge_cases_on_baselines() {
        use odyssey_geom::{KnnQuery, Query, QueryId};
        let Fixture { storage, raws, .. } = fixture(2, 300);
        let config = ApproachConfig::paper(bounds());
        let index = build_approach(&storage, Approach::RTreeAin1, &config, &raws).unwrap();
        let ds = DatasetSet::from_ids([DatasetId(0), DatasetId(1)]);
        // k = 0.
        let empty = index
            .execute_query(
                &storage,
                &Query::KNearestNeighbors(KnnQuery::new(QueryId(0), Vec3::splat(50.0), 0, ds)),
            )
            .unwrap();
        assert_eq!(empty.count(), 0);
        // k beyond the population returns everything of the queried datasets.
        let all = index
            .execute_query(
                &storage,
                &Query::KNearestNeighbors(KnnQuery::new(
                    QueryId(0),
                    Vec3::splat(-500.0), // far outside: forces full expansion
                    10_000,
                    ds,
                )),
            )
            .unwrap();
        assert_eq!(all.count(), 600);
    }

    #[test]
    fn approach_names_match_paper_legend() {
        assert_eq!(Approach::FlatAin1.name(), "FLAT-Ain1");
        assert_eq!(Approach::Flat1fE.name(), "FLAT-1fE");
        assert_eq!(Approach::RTreeAin1.name(), "RTree-Ain1");
        assert_eq!(Approach::Grid1fE.name(), "Grid-1fE");
    }
}
