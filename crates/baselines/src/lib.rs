//! # odyssey-baselines
//!
//! The competing approaches of the paper's evaluation, re-implemented from
//! their published descriptions:
//!
//! * [`grid`] — a static uniform **Grid** (60³ cells in the paper) with
//!   query-window extension; the cheapest index to build,
//! * [`rtree`] — an **R-Tree** bulk loaded with the STR algorithm
//!   (Leutenegger et al., ICDE '97),
//! * [`flat`] — **FLAT** (Tauheed et al., ICDE '12): STR-packed data pages, a
//!   seed index over page MBRs and neighbourhood links that let a query crawl
//!   from one seed page to all overlapping pages; slowest to build, fastest
//!   to query,
//! * [`strategy`] — the two multi-dataset strategies the paper evaluates for
//!   each index: **one-for-each** (1fE, one index per dataset) and
//!   **all-in-one** (Ain1, a single index over the union of all datasets).
//!
//! All builders read the raw dataset files through the
//! [`odyssey_storage::StorageManager`], so their indexing cost (including the
//! external-sort passes of STR-based builds) shows up in the I/O counters the
//! benchmark harness converts into simulated seconds.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod flat;
pub mod grid;
pub mod rtree;
pub mod strategy;
pub mod traits;

pub use flat::{FlatConfig, FlatIndex};
pub use grid::{GridConfig, GridIndex};
pub use rtree::{RTreeConfig, RTreeIndex};
pub use strategy::{build_approach, Approach, MultiDatasetIndex, Strategy};
pub use traits::{IndexBuilder, SpatialIndexBuild};
