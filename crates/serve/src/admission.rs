//! Per-tenant admission control: token-bucket rate limiting plus a bounded
//! per-tenant queue slice.
//!
//! Every decision is a function of the *requesting* tenant's own state — a
//! flooding tenant exhausts its own bucket and its own queue slice but can
//! never cause another tenant's request to be shed. The trade-off is that
//! total queue depth is bounded only by `tenants × max_queued_per_tenant`,
//! which is the intended isolation property for the tenant counts the
//! serving tier targets (hundreds, not millions).
//!
//! The controller is plain state; the server keeps it inside its
//! `ServeQueue`-classed lock, so all methods take `&mut self` and a caller
//! supplied clock (`now_micros`, microseconds since the server's epoch).
//! A virtual-time replay passes simulated clocks through unchanged, which
//! is what makes the admission benches deterministic.

use crate::protocol::ShedReason;
use std::collections::HashMap;

/// Tuning knobs of the per-tenant admission controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Steady-state admitted rate per tenant, in requests per second.
    pub tokens_per_sec: f64,
    /// Bucket capacity: the largest burst a tenant can submit at once
    /// after being idle.
    pub burst_tokens: f64,
    /// Maximum requests one tenant may have queued (admitted but not yet
    /// dispatched) at a time.
    pub max_queued_per_tenant: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            tokens_per_sec: 1_000.0,
            burst_tokens: 64.0,
            max_queued_per_tenant: 128,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TenantState {
    /// Remaining tokens; refilled lazily on each decision.
    tokens: f64,
    /// Clock of the last refill, microseconds since the server's epoch.
    last_refill_micros: u64,
    /// Requests admitted but not yet dispatched.
    queued: usize,
}

/// Token-bucket admission control with per-tenant bounded queues.
#[derive(Debug)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    tenants: HashMap<u16, TenantState>,
    shed_rate_limited: u64,
    shed_queue_full: u64,
}

impl AdmissionController {
    /// Creates a controller; every tenant starts with a full bucket.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionController {
            cfg,
            tenants: HashMap::new(),
            shed_rate_limited: 0,
            shed_queue_full: 0,
        }
    }

    /// The configuration this controller enforces.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Decides whether to admit one request from `tenant` at `now_micros`.
    /// On `Ok(())` the request counts against the tenant's queue slice until
    /// [`release`](Self::release) is called for it.
    pub fn try_admit(&mut self, tenant: u16, now_micros: u64) -> Result<(), ShedReason> {
        let cfg = self.cfg;
        let state = self.tenants.entry(tenant).or_insert(TenantState {
            tokens: cfg.burst_tokens,
            last_refill_micros: now_micros,
            queued: 0,
        });
        let elapsed = now_micros.saturating_sub(state.last_refill_micros);
        state.tokens = (state.tokens + elapsed as f64 * cfg.tokens_per_sec / 1_000_000.0)
            .min(cfg.burst_tokens);
        state.last_refill_micros = now_micros;
        if state.tokens < 1.0 {
            self.shed_rate_limited += 1;
            return Err(ShedReason::RateLimited);
        }
        if state.queued >= cfg.max_queued_per_tenant {
            self.shed_queue_full += 1;
            return Err(ShedReason::QueueFull);
        }
        state.tokens -= 1.0;
        state.queued += 1;
        Ok(())
    }

    /// Returns a previously admitted request's queue slot (on dispatch or
    /// on expiry before dispatch).
    pub fn release(&mut self, tenant: u16) {
        if let Some(state) = self.tenants.get_mut(&tenant) {
            state.queued = state.queued.saturating_sub(1);
        }
    }

    /// Requests currently admitted-but-undispatched for `tenant`.
    pub fn queued(&self, tenant: u16) -> usize {
        self.tenants.get(&tenant).map_or(0, |s| s.queued)
    }

    /// Total requests shed because a bucket ran dry.
    pub fn shed_rate_limited(&self) -> u64 {
        self.shed_rate_limited
    }

    /// Total requests shed because a queue slice was full.
    pub fn shed_queue_full(&self) -> u64 {
        self.shed_queue_full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64, burst: f64, queue: usize) -> AdmissionConfig {
        AdmissionConfig {
            tokens_per_sec: rate,
            burst_tokens: burst,
            max_queued_per_tenant: queue,
        }
    }

    #[test]
    fn bucket_admits_burst_then_rate_limits_and_refills() {
        let mut ctl = AdmissionController::new(cfg(10.0, 3.0, 100));
        for _ in 0..3 {
            assert_eq!(ctl.try_admit(1, 0), Ok(()));
        }
        assert_eq!(ctl.try_admit(1, 0), Err(ShedReason::RateLimited));
        // 10 tokens/sec -> one full token after 100ms.
        assert_eq!(ctl.try_admit(1, 50_000), Err(ShedReason::RateLimited));
        assert_eq!(ctl.try_admit(1, 100_000), Ok(()));
        assert_eq!(ctl.shed_rate_limited(), 2);
    }

    #[test]
    fn queue_slice_bounds_admitted_backlog_until_released() {
        let mut ctl = AdmissionController::new(cfg(1_000_000.0, 1e9, 2));
        assert_eq!(ctl.try_admit(4, 0), Ok(()));
        assert_eq!(ctl.try_admit(4, 1), Ok(()));
        assert_eq!(ctl.try_admit(4, 2), Err(ShedReason::QueueFull));
        assert_eq!(ctl.queued(4), 2);
        ctl.release(4);
        assert_eq!(ctl.queued(4), 1);
        assert_eq!(ctl.try_admit(4, 3), Ok(()));
        assert_eq!(ctl.shed_queue_full(), 1);
    }

    #[test]
    fn tenants_are_fully_isolated_under_a_flood() {
        let mut ctl = AdmissionController::new(cfg(100.0, 4.0, 4));
        // Tenant 0 floods: far beyond both its bucket and its queue slice.
        let mut floods_shed = 0;
        for i in 0..1_000u64 {
            if ctl.try_admit(0, i).is_err() {
                floods_shed += 1;
            }
        }
        assert!(floods_shed > 900, "the flood must mostly shed");
        // An innocent tenant submitting at a modest rate is never shed, no
        // matter how hard tenant 0 floods.
        for i in 0..4u64 {
            assert_eq!(ctl.try_admit(1, i * 20_000), Ok(()));
            ctl.release(1);
        }
        assert_eq!(ctl.queued(1), 0);
    }

    #[test]
    fn release_of_unknown_tenant_is_a_no_op() {
        let mut ctl = AdmissionController::new(AdmissionConfig::default());
        ctl.release(9);
        assert_eq!(ctl.queued(9), 0);
    }
}
