//! Dynamic micro-batching policy: how many pending requests to coalesce
//! into one engine batch, and where the batch must be cut to preserve
//! per-request semantics.
//!
//! The engine's batch call (`execute_ops_batch_with_threads`) runs **all
//! ingests before all queries** inside one batch. Coalescing is therefore
//! only answer-preserving if no query in a batch is followed by an ingest
//! that arrived *after* it: that ingest would be hoisted ahead of the
//! query and could change its answer relative to per-request dispatch.
//! [`batch_cut`] encodes the rule — take pending requests in arrival order
//! up to the size cap, but stop in front of the first ingest once any
//! query is already in the batch. The equivalence test in `tests/serve.rs`
//! checks the end-to-end guarantee (coalesced answers == per-request
//! answers) that this rule buys.

use odyssey_core::EngineOp;

/// Micro-batching knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// How long the dispatcher lingers after the first pending request
    /// arrives, letting more requests coalesce. `0` dispatches immediately.
    pub window_micros: u64,
    /// Hard cap on requests per engine batch (the window closes early once
    /// this many are pending).
    pub max_batch: usize,
}

impl BatchPolicy {
    /// Per-request dispatch: no window, one request per engine call. This
    /// is the baseline the micro-batching bench compares against.
    pub fn per_request() -> Self {
        BatchPolicy {
            window_micros: 0,
            max_batch: 1,
        }
    }

    /// Whether this policy ever coalesces more than one request.
    pub fn coalesces(&self) -> bool {
        self.max_batch > 1
    }
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            window_micros: 500,
            max_batch: 32,
        }
    }
}

/// Returns how many of `pending` (in arrival order) may form one engine
/// batch without changing any request's answer, given the engine's
/// ingests-first batch semantics. Always at least 1 when `pending` is
/// non-empty.
pub fn batch_cut(pending: &[&EngineOp], max_batch: usize) -> usize {
    let cap = pending.len().min(max_batch.max(1));
    let mut saw_query = false;
    for (i, op) in pending.iter().take(cap).enumerate() {
        match op {
            EngineOp::Ingest { .. } if saw_query => return i,
            EngineOp::Ingest { .. } => {}
            EngineOp::Query(_) => saw_query = true,
        }
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_geom::{Aabb, DatasetId, DatasetSet, Query, QueryId, RangeQuery, Vec3};

    fn q(id: u32) -> EngineOp {
        EngineOp::Query(Query::Range(RangeQuery::new(
            QueryId(id),
            Aabb::from_min_max(Vec3::ZERO, Vec3::ONE),
            DatasetSet(1),
        )))
    }

    fn ing() -> EngineOp {
        EngineOp::Ingest {
            dataset: DatasetId(0),
            objects: Vec::new(),
        }
    }

    #[test]
    fn cut_stops_before_an_ingest_that_follows_a_query() {
        let ops = [q(1), q(2), ing(), q(3)];
        let refs: Vec<&EngineOp> = ops.iter().collect();
        assert_eq!(
            batch_cut(&refs, 8),
            2,
            "ingest after queries starts a new batch"
        );
    }

    #[test]
    fn leading_ingests_coalesce_with_following_queries() {
        let ops = [ing(), ing(), q(1), q(2)];
        let refs: Vec<&EngineOp> = ops.iter().collect();
        assert_eq!(
            batch_cut(&refs, 8),
            4,
            "ingests-first ordering matches arrival order here"
        );
    }

    #[test]
    fn cut_respects_the_size_cap_and_is_never_zero() {
        let ops = [q(1), q(2), q(3)];
        let refs: Vec<&EngineOp> = ops.iter().collect();
        assert_eq!(batch_cut(&refs, 2), 2);
        let one = [ing()];
        let refs: Vec<&EngineOp> = one.iter().collect();
        assert_eq!(batch_cut(&refs, 1), 1);
        assert_eq!(batch_cut(&refs, 0), 1, "cap of zero still dispatches one");
    }
}
