//! Deterministic virtual-time replay of an open-loop request trace through
//! the serving tier's policies.
//!
//! The real [`Server`](crate::Server) measures wall-clock time, which makes
//! its latency distribution non-deterministic and meaningless on a 1-core
//! CI runner. The replay reproduces the same decisions — admission at
//! arrival instants, batching-window closure, the answer-preserving batch
//! cut, deadline expiry at dispatch — against a **virtual clock**, and
//! charges each batch its simulated I/O cost from the storage cost model
//! (`StorageManager::seconds_since`). Worker-pool parallelism is modeled:
//! a batch of `b` requests executed with `t` configured threads completes
//! in `cost / min(t, b)` virtual time, which is exactly why coalescing
//! beats per-request dispatch — a lone request can only keep one worker
//! busy. Engine answers are computed with one real thread so results are
//! bit-reproducible; the thread count only scales the virtual makespan.
//!
//! The same trace replayed with the same seed and configuration produces
//! identical fates and identical latency percentiles on any machine, which
//! is what lets CI gate on them.

use crate::admission::AdmissionController;
use crate::batcher::batch_cut;
use crate::protocol::ShedReason;
use crate::server::ServeConfig;
use odyssey_core::{EngineOp, OpOutcome, SpaceOdyssey};
use odyssey_storage::{StorageManager, StorageResult};
use std::collections::VecDeque;

/// One request of an open-loop trace: it arrives at its offset regardless
/// of how the previous requests fared (the load is not closed-loop).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayRequest {
    /// Arrival time, microseconds since the trace's start.
    pub offset_micros: u64,
    /// Issuing tenant.
    pub tenant: u16,
    /// Relative deadline: the request expires `deadline_micros` after its
    /// arrival. `None` never expires.
    pub deadline_micros: Option<u64>,
    /// The operation.
    pub op: EngineOp,
}

/// What happened to one replayed request.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestFate {
    /// Executed by the engine.
    Served {
        /// Virtual microseconds spent queued before dispatch.
        queue_wait_micros: u64,
        /// Virtual end-to-end latency: arrival to batch completion.
        e2e_micros: u64,
        /// Size of the coalesced batch that served it.
        batch_size: usize,
        /// The engine's answer.
        outcome: OpOutcome,
    },
    /// Refused at its arrival instant by admission control.
    Shed {
        /// What overflowed.
        reason: ShedReason,
    },
    /// Admitted but expired before its batch executed; the engine never
    /// saw it.
    Expired,
}

impl RequestFate {
    /// The end-to-end latency, for served requests.
    pub fn e2e_micros(&self) -> Option<u64> {
        match self {
            RequestFate::Served { e2e_micros, .. } => Some(*e2e_micros),
            _ => None,
        }
    }
}

struct ReplayState<'a> {
    requests: &'a [ReplayRequest],
    fates: Vec<Option<RequestFate>>,
    admission: Option<AdmissionController>,
    /// Next arrival index not yet processed.
    arrived: usize,
    /// Admitted, undispatched request indices in arrival order.
    queue: VecDeque<usize>,
}

impl ReplayState<'_> {
    /// Processes every arrival with `offset <= now`: sheds or enqueues.
    fn admit_arrivals_up_to(&mut self, now: u64) {
        while self.arrived < self.requests.len() && self.requests[self.arrived].offset_micros <= now
        {
            let i = self.arrived;
            self.arrived += 1;
            let req = &self.requests[i];
            match self.admission.as_mut() {
                Some(ctl) => match ctl.try_admit(req.tenant, req.offset_micros) {
                    Ok(()) => self.queue.push_back(i),
                    Err(reason) => self.fates[i] = Some(RequestFate::Shed { reason }),
                },
                None => self.queue.push_back(i),
            }
        }
    }
}

/// Replays `requests` (sorted by `offset_micros`) through the serving
/// policies in `cfg` against a shared engine, in virtual time. Returns one
/// fate per request, in input order.
pub fn replay(
    engine: &SpaceOdyssey,
    storage: &StorageManager,
    requests: &[ReplayRequest],
    cfg: &ServeConfig,
) -> StorageResult<Vec<RequestFate>> {
    debug_assert!(
        requests
            .windows(2)
            .all(|w| w[0].offset_micros <= w[1].offset_micros),
        "replay requires arrival-sorted requests"
    );
    let mut st = ReplayState {
        requests,
        fates: vec![None; requests.len()],
        admission: cfg.admission.map(AdmissionController::new),
        arrived: 0,
        queue: VecDeque::new(),
    };
    let mut busy_until = 0u64;
    loop {
        if st.queue.is_empty() {
            if st.arrived >= requests.len() {
                break;
            }
            // Idle: jump the clock to the next arrival.
            let next = requests[st.arrived].offset_micros;
            st.admit_arrivals_up_to(next);
            continue;
        }
        let head_arrival = requests[st.queue[0]].offset_micros;
        let start = busy_until.max(head_arrival);
        st.admit_arrivals_up_to(start);
        // The window lingers only while the size cap is unmet.
        let dispatch = if cfg.batch.window_micros == 0 || st.queue.len() >= cfg.batch.max_batch {
            start
        } else {
            start + cfg.batch.window_micros
        };
        st.admit_arrivals_up_to(dispatch);
        let pending: Vec<&EngineOp> = st.queue.iter().map(|&i| &requests[i].op).collect();
        let take = batch_cut(&pending, cfg.batch.max_batch);
        let batch_idx: Vec<usize> = st.queue.drain(..take).collect();
        if let Some(ctl) = st.admission.as_mut() {
            for &i in &batch_idx {
                ctl.release(requests[i].tenant);
            }
        }
        // Deadline check at dispatch: expired requests never reach the
        // engine and never advance the virtual clock.
        let mut admitted = Vec::with_capacity(batch_idx.len());
        for &i in &batch_idx {
            let expired = requests[i]
                .deadline_micros
                .is_some_and(|d| dispatch > requests[i].offset_micros.saturating_add(d));
            if expired {
                st.fates[i] = Some(RequestFate::Expired);
                engine.note_deadlines_expired(1);
            } else {
                admitted.push(i);
            }
        }
        if admitted.is_empty() {
            busy_until = busy_until.max(dispatch);
            continue;
        }
        let ops: Vec<EngineOp> = admitted.iter().map(|&i| requests[i].op.clone()).collect();
        let before = storage.stats();
        // One real thread: answers stay bit-reproducible. Parallelism is
        // applied to the *virtual* makespan below.
        let outcomes = engine.execute_ops_batch_with_threads(storage, &ops, 1)?;
        let cost_micros = (storage.seconds_since(&before) * 1_000_000.0) as u64;
        let workers = cfg.threads.max(1).min(ops.len()) as u64;
        let makespan = cost_micros / workers.max(1);
        let done = dispatch + makespan;
        let batch_size = ops.len();
        let mut wait_total = 0u64;
        for (&i, mut outcome) in admitted.iter().zip(outcomes) {
            let queue_wait = dispatch - requests[i].offset_micros;
            wait_total += queue_wait;
            if let OpOutcome::Query(q) = &mut outcome {
                q.queue_wait_micros = queue_wait;
                q.batch_size_served = batch_size as u64;
            }
            st.fates[i] = Some(RequestFate::Served {
                queue_wait_micros: queue_wait,
                e2e_micros: done - requests[i].offset_micros,
                batch_size,
                outcome,
            });
        }
        engine.note_queue_wait_micros(wait_total);
        engine.note_batch_served(batch_size as u64);
        busy_until = done;
    }
    // Every request is arrival-processed exactly once, so every fate is
    // filled; the fallback arm keeps the panic surface clean.
    Ok(st
        .fates
        .into_iter()
        .map(|f| f.unwrap_or(RequestFate::Expired))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::batcher::BatchPolicy;
    use odyssey_core::OdysseyConfig;
    use odyssey_geom::{
        Aabb, CountQuery, DatasetId, DatasetSet, ObjectId, Query, QueryId, SpatialObject, Vec3,
    };
    use odyssey_storage::{write_raw_dataset, StorageOptions};

    fn new_engine() -> (SpaceOdyssey, StorageManager) {
        let storage = StorageManager::new(StorageOptions::in_memory(1024));
        let bounds = Aabb::from_min_max(Vec3::ZERO, Vec3::splat(100.0));
        let objects: Vec<SpatialObject> = (0..200u64)
            .map(|i| {
                let x = (i % 100) as f64;
                SpatialObject::new(
                    ObjectId(i),
                    DatasetId(0),
                    Aabb::from_min_max(Vec3::splat(x * 0.9), Vec3::splat(x * 0.9 + 1.0)),
                )
            })
            .collect();
        let raws = vec![write_raw_dataset(&storage, DatasetId(0), &objects).expect("raw dataset")];
        let engine = SpaceOdyssey::new(OdysseyConfig::paper(bounds), raws).expect("valid config");
        (engine, storage)
    }

    fn count_req(offset: u64, tenant: u16, id: u32) -> ReplayRequest {
        ReplayRequest {
            offset_micros: offset,
            tenant,
            deadline_micros: None,
            op: EngineOp::Query(Query::Count(CountQuery::new(
                QueryId(id),
                Aabb::from_min_max(Vec3::ZERO, Vec3::splat(50.0)),
                DatasetSet::from_ids([DatasetId(0)]),
            ))),
        }
    }

    #[test]
    fn replay_is_deterministic_and_serves_everything_without_admission() {
        let reqs: Vec<ReplayRequest> = (0..40)
            .map(|i| count_req(i * 100, (i % 3) as u16, i as u32))
            .collect();
        let cfg = ServeConfig::default();
        // Fresh engine per replay: replaying mutates adaptive engine state
        // (result cache, statistics), so determinism is engine-for-engine.
        let run = || {
            let (engine, storage) = new_engine();
            replay(&engine, &storage, &reqs, &cfg).expect("replay")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same trace, same config => identical fates");
        assert!(a.iter().all(|f| matches!(f, RequestFate::Served { .. })));
    }

    #[test]
    fn batching_coalesces_and_per_request_does_not() {
        let (engine, storage) = new_engine();
        // All 8 requests arrive inside one 1ms window.
        let reqs: Vec<ReplayRequest> = (0..8).map(|i| count_req(i * 10, 0, i as u32)).collect();
        let coalesced = replay(
            &engine,
            &storage,
            &reqs,
            &ServeConfig {
                batch: BatchPolicy {
                    window_micros: 1_000,
                    max_batch: 16,
                },
                ..ServeConfig::default()
            },
        )
        .expect("replay");
        assert!(coalesced
            .iter()
            .any(|f| matches!(f, RequestFate::Served { batch_size, .. } if *batch_size > 1)));
        let singles = replay(
            &engine,
            &storage,
            &reqs,
            &ServeConfig {
                batch: BatchPolicy::per_request(),
                ..ServeConfig::default()
            },
        )
        .expect("replay");
        assert!(singles
            .iter()
            .all(|f| matches!(f, RequestFate::Served { batch_size: 1, .. })));
    }

    #[test]
    fn relative_deadlines_expire_queued_requests_deterministically() {
        let (engine, storage) = new_engine();
        let mut reqs: Vec<ReplayRequest> = (0..10).map(|i| count_req(i, 0, i as u32)).collect();
        for r in &mut reqs {
            r.deadline_micros = Some(0); // expires immediately after arrival
        }
        let cfg = ServeConfig {
            batch: BatchPolicy {
                window_micros: 5_000,
                max_batch: 64,
            },
            ..ServeConfig::default()
        };
        let fates = replay(&engine, &storage, &reqs, &cfg).expect("replay");
        // The window pushes dispatch past every deadline except possibly the
        // request arriving exactly at the dispatch instant.
        let expired = fates
            .iter()
            .filter(|f| matches!(f, RequestFate::Expired))
            .count();
        assert!(expired >= 9, "expired {expired}/10");
        assert!(engine.deadlines_expired() >= expired as u64);
    }

    #[test]
    fn flooding_tenant_sheds_while_innocent_tenant_is_served() {
        let (engine, storage) = new_engine();
        let mut reqs = Vec::new();
        // Tenant 0 floods: 300 requests in 3ms. Tenant 1 submits 10 spaced out.
        for i in 0..300u64 {
            reqs.push(count_req(i * 10, 0, i as u32));
        }
        for i in 0..10u64 {
            reqs.push(count_req(i * 300, 1, 1_000 + i as u32));
        }
        reqs.sort_by_key(|r| r.offset_micros);
        let cfg = ServeConfig {
            admission: Some(AdmissionConfig {
                tokens_per_sec: 1_000.0,
                burst_tokens: 8.0,
                max_queued_per_tenant: 16,
            }),
            ..ServeConfig::default()
        };
        let fates = replay(&engine, &storage, &reqs, &cfg).expect("replay");
        let shed_by_tenant = |t: u16| {
            reqs.iter()
                .zip(&fates)
                .filter(|(r, f)| r.tenant == t && matches!(f, RequestFate::Shed { .. }))
                .count()
        };
        assert!(shed_by_tenant(0) > 200, "the flood must mostly shed");
        assert_eq!(shed_by_tenant(1), 0, "innocent tenants are never shed");
    }
}
