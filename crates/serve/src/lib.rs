//! Serving tier of the Space Odyssey reproduction: an open-loop front-end
//! multiplexing many tenants onto one shared engine.
//!
//! The paper's engine answers one query at a time from an interactive
//! exploration loop; a deployment puts many such loops — tenants — in
//! front of one store. This crate adds the four mechanisms that makes that
//! share well:
//!
//! * **Dynamic micro-batching** ([`BatchPolicy`], [`batch_cut`]): requests
//!   arriving within a tunable window coalesce into one planned engine
//!   batch, amortizing planning and fanning the batch across the worker
//!   pool; answers are demultiplexed per request and are checksum-equal to
//!   per-request execution (the cut rule never reorders an ingest ahead of
//!   an earlier query).
//! * **Per-tenant admission control** ([`AdmissionController`]): token
//!   buckets plus bounded queue slices, decided purely per tenant — a
//!   flooding tenant sheds its own traffic with typed
//!   [`ServeError::Overloaded`] errors and cannot crowd out others.
//! * **Deadline propagation**: each [`Request`] can carry an absolute
//!   deadline; it is checked at dequeue and again between the batch's
//!   ingest and query phases, so expired work is dropped *before* it
//!   consumes engine time, with [`ServeError::DeadlineExceeded`].
//! * **Background maintenance pump**: a [`MaintenancePump`] (from
//!   `odyssey-core`) drives deferred maintenance while the front-end runs,
//!   stopped gracefully on shutdown.
//!
//! Two front-ends implement the same [`Frontend`] trait: the in-process
//! [`ServeHandle`] and the framed-TCP pair [`TcpServer`]/[`TcpClient`]
//! (no async runtime — a non-blocking poll loop and a worker pool).
//! [`replay()`] replays open-loop traces through the identical policies in
//! deterministic virtual time, which is what the latency benches and CI
//! gates run on.
//!
//! [`MaintenancePump`]: odyssey_core::MaintenancePump

#![warn(missing_docs)]

pub mod admission;
pub mod batcher;
pub mod protocol;
pub mod replay;
pub mod server;
pub mod tcp;

pub use admission::{AdmissionConfig, AdmissionController};
pub use batcher::{batch_cut, BatchPolicy};
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, Request, ServeError,
    ServeResult, ServedOutcome, ShedReason,
};
pub use replay::{replay, ReplayRequest, RequestFate};
pub use server::{Frontend, ServeConfig, ServeHandle, ServeReport, Server};
pub use tcp::{TcpClient, TcpServer};
