//! The real-time front-end: a dispatcher thread multiplexing many client
//! threads onto one shared [`SpaceOdyssey`] engine.
//!
//! # Request lifecycle
//!
//! 1. A client calls [`Frontend::submit`]. Under the `ServeQueue` lock the
//!    request is admission-checked (token bucket + queue slice, see
//!    [`AdmissionController`]) and, if admitted, appended to the pending
//!    queue with its arrival timestamp and a fresh response slot.
//! 2. The dispatcher thread wakes, optionally lingers for the batching
//!    window, then cuts an answer-preserving batch ([`batch_cut`]) off the
//!    front of the queue. Requests whose deadline passed while queued are
//!    completed with [`ServeError::DeadlineExceeded`] *before* the engine
//!    runs — they consume no engine time and mutate no engine state.
//! 3. The surviving batch goes to the engine as one
//!    `execute_ops_batch_admitted` call; the admit closure re-checks each
//!    deadline between the batch's ingest and query phases, so a request
//!    that expires while its batch peers execute is also dropped.
//! 4. Outcomes are demultiplexed back into per-request response slots, with
//!    `queue_wait_micros` / `batch_size_served` filled in, and the waiting
//!    clients wake.
//!
//! # Locking
//!
//! The queue lives in a [`LockClass::ServeQueue`] lock — the outermost
//! class in the workspace order — and the dispatcher always releases it
//! before calling into the engine, so front-end locks never interleave
//! with engine or storage locks. Response slots are `WorkCell`-classed
//! leaves.

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::batcher::{batch_cut, BatchPolicy};
use crate::protocol::{Request, ServeError, ServeResult, ServedOutcome};
use odyssey_core::{EngineOp, MaintenancePump, OpOutcome, PumpReport, SpaceOdyssey};
use odyssey_storage::sync::{Exclusive, LockClass};
use odyssey_storage::StorageManager;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Anything that can serve a [`Request`]: the in-process handle and the TCP
/// client both implement this, so tests and benches can swap transports.
pub trait Frontend {
    /// Executes one request to completion, blocking until its answer (or
    /// typed failure) is available.
    fn submit(&self, request: Request) -> ServeResult;
}

/// Serving-tier configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Micro-batching policy ([`BatchPolicy::per_request`] disables
    /// coalescing).
    pub batch: BatchPolicy,
    /// Per-tenant admission control; `None` admits everything.
    pub admission: Option<AdmissionConfig>,
    /// Worker threads per engine batch (forwarded to
    /// `execute_ops_batch_admitted`).
    pub threads: usize,
    /// When set, a [`MaintenancePump`] drives `run_maintenance` at this
    /// interval for the server's lifetime (background-maintenance engines
    /// only need this to make progress without query traffic).
    pub maintenance_interval: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch: BatchPolicy::default(),
            admission: None,
            threads: 4,
            maintenance_interval: None,
        }
    }
}

/// Counters reported by [`Server::stop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests answered with an engine outcome.
    pub served: u64,
    /// Requests shed by admission control (rate limit + queue slice).
    pub shed: u64,
    /// Requests dropped at dequeue because their deadline had passed.
    pub expired_at_dequeue: u64,
    /// Maintenance pump summary, when a pump was configured.
    pub pump: Option<PumpReport>,
}

/// One request's response rendezvous: the client blocks on `ready` until
/// the dispatcher fills `cell`.
struct ResponseSlot {
    /// `WorkCell`-classed leaf; holds the result once available.
    cell: Exclusive<Option<ServeResult>>,
    ready: Condvar,
}

impl ResponseSlot {
    fn new() -> Arc<Self> {
        Arc::new(ResponseSlot {
            cell: Exclusive::new(LockClass::WorkCell, None),
            ready: Condvar::new(),
        })
    }

    fn fill(&self, result: ServeResult) {
        let mut guard = self.cell.lock();
        *guard = Some(result);
        drop(guard);
        self.ready.notify_all();
    }

    fn take(&self) -> ServeResult {
        let guard = self.cell.lock();
        let mut guard = self.cell.wait_while(guard, &self.ready, |r| r.is_none());
        guard.take().unwrap_or_else(|| {
            // wait_while returned, so the slot is filled; this arm is
            // unreachable but keeps the panic surface clean.
            Err(ServeError::Engine("response slot drained twice".into()))
        })
    }
}

struct PendingRequest {
    tenant: u16,
    deadline_micros: Option<u64>,
    enqueued_micros: u64,
    op: EngineOp,
    slot: Arc<ResponseSlot>,
}

struct QueueState {
    pending: VecDeque<PendingRequest>,
    admission: Option<AdmissionController>,
    shutting_down: bool,
    served: u64,
    expired_at_dequeue: u64,
}

struct ServerInner {
    engine: Arc<SpaceOdyssey>,
    storage: Arc<StorageManager>,
    cfg: ServeConfig,
    /// `ServeQueue`-classed: always released before engine calls.
    queue: Exclusive<QueueState>,
    arrived: Condvar,
    start: Instant,
}

impl ServerInner {
    /// Microseconds since the server's epoch — the clock domain of request
    /// deadlines and queue-wait measurements.
    fn now_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn submit(&self, request: Request) -> ServeResult {
        let now = self.now_micros();
        let mut q = self.queue.lock();
        if q.shutting_down {
            return Err(ServeError::ShuttingDown);
        }
        if let Some(ctl) = q.admission.as_mut() {
            if let Err(reason) = ctl.try_admit(request.tenant, now) {
                return Err(ServeError::Overloaded {
                    tenant: request.tenant,
                    reason,
                });
            }
        }
        let slot = ResponseSlot::new();
        q.pending.push_back(PendingRequest {
            tenant: request.tenant,
            deadline_micros: request.deadline_micros,
            enqueued_micros: now,
            op: request.op,
            slot: Arc::clone(&slot),
        });
        drop(q);
        self.arrived.notify_all();
        slot.take()
    }

    /// Dispatcher loop body: runs until shutdown with an empty queue.
    fn dispatch_loop(&self) {
        loop {
            let mut q = self.queue.lock();
            q = self.queue.wait_while(q, &self.arrived, |s| {
                s.pending.is_empty() && !s.shutting_down
            });
            if q.pending.is_empty() {
                // Only reachable when shutting down: drain is complete.
                return;
            }
            // Linger for the batching window so concurrent submitters can
            // coalesce — unless the size cap is already reached or we are
            // draining for shutdown.
            let window = self.cfg.batch.window_micros;
            if window > 0 && q.pending.len() < self.cfg.batch.max_batch && !q.shutting_down {
                drop(q);
                std::thread::sleep(Duration::from_micros(window));
                q = self.queue.lock();
            }
            let ops: Vec<&EngineOp> = q.pending.iter().map(|p| &p.op).collect();
            let take = batch_cut(&ops, self.cfg.batch.max_batch);
            let mut batch: Vec<PendingRequest> = q.pending.drain(..take).collect();
            let now = self.now_micros();
            for req in &batch {
                if let Some(ctl) = q.admission.as_mut() {
                    ctl.release(req.tenant);
                }
            }
            // Deadline check at dequeue: expired requests answer without
            // touching the engine.
            let mut kept = Vec::with_capacity(batch.len());
            for req in batch.drain(..) {
                if req.deadline_micros.is_some_and(|d| now > d) {
                    q.expired_at_dequeue += 1;
                    self.engine.note_deadlines_expired(1);
                    req.slot
                        .fill(Err(ServeError::DeadlineExceeded { tenant: req.tenant }));
                } else {
                    kept.push(req);
                }
            }
            drop(q);
            if kept.is_empty() {
                continue;
            }
            self.execute_batch(kept, now);
        }
    }

    /// Runs one cut batch through the engine and demultiplexes the answers.
    /// Called with no locks held.
    fn execute_batch(&self, batch: Vec<PendingRequest>, dispatched_micros: u64) {
        let ops: Vec<EngineOp> = batch.iter().map(|p| p.op.clone()).collect();
        let deadlines: Vec<Option<u64>> = batch.iter().map(|p| p.deadline_micros).collect();
        let batch_size = batch.len();
        // Re-checked between the batch's ingest and query phases: a request
        // whose deadline expires mid-batch is dropped before execution (the
        // engine counts it in `deadlines_expired`).
        let admit = |i: usize| {
            deadlines
                .get(i)
                .copied()
                .flatten()
                .is_none_or(|d| self.now_micros() <= d)
        };
        let result = self.engine.execute_ops_batch_admitted(
            &self.storage,
            &ops,
            self.cfg.threads.max(1),
            admit,
        );
        match result {
            Ok(outcomes) => {
                let mut served = 0u64;
                let mut wait_total = 0u64;
                for (req, outcome) in batch.into_iter().zip(outcomes) {
                    match outcome {
                        Some(mut outcome) => {
                            let wait = dispatched_micros.saturating_sub(req.enqueued_micros);
                            if let OpOutcome::Query(q) = &mut outcome {
                                q.queue_wait_micros = wait;
                                q.batch_size_served = batch_size as u64;
                            }
                            served += 1;
                            wait_total += wait;
                            req.slot.fill(Ok(ServedOutcome {
                                outcome,
                                queue_wait_micros: wait,
                                batch_size,
                            }));
                        }
                        None => {
                            req.slot
                                .fill(Err(ServeError::DeadlineExceeded { tenant: req.tenant }));
                        }
                    }
                }
                self.engine.note_queue_wait_micros(wait_total);
                self.engine.note_batch_served(served);
                let mut q = self.queue.lock();
                q.served += served;
            }
            Err(e) => {
                let msg = e.to_string();
                for req in batch {
                    req.slot.fill(Err(ServeError::Engine(msg.clone())));
                }
            }
        }
    }
}

/// The serving tier: owns the dispatcher thread and (optionally) a
/// maintenance pump, and hands out [`ServeHandle`]s for clients.
pub struct Server {
    inner: Arc<ServerInner>,
    dispatcher: Option<JoinHandle<()>>,
    pump: Option<MaintenancePump>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("cfg", &self.inner.cfg)
            .field("running", &self.dispatcher.is_some())
            .finish()
    }
}

impl Server {
    /// Starts the dispatcher (and the maintenance pump when configured)
    /// over a shared engine and store.
    pub fn start(
        engine: Arc<SpaceOdyssey>,
        storage: Arc<StorageManager>,
        cfg: ServeConfig,
    ) -> Server {
        let inner = Arc::new(ServerInner {
            engine: Arc::clone(&engine),
            storage: Arc::clone(&storage),
            cfg,
            queue: Exclusive::new(
                LockClass::ServeQueue,
                QueueState {
                    pending: VecDeque::new(),
                    admission: cfg.admission.map(AdmissionController::new),
                    shutting_down: false,
                    served: 0,
                    expired_at_dequeue: 0,
                },
            ),
            arrived: Condvar::new(),
            start: Instant::now(),
        });
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("odyssey-serve-dispatch".into())
                .spawn(move || inner.dispatch_loop())
                .unwrap_or_else(|e| {
                    // analyzer: allow(thread spawn failure at startup is unrecoverable)
                    panic!("failed to spawn dispatcher thread: {e}")
                })
        };
        let pump = cfg
            .maintenance_interval
            .map(|interval| MaintenancePump::start(engine, storage, interval));
        Server {
            inner,
            dispatcher: Some(dispatcher),
            pump,
        }
    }

    /// A cloneable in-process client handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// The server's clock (microseconds since its epoch) — deadlines in
    /// submitted requests use this domain.
    pub fn now_micros(&self) -> u64 {
        self.inner.now_micros()
    }

    /// Stops accepting requests, drains the pending queue, joins the
    /// dispatcher and pump, and reports serving counters.
    pub fn stop(mut self) -> ServeReport {
        self.shutdown();
        let q = self.inner.queue.lock();
        let shed = q
            .admission
            .as_ref()
            .map_or(0, |ctl| ctl.shed_rate_limited() + ctl.shed_queue_full());
        let report = ServeReport {
            served: q.served,
            shed,
            expired_at_dequeue: q.expired_at_dequeue,
            pump: None,
        };
        drop(q);
        let pump = self.pump.take().map(|p| match p.stop() {
            Ok(report) => report,
            Err(_) => PumpReport {
                pumps: 0,
                panics: 1,
            },
        });
        ServeReport { pump, ..report }
    }

    fn shutdown(&mut self) {
        {
            let mut q = self.inner.queue.lock();
            q.shutting_down = true;
        }
        self.inner.arrived.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            // A dispatcher panic already answered no one; joining surfaces
            // that the thread is gone so shutdown isn't silently lossy.
            if handle.join().is_err() {
                eprintln!("serve: dispatcher thread panicked during shutdown");
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Frontend for Server {
    fn submit(&self, request: Request) -> ServeResult {
        self.inner.submit(request)
    }
}

/// Cloneable in-process client of a [`Server`]; implements [`Frontend`].
#[derive(Clone)]
pub struct ServeHandle {
    inner: Arc<ServerInner>,
}

impl std::fmt::Debug for ServeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeHandle").finish()
    }
}

impl Frontend for ServeHandle {
    fn submit(&self, request: Request) -> ServeResult {
        self.inner.submit(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odyssey_core::OdysseyConfig;
    use odyssey_geom::{
        Aabb, CountQuery, DatasetId, DatasetSet, ObjectId, Query, QueryId, SpatialObject, Vec3,
    };
    use odyssey_storage::{write_raw_dataset, StorageOptions};

    fn new_engine() -> (Arc<SpaceOdyssey>, Arc<StorageManager>) {
        let storage = Arc::new(StorageManager::new(StorageOptions::in_memory(512)));
        let bounds = Aabb::from_min_max(Vec3::ZERO, Vec3::splat(100.0));
        let config = OdysseyConfig::paper(bounds);
        let raws = vec![write_raw_dataset(&storage, DatasetId(0), &[]).expect("raw dataset")];
        let engine = Arc::new(SpaceOdyssey::new(config, raws).expect("valid config"));
        (engine, storage)
    }

    fn obj(id: u64, x: f64) -> SpatialObject {
        SpatialObject::new(
            ObjectId(id),
            DatasetId(0),
            Aabb::from_min_max(Vec3::splat(x), Vec3::splat(x + 1.0)),
        )
    }

    fn count_all(id: u32) -> Request {
        Request {
            tenant: 0,
            deadline_micros: None,
            op: EngineOp::Query(Query::Count(CountQuery::new(
                QueryId(id),
                Aabb::from_min_max(Vec3::ZERO, Vec3::splat(100.0)),
                DatasetSet::from_ids([DatasetId(0)]),
            ))),
        }
    }

    #[test]
    fn serves_an_ingest_then_queries_reflect_it() {
        let (engine, storage) = new_engine();
        let server = Server::start(engine, storage, ServeConfig::default());
        let ingest = Request {
            tenant: 1,
            deadline_micros: None,
            op: EngineOp::Ingest {
                dataset: DatasetId(0),
                objects: (0..10).map(|i| obj(i, i as f64)).collect(),
            },
        };
        let served = server.submit(ingest).expect("ingest served");
        match served.outcome {
            OpOutcome::Ingest(i) => assert_eq!(i.objects_ingested, 10),
            other => panic!("expected ingest outcome, got {other:?}"),
        }
        let served = server.submit(count_all(1)).expect("query served");
        match served.outcome {
            OpOutcome::Query(q) => {
                assert_eq!(q.count, 10);
                assert!(q.batch_size_served >= 1);
            }
            other => panic!("expected query outcome, got {other:?}"),
        }
        let report = server.stop();
        assert_eq!(report.served, 2);
        assert_eq!(report.shed, 0);
    }

    #[test]
    fn expired_deadline_is_rejected_without_engine_work() {
        let (engine, storage) = new_engine();
        let cfg = ServeConfig {
            // A long window guarantees the deadline passes while queued.
            batch: BatchPolicy {
                window_micros: 50_000,
                max_batch: 8,
            },
            ..ServeConfig::default()
        };
        let server = Server::start(Arc::clone(&engine), storage, cfg);
        let mut req = count_all(7);
        req.deadline_micros = Some(server.now_micros()); // already in the past
        let result = server.submit(req);
        assert_eq!(result, Err(ServeError::DeadlineExceeded { tenant: 0 }));
        assert_eq!(engine.queries_executed(), 0);
        assert!(engine.deadlines_expired() >= 1);
        let report = server.stop();
        assert_eq!(report.served, 0);
        assert_eq!(report.expired_at_dequeue, 1);
    }

    #[test]
    fn shutdown_rejects_new_requests_with_a_typed_error() {
        let (engine, storage) = new_engine();
        let server = Server::start(engine, storage, ServeConfig::default());
        let handle = server.handle();
        drop(server); // shuts down via Drop
        assert_eq!(handle.submit(count_all(1)), Err(ServeError::ShuttingDown));
    }

    #[test]
    fn admission_sheds_a_burst_past_the_bucket() {
        let (engine, storage) = new_engine();
        let cfg = ServeConfig {
            batch: BatchPolicy::per_request(),
            admission: Some(AdmissionConfig {
                tokens_per_sec: 1.0,
                burst_tokens: 2.0,
                max_queued_per_tenant: 64,
            }),
            ..ServeConfig::default()
        };
        let server = Server::start(engine, storage, cfg);
        let mut ok = 0;
        let mut shed = 0;
        for i in 0..6 {
            match server.submit(count_all(i)) {
                Ok(_) => ok += 1,
                Err(ServeError::Overloaded { tenant: 0, .. }) => shed += 1,
                other => panic!("unexpected result: {other:?}"),
            }
        }
        assert_eq!(ok, 2, "burst capacity admits exactly two");
        assert_eq!(shed, 4);
        let report = server.stop();
        assert_eq!(report.served, 2);
        assert_eq!(report.shed, 4);
    }
}
