//! Request/response types of the serving tier, and the framed binary codec
//! the TCP front-end speaks.
//!
//! A [`Request`] is one tenant's operation (a typed query or an ingest
//! batch) plus its service metadata: the issuing tenant and an optional
//! absolute deadline in the server's clock domain (microseconds since the
//! server's epoch). A served request answers with a [`ServedOutcome`] —
//! the engine outcome plus the queueing observability the front-end
//! measured — and a failed one with a typed [`ServeError`], never a wrong
//! answer.
//!
//! The wire form reuses `odyssey-storage`'s length-checked [`Enc`]/[`Dec`]
//! codec. One protocol decision keeps the frames small: a query's
//! [`PlanChoice`](odyssey_core::PlanChoice) audit trail is an engine-side
//! diagnostic and is **not** shipped to remote clients — a decoded response
//! carries the answer (objects/count) and every counter, with empty plans.
//! In-process clients (`Server::client`) get the full outcome.

use odyssey_core::{EngineOp, IngestOutcome, OpOutcome, QueryOutcome, RouteKind};
use odyssey_geom::{
    Aabb, CountQuery, DatasetId, DatasetSet, KnnQuery, ObjectId, PointQuery, Query, QueryId,
    RangeQuery, SpatialObject, Vec3,
};
use odyssey_storage::codec::{Dec, Enc};
use odyssey_storage::{StorageError, StorageResult};

/// One framed request from a tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The issuing tenant (admission control buckets by this).
    pub tenant: u16,
    /// Absolute deadline in microseconds since the server's epoch; a
    /// request whose deadline passes before the engine runs it is dropped
    /// with [`ServeError::DeadlineExceeded`] instead of consuming engine
    /// time. `None` never expires.
    pub deadline_micros: Option<u64>,
    /// The operation to execute.
    pub op: EngineOp,
}

/// Why admission control refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's token bucket is empty (its offered rate exceeds its
    /// configured rate limit).
    RateLimited,
    /// The tenant's queue slice is full (its requests are arriving faster
    /// than the server drains them).
    QueueFull,
}

impl ShedReason {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::RateLimited => "rate-limited",
            ShedReason::QueueFull => "queue-full",
        }
    }
}

/// A typed serving failure. Shed and expired requests receive one of these
/// — never a silently wrong or partial answer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Load-shed at admission: the *offending tenant's* bucket or queue
    /// slice overflowed. Other tenants are unaffected by design.
    Overloaded {
        /// The shed tenant.
        tenant: u16,
        /// What overflowed.
        reason: ShedReason,
    },
    /// The request's deadline passed before the engine executed it; no
    /// engine state was mutated on its behalf.
    DeadlineExceeded {
        /// The issuing tenant.
        tenant: u16,
    },
    /// The server is draining for shutdown and accepts no new requests.
    ShuttingDown,
    /// The engine failed executing the batch containing this request.
    Engine(String),
    /// A malformed frame or an I/O failure on the wire.
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { tenant, reason } => {
                write!(f, "tenant {tenant} overloaded ({})", reason.name())
            }
            ServeError::DeadlineExceeded { tenant } => {
                write!(f, "tenant {tenant} deadline exceeded before execution")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Engine(msg) => write!(f, "engine error: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A successfully served request: the engine outcome plus the queueing
/// observability measured by the front-end.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedOutcome {
    /// The engine's answer. For queries, `queue_wait_micros` and
    /// `batch_size_served` inside the [`QueryOutcome`] are filled in by the
    /// front-end at demultiplex time.
    pub outcome: OpOutcome,
    /// Microseconds the request waited between enqueue and dispatch.
    pub queue_wait_micros: u64,
    /// Number of requests coalesced into the engine batch that served this
    /// one.
    pub batch_size: usize,
}

/// The result a [`Frontend`](crate::Frontend) returns per request.
pub type ServeResult = Result<ServedOutcome, ServeError>;

fn enc_vec3(e: &mut Enc, v: Vec3) {
    e.f64(v.x);
    e.f64(v.y);
    e.f64(v.z);
}

fn dec_vec3(d: &mut Dec<'_>) -> StorageResult<Vec3> {
    Ok(Vec3::new(d.f64()?, d.f64()?, d.f64()?))
}

fn enc_aabb(e: &mut Enc, b: &Aabb) {
    enc_vec3(e, b.min);
    enc_vec3(e, b.max);
}

fn dec_aabb(d: &mut Dec<'_>) -> StorageResult<Aabb> {
    let min = dec_vec3(d)?;
    let max = dec_vec3(d)?;
    Ok(Aabb::from_min_max(min, max))
}

fn enc_object(e: &mut Enc, o: &SpatialObject) {
    e.u64(o.id.0);
    e.u16(o.dataset.0);
    enc_aabb(e, &o.mbr);
}

fn dec_object(d: &mut Dec<'_>) -> StorageResult<SpatialObject> {
    let id = ObjectId(d.u64()?);
    let dataset = DatasetId(d.u16()?);
    let mbr = dec_aabb(d)?;
    Ok(SpatialObject::new(id, dataset, mbr))
}

fn enc_query(e: &mut Enc, q: &Query) {
    match q {
        Query::Range(q) => {
            e.u8(0);
            e.u32(q.id.0);
            enc_aabb(e, &q.range);
            e.u64(q.datasets.0);
        }
        Query::Point(q) => {
            e.u8(1);
            e.u32(q.id.0);
            enc_vec3(e, q.point);
            e.u64(q.datasets.0);
        }
        Query::KNearestNeighbors(q) => {
            e.u8(2);
            e.u32(q.id.0);
            enc_vec3(e, q.point);
            e.u64(q.k as u64);
            e.u64(q.datasets.0);
        }
        Query::Count(q) => {
            e.u8(3);
            e.u32(q.id.0);
            enc_aabb(e, &q.range);
            e.u64(q.datasets.0);
        }
    }
}

fn dec_query(d: &mut Dec<'_>) -> StorageResult<Query> {
    let kind = d.u8()?;
    let id = QueryId(d.u32()?);
    Ok(match kind {
        0 => {
            let range = dec_aabb(d)?;
            Query::Range(RangeQuery::new(id, range, DatasetSet(d.u64()?)))
        }
        1 => {
            let point = dec_vec3(d)?;
            Query::Point(PointQuery::new(id, point, DatasetSet(d.u64()?)))
        }
        2 => {
            let point = dec_vec3(d)?;
            let k = d.u64()? as usize;
            Query::KNearestNeighbors(KnnQuery::new(id, point, k, DatasetSet(d.u64()?)))
        }
        3 => {
            let range = dec_aabb(d)?;
            Query::Count(CountQuery::new(id, range, DatasetSet(d.u64()?)))
        }
        other => {
            return Err(StorageError::Corrupt(format!(
                "request frame: unknown query kind {other}"
            )))
        }
    })
}

/// Serializes a request into a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut e = Enc::new();
    e.u16(req.tenant);
    e.opt_u64(req.deadline_micros);
    match &req.op {
        EngineOp::Query(q) => {
            e.u8(0);
            enc_query(&mut e, q);
        }
        EngineOp::Ingest { dataset, objects } => {
            e.u8(1);
            e.u16(dataset.0);
            e.len(objects.len());
            for o in objects {
                enc_object(&mut e, o);
            }
        }
    }
    e.into_bytes()
}

/// Parses a request frame payload.
pub fn decode_request(bytes: &[u8]) -> StorageResult<Request> {
    let mut d = Dec::new(bytes);
    let tenant = d.u16()?;
    let deadline_micros = d.opt_u64()?;
    let op = match d.u8()? {
        0 => EngineOp::Query(dec_query(&mut d)?),
        1 => {
            let dataset = DatasetId(d.u16()?);
            let n = d.len()?;
            let mut objects = Vec::with_capacity(n);
            for _ in 0..n {
                objects.push(dec_object(&mut d)?);
            }
            EngineOp::Ingest { dataset, objects }
        }
        other => {
            return Err(StorageError::Corrupt(format!(
                "request frame: unknown op tag {other}"
            )))
        }
    };
    d.finish()?;
    Ok(Request {
        tenant,
        deadline_micros,
        op,
    })
}

fn enc_query_outcome(e: &mut Enc, o: &QueryOutcome) {
    e.len(o.objects.len());
    for obj in &o.objects {
        enc_object(e, obj);
    }
    e.u64(o.count);
    e.u64(o.partitions_refined as u64);
    e.u64(o.partitions_from_merge_file as u64);
    e.u64(o.partitions_from_datasets as u64);
    e.u64(o.partitions_counted_from_metadata as u64);
    e.bool(o.merge_performed);
    e.u64(o.stale_merge_repairs as u64);
    e.bool(o.stale_merge_bypassed);
    e.u64(o.compactions_performed as u64);
    e.u64(o.cache_hits);
    e.u64(o.cache_misses);
    e.u64(o.cache_partial_reuses);
    e.u64(o.rows_skipped_by_early_exit);
    e.u64(o.maintenance_jobs_waited);
    e.u64(o.queue_wait_micros);
    e.u64(o.batch_size_served);
}

fn dec_query_outcome(d: &mut Dec<'_>) -> StorageResult<QueryOutcome> {
    let n = d.len()?;
    let mut objects = Vec::with_capacity(n);
    for _ in 0..n {
        objects.push(dec_object(d)?);
    }
    Ok(QueryOutcome {
        objects,
        count: d.u64()?,
        // Plans (and the merge route) are engine-side audit state, not part
        // of the wire answer; see the module docs.
        plans: Vec::new(),
        route: RouteKind::None,
        partitions_refined: d.u64()? as usize,
        partitions_from_merge_file: d.u64()? as usize,
        partitions_from_datasets: d.u64()? as usize,
        partitions_counted_from_metadata: d.u64()? as usize,
        merge_performed: d.bool()?,
        stale_merge_repairs: d.u64()? as usize,
        stale_merge_bypassed: d.bool()?,
        compactions_performed: d.u64()? as usize,
        cache_hits: d.u64()?,
        cache_misses: d.u64()?,
        cache_partial_reuses: d.u64()?,
        rows_skipped_by_early_exit: d.u64()?,
        maintenance_jobs_waited: d.u64()?,
        queue_wait_micros: d.u64()?,
        batch_size_served: d.u64()?,
    })
}

fn enc_ingest_outcome(e: &mut Enc, o: &IngestOutcome) {
    e.u16(o.dataset.0);
    e.u64(o.objects_ingested as u64);
    e.u64(o.partitions_split as u64);
    e.u64(o.partitions_created as u64);
    e.u64(o.merge_files_stale as u64);
    e.bool(o.compaction_performed);
    e.u64(o.pages_reclaimed);
}

fn dec_ingest_outcome(d: &mut Dec<'_>) -> StorageResult<IngestOutcome> {
    Ok(IngestOutcome {
        dataset: DatasetId(d.u16()?),
        objects_ingested: d.u64()? as usize,
        partitions_split: d.u64()? as usize,
        partitions_created: d.u64()? as usize,
        merge_files_stale: d.u64()? as usize,
        compaction_performed: d.bool()?,
        pages_reclaimed: d.u64()?,
    })
}

/// Serializes a per-request result into a frame payload.
pub fn encode_response(resp: &ServeResult) -> Vec<u8> {
    let mut e = Enc::new();
    match resp {
        Ok(served) => {
            e.u8(0);
            e.u64(served.queue_wait_micros);
            e.u64(served.batch_size as u64);
            match &served.outcome {
                OpOutcome::Query(q) => {
                    e.u8(0);
                    enc_query_outcome(&mut e, q);
                }
                OpOutcome::Ingest(i) => {
                    e.u8(1);
                    enc_ingest_outcome(&mut e, i);
                }
            }
        }
        Err(ServeError::Overloaded { tenant, reason }) => {
            e.u8(1);
            e.u16(*tenant);
            e.u8(match reason {
                ShedReason::RateLimited => 0,
                ShedReason::QueueFull => 1,
            });
        }
        Err(ServeError::DeadlineExceeded { tenant }) => {
            e.u8(2);
            e.u16(*tenant);
        }
        Err(ServeError::ShuttingDown) => e.u8(3),
        Err(ServeError::Engine(msg)) => {
            e.u8(4);
            e.str(msg);
        }
        Err(ServeError::Protocol(msg)) => {
            e.u8(5);
            e.str(msg);
        }
    }
    e.into_bytes()
}

/// Parses a response frame payload.
pub fn decode_response(bytes: &[u8]) -> StorageResult<ServeResult> {
    let mut d = Dec::new(bytes);
    let resp = match d.u8()? {
        0 => {
            let queue_wait_micros = d.u64()?;
            let batch_size = d.u64()? as usize;
            let outcome = match d.u8()? {
                0 => OpOutcome::Query(dec_query_outcome(&mut d)?),
                1 => OpOutcome::Ingest(dec_ingest_outcome(&mut d)?),
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "response frame: unknown outcome tag {other}"
                    )))
                }
            };
            Ok(ServedOutcome {
                outcome,
                queue_wait_micros,
                batch_size,
            })
        }
        1 => {
            let tenant = d.u16()?;
            let reason = match d.u8()? {
                0 => ShedReason::RateLimited,
                1 => ShedReason::QueueFull,
                other => {
                    return Err(StorageError::Corrupt(format!(
                        "response frame: unknown shed reason {other}"
                    )))
                }
            };
            Err(ServeError::Overloaded { tenant, reason })
        }
        2 => Err(ServeError::DeadlineExceeded { tenant: d.u16()? }),
        3 => Err(ServeError::ShuttingDown),
        4 => Err(ServeError::Engine(d.str()?)),
        5 => Err(ServeError::Protocol(d.str()?)),
        other => {
            return Err(StorageError::Corrupt(format!(
                "response frame: unknown result tag {other}"
            )))
        }
    };
    d.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_objects() -> Vec<SpatialObject> {
        (0..3u64)
            .map(|i| {
                SpatialObject::new(
                    ObjectId(1000 + i),
                    DatasetId(2),
                    Aabb::from_min_max(
                        Vec3::new(i as f64, 0.5, -1.0),
                        Vec3::new(i as f64 + 1.0, 2.5, 3.0),
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn requests_roundtrip_for_every_query_kind_and_ingest() {
        let ds = DatasetSet::from_ids([DatasetId(0), DatasetId(2)]);
        let box_ = Aabb::from_min_max(Vec3::ZERO, Vec3::splat(4.0));
        let reqs = vec![
            Request {
                tenant: 7,
                deadline_micros: Some(12_345),
                op: EngineOp::Query(Query::Range(RangeQuery::new(QueryId(1), box_, ds))),
            },
            Request {
                tenant: 0,
                deadline_micros: None,
                op: EngineOp::Query(Query::Point(PointQuery::new(
                    QueryId(2),
                    Vec3::splat(1.5),
                    ds,
                ))),
            },
            Request {
                tenant: 65_535,
                deadline_micros: Some(u64::MAX / 2),
                op: EngineOp::Query(Query::KNearestNeighbors(KnnQuery::new(
                    QueryId(3),
                    Vec3::splat(2.0),
                    9,
                    ds,
                ))),
            },
            Request {
                tenant: 3,
                deadline_micros: None,
                op: EngineOp::Query(Query::Count(CountQuery::new(QueryId(4), box_, ds))),
            },
            Request {
                tenant: 3,
                deadline_micros: Some(1),
                op: EngineOp::Ingest {
                    dataset: DatasetId(2),
                    objects: sample_objects(),
                },
            },
        ];
        for req in &reqs {
            let bytes = encode_request(req);
            assert_eq!(&decode_request(&bytes).unwrap(), req);
        }
        assert!(decode_request(&[9, 9]).is_err());
        let mut extra = encode_request(&reqs[0]);
        extra.push(0);
        assert!(decode_request(&extra).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn responses_roundtrip_with_plans_documented_as_dropped() {
        let served = ServedOutcome {
            outcome: OpOutcome::Query(QueryOutcome {
                objects: sample_objects(),
                count: 3,
                plans: Vec::new(),
                route: RouteKind::None,
                partitions_refined: 2,
                partitions_from_merge_file: 1,
                partitions_from_datasets: 4,
                partitions_counted_from_metadata: 0,
                merge_performed: true,
                stale_merge_repairs: 1,
                stale_merge_bypassed: false,
                compactions_performed: 0,
                cache_hits: 1,
                cache_misses: 0,
                cache_partial_reuses: 0,
                rows_skipped_by_early_exit: 17,
                maintenance_jobs_waited: 2,
                queue_wait_micros: 440,
                batch_size_served: 8,
            }),
            queue_wait_micros: 440,
            batch_size: 8,
        };
        let cases: Vec<ServeResult> = vec![
            Ok(served),
            Err(ServeError::Overloaded {
                tenant: 5,
                reason: ShedReason::RateLimited,
            }),
            Err(ServeError::Overloaded {
                tenant: 5,
                reason: ShedReason::QueueFull,
            }),
            Err(ServeError::DeadlineExceeded { tenant: 1 }),
            Err(ServeError::ShuttingDown),
            Err(ServeError::Engine("boom".into())),
            Err(ServeError::Protocol("bad frame".into())),
        ];
        for case in &cases {
            let bytes = encode_response(case);
            assert_eq!(&decode_response(&bytes).unwrap(), case);
        }
        assert!(decode_response(&[42]).is_err());
    }
}
