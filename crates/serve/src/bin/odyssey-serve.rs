//! Self-driving demo of the serving tier over real TCP loopback.
//!
//! Seeds an in-memory store from the synthetic brain model, starts the
//! dispatcher (micro-batching + admission control + maintenance pump) and a
//! framed-TCP front-end on loopback, then drives it with several concurrent
//! client connections — including one deliberately flooding tenant — and
//! prints per-tenant latency percentiles and shed counts.
//!
//! ```text
//! odyssey-serve [--requests N] [--clients N] [--port P] [--window-micros W]
//! ```

use odyssey_core::{EngineOp, OdysseyConfig, SpaceOdyssey};
use odyssey_datagen::{BrainModel, DatasetSpec};
use odyssey_geom::{Aabb, CountQuery, DatasetId, DatasetSet, Query, QueryId, Vec3};
use odyssey_serve::{
    AdmissionConfig, BatchPolicy, Frontend, Request, ServeConfig, ServeError, Server, TcpClient,
    TcpServer,
};
use odyssey_storage::{write_raw_dataset, StorageManager, StorageOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args(Vec<String>);

impl Args {
    fn get_usize(&self, flag: &str, default: usize) -> usize {
        self.0
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.0.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    if args.0.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "odyssey-serve: serving-tier demo over TCP loopback\n\
             \n\
               --requests N        requests per well-behaved client (default 60)\n\
               --clients N         well-behaved client connections (default 4)\n\
               --port P            listen port (default 0 = ephemeral)\n\
               --window-micros W   batching window (default 400)"
        );
        return;
    }
    let requests = args.get_usize("--requests", 60);
    let clients = args.get_usize("--clients", 4);
    let port = args.get_usize("--port", 0);
    let window = args.get_usize("--window-micros", 400) as u64;

    // Engine seeded from the synthetic brain model.
    let spec = DatasetSpec::with_size(4, 3_000, 17);
    let model = BrainModel::new(spec);
    let storage = Arc::new(StorageManager::new(StorageOptions::in_memory(2_048)));
    let raws: Vec<_> = model
        .generate_all()
        .iter()
        .enumerate()
        .map(|(i, objs)| {
            write_raw_dataset(&storage, DatasetId(i as u16), objs).expect("raw dataset")
        })
        .collect();
    let config = OdysseyConfig::paper(model.bounds()).with_background_maintenance();
    let engine = Arc::new(SpaceOdyssey::new(config, raws).expect("valid config"));

    let serve_cfg = ServeConfig {
        batch: BatchPolicy {
            window_micros: window,
            max_batch: 32,
        },
        admission: Some(AdmissionConfig {
            tokens_per_sec: 800.0,
            burst_tokens: 16.0,
            max_queued_per_tenant: 64,
        }),
        threads: 4,
        maintenance_interval: Some(Duration::from_millis(5)),
    };
    let server = Server::start(Arc::clone(&engine), Arc::clone(&storage), serve_cfg);
    let tcp = TcpServer::start(server.handle(), ("127.0.0.1", port as u16), 8).expect("bind");
    let addr = tcp.local_addr();
    println!("serving on {addr} (window {window}us, {clients} clients + 1 flooder)");

    let bounds = model.bounds();
    let extent = bounds.extent();
    let query_for = move |tenant: u16, i: usize| {
        let t = ((tenant as usize * 131 + i * 17) % 97) as f64 / 97.0;
        let lo = Vec3::new(
            bounds.min.x + extent.x * 0.6 * t,
            bounds.min.y + extent.y * 0.6 * ((t * 3.0) % 1.0),
            bounds.min.z,
        );
        let hi = lo + extent * 0.25;
        Request {
            tenant,
            deadline_micros: None,
            op: EngineOp::Query(Query::Count(CountQuery::new(
                QueryId(((tenant as u32) << 16) | i as u32),
                Aabb::from_min_max(lo, hi),
                DatasetSet::from_ids([DatasetId((i % 4) as u16)]),
            ))),
        }
    };

    // Well-behaved tenants: `clients` connections pacing their requests.
    let started = Instant::now();
    let mut handles = Vec::new();
    for tenant in 1..=clients as u16 {
        handles.push(std::thread::spawn(move || {
            let client = TcpClient::connect(addr).expect("connect");
            let mut latencies = Vec::with_capacity(requests);
            let mut shed = 0u64;
            for i in 0..requests {
                let begin = Instant::now();
                match client.submit(query_for(tenant, i)) {
                    Ok(_) => latencies.push(begin.elapsed().as_secs_f64() * 1e3),
                    Err(ServeError::Overloaded { .. }) => shed += 1,
                    Err(e) => panic!("tenant {tenant}: {e}"),
                }
                std::thread::sleep(Duration::from_micros(800));
            }
            (tenant, latencies, shed)
        }));
    }
    // Tenant 0 floods with no pacing over several parallel connections, so
    // its offered rate clears its token bucket and admission sheds it.
    let flood_conns = 6;
    let flooders: Vec<_> = (0..flood_conns)
        .map(|c| {
            std::thread::spawn(move || {
                let client = TcpClient::connect(addr).expect("connect");
                let mut ok = 0u64;
                let mut shed = 0u64;
                for i in 0..requests * 4 {
                    match client.submit(query_for(0, c * 10_000 + i)) {
                        Ok(_) => ok += 1,
                        Err(ServeError::Overloaded { .. }) => shed += 1,
                        Err(e) => panic!("flooder: {e}"),
                    }
                }
                (ok, shed)
            })
        })
        .collect();

    for handle in handles {
        let (tenant, mut lat, shed) = handle.join().expect("client thread");
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "tenant {tenant}: served {:3}  shed {shed:3}  p50 {:7.3}ms  p99 {:7.3}ms",
            lat.len(),
            percentile(&lat, 50.0),
            percentile(&lat, 99.0),
        );
    }
    let (mut flood_ok, mut flood_shed) = (0u64, 0u64);
    for flooder in flooders {
        let (ok, shed) = flooder.join().expect("flooder thread");
        flood_ok += ok;
        flood_shed += shed;
    }
    println!("tenant 0 (flood): served {flood_ok}  shed {flood_shed}");

    tcp.stop();
    let report = server.stop();
    println!(
        "drained in {:.1}ms: served {} shed {} expired {} pump {:?}",
        started.elapsed().as_secs_f64() * 1e3,
        report.served,
        report.shed,
        report.expired_at_dequeue,
        report.pump,
    );
    println!(
        "engine: queue-wait total {}us over {} batched ops, {} deadline drops",
        engine.queue_wait_micros_total(),
        engine.batch_ops_served(),
        engine.deadlines_expired(),
    );
}
