//! A hand-rolled non-blocking TCP transport over the in-process serving
//! tier — no async runtime, just `std::net` in non-blocking mode, one poll
//! thread and a small worker pool.
//!
//! # Wire format
//!
//! Every message (both directions) is one frame:
//!
//! ```text
//! [u32 LE: payload length N] [N bytes: u64 LE request id, then body]
//! ```
//!
//! Request bodies are [`encode_request`] payloads, response bodies
//! [`encode_response`] payloads, and the response echoes its request's id.
//! A client keeps **one request in flight per connection** (the blocking
//! [`TcpClient`] enforces this); tenants wanting concurrency open several
//! connections, which is also what lets the dispatcher's batching window
//! see concurrent requests.
//!
//! # Threads
//!
//! The poll thread accepts connections and reassembles request frames from
//! non-blocking reads; complete frames become jobs on a `ServeQueue`-classed
//! job queue (popped-then-released before any engine work — the pop and the
//! in-process submit never hold it together). Workers execute jobs through
//! the shared [`ServeHandle`] — blocking in the dispatcher's batching
//! window like any in-process client — and write the response frame back
//! under the connection's `WorkCell`-classed writer lock, retrying
//! `WouldBlock` (non-blocking mode is a property of the socket, shared
//! with its clone on the poll thread, so writes can be partial).

use crate::protocol::{
    decode_request, decode_response, encode_request, encode_response, Request, ServeError,
    ServeResult,
};
use crate::server::{Frontend, ServeHandle};
use odyssey_storage::sync::{Exclusive, LockClass};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::Duration;

const FRAME_HEADER: usize = 4;
const FRAME_ID: usize = 8;
/// Upper bound on one frame's payload; a header past this is a protocol
/// violation (or desynchronized framing) and drops the connection.
const MAX_FRAME: usize = 64 << 20;
/// Poll-thread sleep when every socket is idle.
const IDLE_POLL: Duration = Duration::from_micros(500);

fn frame(id: u64, body: &[u8]) -> Vec<u8> {
    let n = FRAME_ID + body.len();
    let mut out = Vec::with_capacity(FRAME_HEADER + n);
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Writes `bytes` to a socket that may be in non-blocking mode, retrying
/// `WouldBlock` until everything is out.
fn write_all_retry(stream: &mut TcpStream, mut bytes: &[u8]) -> std::io::Result<()> {
    while !bytes.is_empty() {
        match stream.write(bytes) {
            Ok(0) => return Err(ErrorKind::WriteZero.into()),
            Ok(n) => bytes = &bytes[n..],
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(50));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

struct Job {
    id: u64,
    payload: Vec<u8>,
    writer: Arc<Exclusive<TcpStream>>,
}

struct JobQueue {
    jobs: Exclusive<VecDeque<Job>>,
    ready: Condvar,
    stop: AtomicBool,
    /// Responses that could not be written back (client hung up mid-reply).
    dropped_replies: AtomicU64,
}

struct Connection {
    stream: TcpStream,
    /// Cloned handle of the same socket, used by workers for responses.
    writer: Arc<Exclusive<TcpStream>>,
    buf: Vec<u8>,
}

/// The TCP front-end: owns the listener, the poll thread and the worker
/// pool, all serving one [`ServeHandle`].
pub struct TcpServer {
    local_addr: SocketAddr,
    queue: Arc<JobQueue>,
    poll: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TcpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpServer")
            .field("local_addr", &self.local_addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts serving
    /// `handle` with `workers` response threads.
    pub fn start<A: ToSocketAddrs>(
        handle: ServeHandle,
        addr: A,
        workers: usize,
    ) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let queue = Arc::new(JobQueue {
            jobs: Exclusive::new(LockClass::ServeQueue, VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
            dropped_replies: AtomicU64::new(0),
        });
        let poll = {
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name("odyssey-serve-poll".into())
                .spawn(move || poll_loop(listener, &queue))?
        };
        let workers = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let handle = handle.clone();
                std::thread::Builder::new()
                    .name(format!("odyssey-serve-worker-{i}"))
                    .spawn(move || worker_loop(&queue, &handle))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(TcpServer {
            local_addr,
            queue,
            poll: Some(poll),
            workers,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Responses dropped because the client hung up before the reply could
    /// be written. Nonzero values are client-side churn, not server faults,
    /// but a monotonically climbing count under a stable client population
    /// points at reply-path I/O trouble.
    pub fn dropped_replies(&self) -> u64 {
        self.queue.dropped_replies.load(Ordering::Relaxed)
    }

    /// Stops the poll thread and workers. In-flight jobs finish; unread
    /// sockets are dropped.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.queue.stop.store(true, Ordering::Release);
        self.queue.ready.notify_all();
        if let Some(poll) = self.poll.take() {
            if poll.join().is_err() {
                eprintln!("tcp server: poll thread panicked during shutdown");
            }
        }
        for worker in self.workers.drain(..) {
            if worker.join().is_err() {
                eprintln!("tcp server: worker thread panicked during shutdown");
            }
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Extracts every complete frame from `buf`, returning `(id, body)` pairs
/// and leaving any partial tail in place. `None` means the framing is
/// corrupt and the connection must be dropped.
fn drain_frames(buf: &mut Vec<u8>) -> Option<Vec<(u64, Vec<u8>)>> {
    let mut frames = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &buf[offset..];
        if rest.len() < FRAME_HEADER {
            break;
        }
        let n = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if !(FRAME_ID..=MAX_FRAME).contains(&n) {
            return None;
        }
        if rest.len() < FRAME_HEADER + n {
            break;
        }
        let body = &rest[FRAME_HEADER..FRAME_HEADER + n];
        let id = u64::from_le_bytes([
            body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
        ]);
        frames.push((id, body[FRAME_ID..].to_vec()));
        offset += FRAME_HEADER + n;
    }
    buf.drain(..offset);
    Some(frames)
}

fn poll_loop(listener: TcpListener, queue: &JobQueue) {
    let mut conns: Vec<Connection> = Vec::new();
    let mut scratch = [0u8; 16 * 1024];
    while !queue.stop.load(Ordering::Acquire) {
        let mut progressed = false;
        // Accept every pending connection.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Accepted sockets do NOT inherit the listener's
                    // non-blocking mode; without this the read pump blocks
                    // on the first idle socket.
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // try_clone shares the socket (and its non-blocking
                    // mode); workers use the clone for responses.
                    if let Ok(clone) = stream.try_clone() {
                        conns.push(Connection {
                            stream,
                            writer: Arc::new(Exclusive::new(LockClass::WorkCell, clone)),
                            buf: Vec::new(),
                        });
                        progressed = true;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        // Pump every connection's read side.
        let mut i = 0;
        while i < conns.len() {
            let mut dead = false;
            loop {
                match conns[i].stream.read(&mut scratch) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        progressed = true;
                        conns[i].buf.extend_from_slice(&scratch[..n]);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead {
                match drain_frames(&mut conns[i].buf) {
                    Some(frames) => {
                        if !frames.is_empty() {
                            let mut jobs = queue.jobs.lock();
                            for (id, payload) in frames {
                                jobs.push_back(Job {
                                    id,
                                    payload,
                                    writer: Arc::clone(&conns[i].writer),
                                });
                            }
                            drop(jobs);
                            queue.ready.notify_all();
                        }
                    }
                    None => dead = true, // corrupt framing
                }
            }
            if dead {
                conns.swap_remove(i);
            } else {
                i += 1;
            }
        }
        if !progressed {
            std::thread::sleep(IDLE_POLL);
        }
    }
}

fn worker_loop(queue: &JobQueue, handle: &ServeHandle) {
    loop {
        // Pop under the ServeQueue-classed lock, then release it before any
        // serving work (the in-process submit takes its own ServeQueue lock).
        let job = {
            let guard = queue.jobs.lock();
            let mut guard = queue.jobs.wait_while(guard, &queue.ready, |jobs| {
                jobs.is_empty() && !queue.stop.load(Ordering::Acquire)
            });
            match guard.pop_front() {
                Some(job) => job,
                None => return, // stopped with an empty queue
            }
        };
        let response: ServeResult = match decode_request(&job.payload) {
            Ok(request) => handle.submit(request),
            Err(e) => Err(ServeError::Protocol(e.to_string())),
        };
        let bytes = frame(job.id, &encode_response(&response));
        let mut writer = job.writer.lock();
        // A send failure means the client hung up; there is no one left to
        // answer, but the drop is counted so operators can see reply-path
        // trouble (see [`TcpServer::dropped_replies`]).
        if write_all_retry(&mut writer, &bytes).is_err() {
            queue.dropped_replies.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Blocking TCP client of a [`TcpServer`]; implements [`Frontend`] with
/// one request in flight at a time (open more clients for concurrency).
pub struct TcpClient {
    stream: Exclusive<TcpStream>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient").finish()
    }
}

impl TcpClient {
    /// Connects to a serving-tier address.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            stream: Exclusive::new(LockClass::WorkCell, stream),
            next_id: AtomicU64::new(1),
        })
    }

    fn roundtrip(&self, request: &Request) -> Result<ServeResult, ServeError> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let bytes = frame(id, &encode_request(request));
        let proto = |e: &dyn std::fmt::Display| ServeError::Protocol(e.to_string());
        let mut stream = self.stream.lock();
        stream.write_all(&bytes).map_err(|e| proto(&e))?;
        let mut header = [0u8; FRAME_HEADER];
        stream.read_exact(&mut header).map_err(|e| proto(&e))?;
        let n = u32::from_le_bytes(header) as usize;
        if !(FRAME_ID..=MAX_FRAME).contains(&n) {
            return Err(ServeError::Protocol(format!(
                "bad response frame length {n}"
            )));
        }
        let mut body = vec![0u8; n];
        stream.read_exact(&mut body).map_err(|e| proto(&e))?;
        drop(stream);
        let mut id_bytes = [0u8; FRAME_ID];
        id_bytes.copy_from_slice(&body[..FRAME_ID]);
        let got_id = u64::from_le_bytes(id_bytes);
        if got_id != id {
            return Err(ServeError::Protocol(format!(
                "response id {got_id} does not match request id {id}"
            )));
        }
        decode_response(&body[FRAME_ID..]).map_err(|e| proto(&e))
    }
}

impl Frontend for TcpClient {
    fn submit(&self, request: Request) -> ServeResult {
        match self.roundtrip(&request) {
            Ok(result) => result,
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServeConfig, Server};
    use odyssey_core::{EngineOp, OdysseyConfig, OpOutcome, SpaceOdyssey};
    use odyssey_geom::{
        Aabb, CountQuery, DatasetId, DatasetSet, ObjectId, Query, QueryId, SpatialObject, Vec3,
    };
    use odyssey_storage::{write_raw_dataset, StorageManager, StorageOptions};

    #[test]
    fn frames_reassemble_across_partial_reads() {
        let whole = frame(42, b"hello");
        let mut buf = Vec::new();
        for chunk in whole.chunks(3) {
            buf.extend_from_slice(chunk);
        }
        let frames = drain_frames(&mut buf).expect("valid framing");
        assert_eq!(frames, vec![(42, b"hello".to_vec())]);
        assert!(buf.is_empty());

        let mut partial = frame(1, b"abc");
        partial.pop();
        let mut buf = partial.clone();
        assert_eq!(drain_frames(&mut buf), Some(Vec::new()));
        assert_eq!(buf, partial, "partial frame stays buffered");

        let mut corrupt = vec![0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0];
        assert_eq!(drain_frames(&mut corrupt), None);
    }

    #[test]
    fn tcp_roundtrip_serves_ingest_and_query() {
        let storage = Arc::new(StorageManager::new(StorageOptions::in_memory(512)));
        let bounds = Aabb::from_min_max(Vec3::ZERO, Vec3::splat(100.0));
        let raws = vec![write_raw_dataset(&storage, DatasetId(0), &[]).expect("raw dataset")];
        let engine =
            Arc::new(SpaceOdyssey::new(OdysseyConfig::paper(bounds), raws).expect("valid config"));
        let server = Server::start(engine, storage, ServeConfig::default());
        let tcp = TcpServer::start(server.handle(), "127.0.0.1:0", 2).expect("bind");
        let client = TcpClient::connect(tcp.local_addr()).expect("connect");

        let objects: Vec<SpatialObject> = (0..20u64)
            .map(|i| {
                SpatialObject::new(
                    ObjectId(i),
                    DatasetId(0),
                    Aabb::from_min_max(Vec3::splat(i as f64), Vec3::splat(i as f64 + 1.0)),
                )
            })
            .collect();
        let served = client
            .submit(Request {
                tenant: 2,
                deadline_micros: None,
                op: EngineOp::Ingest {
                    dataset: DatasetId(0),
                    objects,
                },
            })
            .expect("ingest over tcp");
        assert!(matches!(served.outcome, OpOutcome::Ingest(ref i) if i.objects_ingested == 20));

        let served = client
            .submit(Request {
                tenant: 2,
                deadline_micros: None,
                op: EngineOp::Query(Query::Count(CountQuery::new(
                    QueryId(1),
                    Aabb::from_min_max(Vec3::ZERO, Vec3::splat(100.0)),
                    DatasetSet::from_ids([DatasetId(0)]),
                ))),
            })
            .expect("query over tcp");
        assert!(matches!(served.outcome, OpOutcome::Query(ref q) if q.count == 20));
        tcp.stop();
        server.stop();
    }
}
