//! Demonstrates the second half of Space Odyssey's adaptation: merging the
//! partitions of dataset combinations that are frequently queried together,
//! routing later queries to the merge files, and evicting merge files under a
//! space budget.
//!
//! ```text
//! cargo run --release --example adaptive_merging
//! ```

use space_odyssey::core::RouteKind;
use space_odyssey::prelude::*;
use space_odyssey::storage::write_raw_dataset;

fn run(label: &str, config: OdysseyConfig) {
    let spec = DatasetSpec {
        num_datasets: 6,
        objects_per_dataset: 6_000,
        ..Default::default()
    };
    let model = BrainModel::new(spec);
    let bounds = model.bounds();
    let storage = StorageManager::new(StorageOptions::in_memory(256));
    let raws: Vec<_> = model
        .generate_all()
        .iter()
        .enumerate()
        .map(|(i, objects)| {
            write_raw_dataset(&storage, DatasetId(i as u16), objects).expect("raw write")
        })
        .collect();
    let odyssey = SpaceOdyssey::new(config, raws).expect("valid configuration");

    // Two combinations: a hot 4-dataset combination queried repeatedly over
    // the same brain region, and a cold pair queried once in a while. The
    // region is anchored on an actual object: partitions only exist where
    // objects are (empty children are never materialized), so only queries
    // that hit data retrieve — and therefore merge — partitions.
    let hot = DatasetSet::from_ids([DatasetId(0), DatasetId(1), DatasetId(2), DatasetId(3)]);
    let cold = DatasetSet::from_ids([DatasetId(4), DatasetId(5)]);
    let region = model.generate_all()[0][0].center();
    let side = bounds.extent().x * 0.012;

    let mut hot_costs = Vec::new();
    for i in 0..24u32 {
        storage.clear_cache();
        let (datasets, offset) = if i % 6 == 5 {
            (cold, 10.0)
        } else {
            (hot, (i % 3) as f64)
        };
        let range =
            Aabb::from_center_extent(region + Vec3::splat(offset * side * 0.2), Vec3::splat(side));
        let query = RangeQuery::new(QueryId(i), range, datasets);
        let before = storage.stats();
        let outcome = odyssey.execute(&storage, &query).expect("query");
        let cost = storage.seconds_since(&before);
        if datasets == hot {
            hot_costs.push((cost, outcome.route, outcome.used_merge_file()));
        }
    }

    println!("== {label} ==");
    println!("hot-combination query costs over time (simulated seconds):");
    for (i, (cost, route, used)) in hot_costs.iter().enumerate() {
        println!(
            "  query {:>2}: {:>9.5}s  route: {:<9}  merge file used: {}",
            i,
            cost,
            match route {
                RouteKind::Exact => "exact",
                RouteKind::Superset => "superset",
                RouteKind::Subset => "subset",
                RouteKind::None => "none",
            },
            used
        );
    }
    let merger = odyssey.merger();
    let dir = merger.directory();
    println!(
        "merge files: {} ({} pages replicated, {} evictions)\n",
        dir.len(),
        dir.total_pages(),
        dir.evictions()
    );
}

fn main() {
    let bounds = BrainModel::new(DatasetSpec::default()).bounds();
    run(
        "paper configuration (mt=2, |C|>=3, unbounded budget)",
        OdysseyConfig::paper(bounds),
    );
    run(
        "tight space budget (64 pages) — LRU eviction kicks in",
        OdysseyConfig {
            merge_space_budget_pages: Some(64),
            ..OdysseyConfig::paper(bounds)
        },
    );
    run(
        "merging disabled (the Figure 5c baseline)",
        OdysseyConfig::paper(bounds).without_merging(),
    );
}
