//! Data-to-insight comparison: Space Odyssey against the static competitors
//! (FLAT, R-Tree, Grid) on one small workload — a miniature of the paper's
//! Figure 4.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use odyssey_bench::experiment::{ApproachSelection, ExperimentConfig, ExperimentRunner};
use odyssey_bench::figures::workload_spec;
use odyssey_core::OdysseyConfig;
use odyssey_datagen::{CombinationDistribution, DatasetSpec, QueryRangeDistribution};

fn main() {
    let spec = DatasetSpec {
        num_datasets: 8,
        objects_per_dataset: 6_000,
        ..Default::default()
    };
    let config = ExperimentConfig {
        odyssey: OdysseyConfig::paper(spec.bounds),
        dataset_spec: spec,
        ..Default::default()
    };
    println!("generating datasets ...");
    let runner = ExperimentRunner::new(config);
    let workload = workload_spec(
        8,
        5,
        200,
        QueryRangeDistribution::Clustered { num_clusters: 10 },
        CombinationDistribution::Zipf,
    )
    .generate(&runner.bounds());

    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "approach", "indexing(s)", "querying(s)", "total(s)", "results"
    );
    for selection in ApproachSelection::figure4_set() {
        let run = runner.run(selection, &workload);
        println!(
            "{:<22} {:>12.3} {:>12.3} {:>12.3} {:>10}",
            run.approach,
            run.indexing_seconds,
            run.query_seconds(),
            run.total_seconds(),
            run.total_results
        );
    }
    println!(
        "\n(simulated seconds from the disk cost model; every approach answered the same\n\
         {} queries and returned the same number of objects)",
        workload.len()
    );
}
