//! The paper's motivating scenario: a neuroscientist explores particular
//! brain regions across many datasets acquired by different instruments,
//! without knowing upfront which regions or which dataset combinations will
//! matter.
//!
//! ```text
//! cargo run --release --example neuroscience_exploration
//! ```
//!
//! Ten datasets are generated; a clustered workload (hot brain regions, a
//! Zipf-skewed choice of dataset combinations) is executed with Space
//! Odyssey. The example reports how the engine converges: per-phase query
//! cost, refinement activity, and which combinations ended up merged.

use space_odyssey::prelude::*;
use space_odyssey::storage::write_raw_dataset;

fn main() {
    let spec = DatasetSpec {
        num_datasets: 10,
        objects_per_dataset: 8_000,
        ..Default::default()
    };
    let model = BrainModel::new(spec.clone());
    let bounds = model.bounds();

    let storage = StorageManager::new(StorageOptions::in_memory(512));
    let raws: Vec<_> = model
        .generate_all()
        .iter()
        .enumerate()
        .map(|(i, objects)| {
            write_raw_dataset(&storage, DatasetId(i as u16), objects).expect("raw write")
        })
        .collect();

    // A clustered, skewed workload: 300 queries over 5-dataset combinations.
    let workload = WorkloadSpec {
        num_datasets: spec.num_datasets,
        datasets_per_query: 5,
        num_queries: 300,
        query_volume_fraction: 1e-6,
        range_distribution: QueryRangeDistribution::Clustered { num_clusters: 10 },
        combination_distribution: CombinationDistribution::Zipf,
        seed: 2024,
    }
    .generate(&bounds);

    let odyssey =
        SpaceOdyssey::new(OdysseyConfig::paper(bounds), raws).expect("valid configuration");

    let phase_len = workload.len() / 5;
    let mut phase_cost = 0.0;
    let mut phase_refinements = 0usize;
    let mut merge_hits = 0usize;
    println!("phase (queries)     | sim seconds | refinements | merge-file hits");
    println!("--------------------+-------------+-------------+----------------");
    for (i, query) in workload.queries.iter().enumerate() {
        storage.clear_cache(); // cold queries, like the paper
        let before = storage.stats();
        let outcome = odyssey.execute(&storage, query).expect("query");
        phase_cost += storage.seconds_since(&before);
        phase_refinements += outcome.partitions_refined;
        if outcome.used_merge_file() {
            merge_hits += 1;
        }
        if (i + 1) % phase_len == 0 {
            println!(
                "queries {:>4}-{:<5} | {:>11.3} | {:>11} | {:>14}",
                i + 1 - phase_len + 1,
                i + 1,
                phase_cost,
                phase_refinements,
                merge_hits
            );
            phase_cost = 0.0;
            phase_refinements = 0;
            merge_hits = 0;
        }
    }

    println!(
        "\ncombinations observed: {}",
        odyssey.stats().distinct_combinations()
    );
    if let Some((hot, count)) = odyssey.stats().hottest() {
        println!("hottest combination: {hot} queried {count} times");
    }
    println!(
        "merge files created: {}",
        odyssey.merger().directory().len()
    );
    for file in odyssey.merger().directory().iter() {
        println!(
            "  merge file for {}: {} partitions, {} pages",
            file.combination,
            file.entry_count(),
            file.total_pages()
        );
    }
    let initialized = (0..spec.num_datasets as u16)
        .filter(|&d| {
            odyssey
                .dataset(DatasetId(d))
                .map(|i| i.is_initialized())
                .unwrap_or(false)
        })
        .count();
    println!(
        "datasets touched (and therefore partitioned): {initialized} of {}",
        spec.num_datasets
    );
}
