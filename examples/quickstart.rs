//! Quickstart: explore two small spatial datasets with Space Odyssey.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example generates two synthetic neuroscience datasets, registers their
//! raw files with the storage layer and starts querying immediately — no
//! index is built upfront. Watch the per-query cost drop as the engine
//! refines the areas the queries keep touching.

use space_odyssey::prelude::*;

fn main() {
    // 1. Synthetic data: two datasets of 5 000 neuron segments in the same
    //    brain volume.
    let spec = DatasetSpec {
        num_datasets: 2,
        objects_per_dataset: 5_000,
        ..Default::default()
    };
    let model = BrainModel::new(spec);
    let bounds = model.bounds();

    // 2. Storage: in-memory pages, a small buffer pool and the default
    //    spinning-disk cost model so we can report simulated I/O seconds.
    let storage = StorageManager::new(StorageOptions::in_memory(256));
    let raws: Vec<_> = model
        .generate_all()
        .iter()
        .enumerate()
        .map(|(i, objects)| {
            space_odyssey::storage::write_raw_dataset(&storage, DatasetId(i as u16), objects)
                .expect("writing raw datasets")
        })
        .collect();

    // 3. The engine: the paper's configuration (rt = 4, ppl = 64, mt = 2).
    let odyssey =
        SpaceOdyssey::new(OdysseyConfig::paper(bounds), raws).expect("valid configuration");

    // 4. Query the same hot region repeatedly on both datasets.
    let both = DatasetSet::from_ids([DatasetId(0), DatasetId(1)]);
    let hot_spot = bounds.center();
    println!("query  |  results | simulated seconds | refined partitions");
    println!("-------+----------+-------------------+-------------------");
    for i in 0..8u32 {
        let range = Aabb::from_center_extent(
            hot_spot,
            Vec3::splat(bounds.extent().x * 0.01 * (1.0 + i as f64 * 0.1)),
        );
        let query = RangeQuery::new(QueryId(i), range, both);
        let before = storage.stats();
        let outcome = odyssey.execute(&storage, &query).expect("query execution");
        let seconds = storage.seconds_since(&before);
        println!(
            "{:>6} | {:>8} | {:>17.5} | {:>3}",
            i,
            outcome.objects.len(),
            seconds,
            outcome.partitions_refined
        );
    }

    let ds0 = odyssey.dataset(DatasetId(0)).expect("dataset 0 exists");
    println!(
        "\ndataset 0: {} leaf partitions after {} refinements (started with {})",
        ds0.partitions().len(),
        ds0.total_refinements(),
        odyssey.config().partitions_per_level
    );
    println!(
        "total simulated I/O time so far: {:.4}s over {} pages read",
        storage.total_seconds(),
        storage.stats().pages_read()
    );
}
